//! Multidimensional uncleanliness scoring — the paper's stated future work
//! (§7): "a multidimensional uncleanliness metric to measure the aggregate
//! probability that an address is occupied".
//!
//! Uses [`unclean_core::score::UncleanlinessScorer`] to rank every /16
//! network by combined bot/spam/scan/phishing evidence, then validates the
//! ranking against the synthetic world's latent ground-truth hygiene —
//! which a real measurement study could never observe.
//!
//! ```text
//! cargo run --release --bin uncleanliness_score -- --scale 0.002
//! ```

use unclean_core::prelude::*;
use unclean_detect::{build_reports, PipelineConfig};
use unclean_examples::{row, rule, ExampleOpts};

fn main() {
    let opts = ExampleOpts::from_args();
    println!("== multidimensional uncleanliness score (paper §7 future work) ==\n");
    let scenario = opts.scenario();
    let reports = build_reports(&scenario, &PipelineConfig::paper());

    let scorer = UncleanlinessScorer::default();
    let scores = scorer.score(&[&reports.bot, &reports.spam, &reports.scan, &reports.phish]);
    println!(
        "scored {} networks at /{} using weights {:?}\n",
        scores.len(),
        scorer.prefix_len,
        scorer.weights
    );

    let widths = [18, 8, 6, 6, 6, 6, 9];
    println!("-- top 12 unclean networks --");
    println!(
        "{}",
        row(
            &[
                "network".into(),
                "score".into(),
                "bot".into(),
                "spam".into(),
                "scan".into(),
                "phish".into(),
                "hygiene*".into()
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));
    for ns in scores.iter().take(12) {
        let hygiene = scenario
            .world
            .profile_of(ns.network.base())
            .map_or(f32::NAN, |p| p.hygiene);
        println!(
            "{}",
            row(
                &[
                    ns.network.to_string(),
                    format!("{:.2}", ns.score),
                    ns.bots.to_string(),
                    ns.spamming.to_string(),
                    ns.scanning.to_string(),
                    ns.phishing.to_string(),
                    format!("{hygiene:.2}"),
                ],
                &widths
            )
        );
    }
    println!("(*latent ground truth only the simulation can see)\n");

    // Validation: mean true hygiene of the top decile vs the rest.
    let top_n = (scores.len() / 10).max(1);
    let mean_hygiene = |slice: &[NetworkScore]| -> f64 {
        let vals: Vec<f64> = slice
            .iter()
            .filter_map(|ns| {
                scenario
                    .world
                    .profile_of(ns.network.base())
                    .map(|p| p.hygiene as f64)
            })
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    let top = mean_hygiene(&scores[..top_n]);
    let rest = mean_hygiene(&scores[top_n..]);
    println!("validation against latent ground truth:");
    println!("  mean hygiene, top-decile scored networks : {top:.3}");
    println!("  mean hygiene, remaining scored networks  : {rest:.3}");
    // Rank correlation: the score should order networks like inverse
    // hygiene does (ρ < 0, since high score = low hygiene).
    let paired: Vec<(f64, f64)> = scores
        .iter()
        .filter_map(|ns| {
            scenario
                .world
                .profile_of(ns.network.base())
                .map(|p| (ns.score, p.hygiene as f64))
        })
        .collect();
    let (xs, ys): (Vec<f64>, Vec<f64>) = paired.into_iter().unzip();
    let rho = unclean_stats::spearman(&xs, &ys);
    println!("  Spearman ρ(score, hygiene)               : {rho:.3}");
    if top < rest && rho < -0.2 {
        println!("  → the score recovers the latent uncleanliness ordering.");
    } else {
        println!("  → WARNING: score failed to separate unclean networks.");
    }

    // The phishing dimension: hosting-focused weights surface different
    // networks, echoing the paper's multidimensionality finding.
    let hosting = UncleanlinessScorer {
        weights: ScoreWeights {
            bots: 0.1,
            spamming: 0.1,
            scanning: 0.1,
            phishing: 1.0,
        },
        ..UncleanlinessScorer::default()
    };
    let hosting_scores =
        hosting.score(&[&reports.bot, &reports.spam, &reports.scan, &reports.phish]);
    let botnet_top: Vec<String> = scores
        .iter()
        .take(5)
        .map(|n| n.network.to_string())
        .collect();
    let hosting_top: Vec<String> = hosting_scores
        .iter()
        .take(5)
        .map(|n| n.network.to_string())
        .collect();
    let shared = botnet_top
        .iter()
        .filter(|n| hosting_top.contains(n))
        .count();
    println!("\nbotnet-weighted top-5 : {botnet_top:?}");
    println!("hosting-weighted top-5: {hosting_top:?}");
    println!(
        "overlap: {shared}/5 — phishing ranks different networks (the paper's\nmultidimensionality result, §5.2)."
    );
}
