//! Quickstart: generate a paper-shaped world, build the report inventory,
//! and run both uncleanliness hypothesis tests.
//!
//! ```text
//! cargo run --release --bin quickstart -- --scale 0.002 --seed 42
//! ```

use unclean_core::prelude::*;
use unclean_detect::{build_reports, PipelineConfig};
use unclean_examples::{row, rule, ExampleOpts};
use unclean_stats::SeedTree;

fn main() {
    let opts = ExampleOpts::from_args();
    println!("== uncleanliness quickstart ==");
    println!(
        "scale {} | seed {} | trials {}\n",
        opts.scale, opts.seed, opts.trials
    );

    // 1. Synthesize the world and run the full detection pipeline.
    let scenario = opts.scenario();
    println!(
        "world: {} hosts in {} /24s across {} /16 networks",
        scenario.world.population.total_hosts(),
        scenario.world.population.block_count(),
        scenario.world.network_count()
    );
    let reports = build_reports(&scenario, &PipelineConfig::paper());

    // 2. The report inventory (the paper's Table 1).
    let widths = [10, 9, 9, 24, 9];
    println!("\n-- report inventory --");
    println!(
        "{}",
        row(
            &[
                "tag".into(),
                "type".into(),
                "class".into(),
                "valid dates".into(),
                "size".into()
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));
    for r in [
        &reports.bot,
        &reports.phish,
        &reports.scan,
        &reports.spam,
        &reports.bot_test,
        &reports.control,
    ] {
        println!(
            "{}",
            row(
                &[
                    r.tag().to_string(),
                    r.provenance().to_string(),
                    r.class().to_string(),
                    r.period().to_string(),
                    r.len().to_string(),
                ],
                &widths
            )
        );
    }

    // 3. Spatial uncleanliness (Eq. 3) for each unclean report.
    println!("\n-- spatial uncleanliness (Eq. 3) --");
    let analysis = DensityAnalysis::with_config(DensityConfig {
        trials: opts.trials,
        ..DensityConfig::default()
    });
    let seeds = SeedTree::new(opts.seed ^ 0xD15EA5E);
    for r in reports.unclean_reports() {
        let res = analysis.run(r, reports.control.addresses(), &[], &seeds);
        let idx24 = res.xs.iter().position(|&x| x == 24).expect("24 in range");
        println!(
            "  {:<8} holds: {:<5}  |C_24| = {} vs control median {:.0} ({}x denser)",
            r.tag(),
            res.hypothesis_holds(),
            res.observed[idx24],
            res.control_boxes[idx24].1.median,
            res.density_ratio()[idx24].round()
        );
    }

    // 4. Temporal uncleanliness (Eq. 5): the five-month-old bot-test
    // report against each present-day report.
    println!("\n-- temporal uncleanliness (Eq. 5): R_bot-test as predictor --");
    let temporal = TemporalAnalysis::with_config(TemporalConfig {
        trials: opts.trials,
        ..TemporalConfig::default()
    });
    for (name, present) in [
        ("bots", &reports.bot),
        ("phishing", &reports.phish_window),
        ("spamming", &reports.spam),
        ("scanning", &reports.scan),
    ] {
        let res = temporal.run(
            &reports.bot_test,
            present,
            reports.control.addresses(),
            &seeds,
        );
        match res.predictive_band() {
            Some((lo, hi)) => {
                println!("  {name:<9} predicted: better than random at /{lo}..=/{hi}")
            }
            None => println!("  {name:<9} NOT predicted (no prefix length beats random)"),
        }
    }

    println!("\nBots, spam and scanning are predictable from months-old botnet");
    println!("history; phishing is not — exactly the paper's Figure 4.");
}
