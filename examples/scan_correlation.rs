//! Scan/botnet correlation: the paper's Figure 1 as a terminal chart.
//!
//! Tracks the number of unique hosts scanning the observed network day by
//! day through a botnet campaign, then overlays how many members of the
//! reported botnet were seen scanning — both by exact address and by /24 —
//! showing the campaign swell before the report and the collapse after.
//!
//! ```text
//! cargo run --release --bin scan_correlation -- --scale 0.002
//! ```

use unclean_core::prelude::*;
use unclean_detect::{daily_scanners, BotMonitor, PipelineConfig};
use unclean_examples::{bar, ExampleOpts};

fn main() {
    let opts = ExampleOpts::from_args();
    println!("== scan/botnet correlation (paper Figure 1) ==\n");
    let scenario = opts.scenario();
    let dates = scenario.dates;

    // The bot report: the campaign channel's roster in the report week.
    let bot_report = BotMonitor::channel_snapshot(
        &scenario.infections,
        scenario.fig1_channel,
        dates.fig1_report_day,
    );
    let bot_blocks = BlockSet::of(&bot_report, 24);
    println!(
        "botnet report (channel {}, {}): {} addresses in {} /24s\n",
        scenario.fig1_channel,
        dates.fig1_report_day,
        bot_report.len(),
        bot_blocks.len()
    );

    // Daily scanner series across the Figure 1 span (sampled every 3 days
    // to keep the chart readable).
    let series = daily_scanners(&scenario, dates.fig1_span, false, &PipelineConfig::paper());
    let max = series.iter().map(|(_, s)| s.len()).max().unwrap_or(1) as f64;

    println!(
        "{:<12} {:>6} {:>6} {:>6}  scanners/day",
        "day", "scan", "∩addr", "∩/24"
    );
    for (day, scanners) in series.iter().step_by(3) {
        let addr_overlap = scanners.intersect(&bot_report).len();
        let block_overlap = scanners
            .iter()
            .filter(|&ip| bot_blocks.contains(ip))
            .count();
        let marker = if *day == dates.fig1_report_day {
            " ← bot report"
        } else {
            ""
        };
        println!(
            "{:<12} {:>6} {:>6} {:>6}  {}{}",
            day.to_string(),
            scanners.len(),
            addr_overlap,
            block_overlap,
            bar(scanners.len() as f64, max, 40),
            marker
        );
    }

    // The paper's two observations.
    let peak_day = series
        .iter()
        .max_by_key(|(_, s)| s.len())
        .expect("non-empty span")
        .0;
    let at_peak = series
        .iter()
        .find(|(d, _)| *d == peak_day)
        .expect("present")
        .1
        .clone();
    let addr_overlap = at_peak.intersect(&bot_report).len();
    let block_overlap = at_peak.iter().filter(|&ip| bot_blocks.contains(ip)).count();
    println!("\nat the peak ({peak_day}):");
    println!(
        "  {} of {} scanners are reported bot addresses ({:.0}%)",
        addr_overlap,
        at_peak.len(),
        100.0 * addr_overlap as f64 / at_peak.len().max(1) as f64
    );
    println!(
        "  {} are inside the botnet's /24s — the /24 view finds {} more scanners",
        block_overlap,
        block_overlap.saturating_sub(addr_overlap)
    );
    println!("\nScanning swells for weeks before the report and collapses after —");
    println!("unclean networks telegraph future hostility (paper §1, Figure 1).");
}
