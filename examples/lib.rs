//! Shared helpers for the example binaries: a tiny argument parser (scale,
//! seed, trials) and text-table rendering, so each example stays focused on
//! the API it demonstrates.

use unclean_netmodel::{Scenario, ScenarioConfig};

/// Options shared by all examples.
#[derive(Debug, Clone, Copy)]
pub struct ExampleOpts {
    /// Scenario scale relative to the paper's report sizes.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Control-ensemble trials.
    pub trials: usize,
}

impl Default for ExampleOpts {
    fn default() -> ExampleOpts {
        ExampleOpts {
            scale: 0.002,
            seed: 42,
            trials: 200,
        }
    }
}

impl ExampleOpts {
    /// Parse `--scale X --seed N --trials K` from the process arguments;
    /// unknown arguments abort with usage help.
    pub fn from_args() -> ExampleOpts {
        let mut opts = ExampleOpts::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let value = |i: usize| {
                args.get(i + 1).unwrap_or_else(|| {
                    eprintln!("missing value for {}", args[i]);
                    std::process::exit(2);
                })
            };
            match args[i].as_str() {
                "--scale" => {
                    opts.scale = value(i).parse().expect("--scale takes a float");
                    i += 2;
                }
                "--seed" => {
                    opts.seed = value(i).parse().expect("--seed takes an integer");
                    i += 2;
                }
                "--trials" => {
                    opts.trials = value(i).parse().expect("--trials takes an integer");
                    i += 2;
                }
                "--help" | "-h" => {
                    eprintln!("usage: [--scale 0.002] [--seed 42] [--trials 200]");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument {other}; try --help");
                    std::process::exit(2);
                }
            }
        }
        opts
    }

    /// Generate the scenario these options describe.
    pub fn scenario(&self) -> Scenario {
        Scenario::generate(ScenarioConfig::at_scale(self.scale, self.seed))
    }
}

/// Render one row of a fixed-width text table.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}"))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Render a rule matching the table width.
pub fn rule(widths: &[usize]) -> String {
    widths
        .iter()
        .map(|w| "-".repeat(*w))
        .collect::<Vec<_>>()
        .join("--")
}

/// Render a simple horizontal bar for ASCII charts.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round() as usize;
    "█".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = ExampleOpts::default();
        assert!(o.scale > 0.0 && o.trials > 0);
    }

    #[test]
    fn table_helpers_render() {
        let widths = [5, 8];
        let r = row(&["a".into(), "bb".into()], &widths);
        assert!(r.contains('a') && r.contains("bb"));
        assert_eq!(rule(&widths).len(), 5 + 2 + 8);
        assert_eq!(bar(5.0, 10.0, 10), "█████");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(20.0, 10.0, 10).chars().count(), 10);
        assert_eq!(bar(1.0, 0.0, 10), "");
    }
}
