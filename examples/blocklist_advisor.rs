//! Blocklist advisor: the paper's §6 as an operational tool.
//!
//! Given a months-old botnet report, emit a router-ready CIDR block list
//! and quantify what it would have blocked during the evaluation window:
//! true positives (addresses that turned out hostile), false positives
//! (payload-exchanging innocents), and the suspicious unknowns.
//!
//! ```text
//! cargo run --release --bin blocklist_advisor -- --scale 0.002
//! ```

use unclean_core::prelude::*;
use unclean_detect::{build_candidates, build_reports, PipelineConfig};
use unclean_examples::{row, rule, ExampleOpts};

fn main() {
    let opts = ExampleOpts::from_args();
    println!("== blocklist advisor (paper §6) ==\n");
    let scenario = opts.scenario();
    let reports = build_reports(&scenario, &PipelineConfig::paper());

    println!(
        "input: {} — {} addresses, {} distinct /24s",
        reports.bot_test,
        reports.bot_test.len(),
        reports.bot_test.blocks(24).len()
    );

    // Gather the virtual-blocking evidence.
    let candidates = build_candidates(&scenario, &reports.bot_test, 24, &PipelineConfig::paper());
    let partition = Partition::new(&candidates, reports.unclean.addresses());
    println!(
        "\ncandidate traffic in those /24s during {}:",
        scenario.dates.unclean_window
    );
    println!(
        "  hostile  (in an unclean report)   : {}",
        partition.hostile.len()
    );
    println!(
        "  unknown  (no payload, no report)  : {}",
        partition.unknown.len()
    );
    println!(
        "  innocent (payload, no report)     : {}",
        partition.innocent.len()
    );

    // Table 3.
    let table = BlockingAnalysis::default().run(reports.bot_test.addresses(), &partition);
    let widths = [3, 7, 7, 7, 9, 11, 12];
    println!("\n-- virtual blocking sweep (Table 3) --");
    println!(
        "{}",
        row(
            &[
                "n".into(),
                "TP(n)".into(),
                "FP(n)".into(),
                "pop(n)".into(),
                "unknown".into(),
                "precision".into(),
                "w/ unknowns".into()
            ],
            &widths
        )
    );
    println!("{}", rule(&widths));
    for r in &table.rows {
        println!(
            "{}",
            row(
                &[
                    r.n.to_string(),
                    r.tp.to_string(),
                    r.fp.to_string(),
                    r.pop.to_string(),
                    r.unknown.to_string(),
                    format!("{:.2}", r.precision()),
                    format!("{:.2}", r.precision_assuming_unknown_hostile()),
                ],
                &widths
            )
        );
    }

    // The sparseness argument.
    let (_, blocks24) = table.blocks_per_n[0];
    let (_, span24) = table.span_per_n[0];
    let blocked = partition.total() as f64;
    println!(
        "\nblocking {} /24s risks {} addresses; only {} ({:.1}%) ever communicated —",
        blocks24,
        span24,
        partition.total(),
        100.0 * blocked / span24 as f64
    );
    println!("locality keeps collateral damage low (paper §6.2).");

    // Emit the deny list in deployable form.
    let cidrs = reports.bot_test.blocks(24).to_cidrs();
    let acl = render_blocklist(&cidrs, BlocklistFormat::CiscoAcl, "UNCLEAN-24S");
    println!(
        "\n-- recommended deny list (Cisco ACL, first 15 of {} entries) --",
        blocks24
    );
    for line in acl.lines().take(16) {
        println!("  {line}");
    }
    if blocks24 > 15 {
        println!(
            "  … ({} more; also available as plain/iptables via unclean_core::blocklist)",
            blocks24 - 15
        );
    }
}
