//! End-to-end predictive blocking (§6): partition the candidate traffic
//! from the bot-test /24s and verify the Table 3 shape — high precision at
//! n = 24, false positives collapsing by n = 26, and the sparseness
//! argument.

use unclean_core::prelude::*;
use unclean_detect::{build_candidates, PipelineConfig};
use unclean_integration::fixture;

fn candidates() -> Vec<Candidate> {
    let f = fixture();
    build_candidates(
        &f.scenario,
        &f.reports.bot_test,
        24,
        &PipelineConfig::paper(),
    )
}

#[test]
fn candidate_traffic_exists_and_is_sparse() {
    let f = fixture();
    let cands = candidates();
    assert!(
        !cands.is_empty(),
        "unclean /24s keep emitting traffic months later"
    );
    let blocks = BlockSet::of(f.reports.bot_test.addresses(), 24);
    // §6.2: "less than 2% of the total IP addresses available in those
    // /24s communicated" — allow up to 10% for the synthetic world.
    let frac = cands.len() as f64 / blocks.address_span() as f64;
    assert!(frac < 0.10, "candidate fraction {frac}");
}

#[test]
fn partition_shape_matches_the_paper() {
    let f = fixture();
    let cands = candidates();
    let partition = Partition::new(&cands, f.reports.unclean.addresses());
    // Hostile dominates innocent by an order of magnitude; unknowns are a
    // large middle class (paper: 287 / 708 / 35).
    assert!(
        partition.hostile.len() > partition.innocent.len() * 5,
        "hostile {} ≫ innocent {}",
        partition.hostile.len(),
        partition.innocent.len()
    );
    assert!(
        partition.unknown.len() > partition.innocent.len(),
        "unknown {} > innocent {}",
        partition.unknown.len(),
        partition.innocent.len()
    );
    assert_eq!(
        partition.total(),
        cands.len(),
        "partition is exhaustive and disjoint"
    );
}

#[test]
fn table3_shape() {
    let f = fixture();
    let cands = candidates();
    let partition = Partition::new(&cands, f.reports.unclean.addresses());
    let table = BlockingAnalysis::default().run(f.reports.bot_test.addresses(), &partition);

    assert_eq!(table.rows.len(), 9, "n = 24..=32");
    let r24 = table.row(24).expect("row 24");
    // The paper reports 90% precision at n = 24 (97% counting unknowns as
    // hostile); require ≥ 80% / ≥ 85% for the synthetic world.
    assert!(
        r24.precision() > 0.80,
        "precision at /24: {}",
        r24.precision()
    );
    assert!(
        r24.precision_assuming_unknown_hostile() > 0.85,
        "precision w/ unknowns: {}",
        r24.precision_assuming_unknown_hostile()
    );

    // Populations shrink monotonically with n.
    for w in table.rows.windows(2) {
        assert!(w[0].pop >= w[1].pop);
        assert!(w[0].tp >= w[1].tp);
        assert!(w[0].unknown >= w[1].unknown);
    }

    // False positives collapse with longer prefixes (paper: 35 at n = 24
    // down to 1 by n = 26, 0 from n = 28 on).
    let fp24 = table.row(24).expect("row").fp.max(1);
    let fp28 = table.row(28).expect("row").fp;
    assert!(
        fp28 * 4 <= fp24,
        "false positives collapse with longer prefixes: {fp24} → {fp28}"
    );
}

#[test]
fn roc_is_well_formed_and_precision_holds_up() {
    // The paper evaluates the blocker via this ROC table rather than AUC:
    // at n = 24 everything in the candidate /24s is blocked (TPR = FPR =
    // 1 by construction), and the useful signal is that precision stays
    // high as n tightens.
    let f = fixture();
    let cands = candidates();
    let partition = Partition::new(&cands, f.reports.unclean.addresses());
    let table = BlockingAnalysis::default().run(f.reports.bot_test.addresses(), &partition);
    let roc = table.roc(
        partition.hostile.len() as u64,
        partition.innocent.len() as u64,
    );
    assert_eq!(roc.points().len(), 9);
    let p24 = &roc.points()[0];
    assert!(
        (p24.tpr() - 1.0).abs() < 1e-9,
        "all candidates share a /24 with bot-test"
    );
    assert!((p24.fpr() - 1.0).abs() < 1e-9);
    // Rates decrease monotonically with the characteristic.
    for w in roc.points().windows(2) {
        assert!(w[1].tpr() <= w[0].tpr() + 1e-12);
        assert!(w[1].fpr() <= w[0].fpr() + 1e-12);
    }
    // Precision at n = 26 is at least as good as at n = 24 (the paper:
    // 0.89 → 0.99).
    let prec24 = table.row(24).expect("row").precision();
    let prec26 = table.row(26).expect("row").precision();
    assert!(
        prec26 >= prec24 * 0.9,
        "precision holds up: {prec24} → {prec26}"
    );
    // And the curve is not *worse* than chance.
    assert!(roc.auc() > 0.40, "AUC {}", roc.auc());
}

#[test]
fn unknowns_are_behaviourally_suspicious() {
    // §6.2: every unknown "engaged in some form of suspicious behavior" —
    // in the synthetic world, no-payload sources in those blocks are slow
    // scanners and probers by construction; verify none of them carries
    // payload (definitional) and that they produced TCP traffic.
    let cands = candidates();
    let f = fixture();
    let partition = Partition::new(&cands, f.reports.unclean.addresses());
    for c in &cands {
        if partition.unknown.contains(c.ip) {
            assert!(
                !c.payload_bearing,
                "{} is unknown yet carried payload",
                c.ip
            );
        }
    }
}

#[test]
fn blocking_at_32_blocks_only_report_members() {
    let f = fixture();
    let cands = candidates();
    let partition = Partition::new(&cands, f.reports.unclean.addresses());
    let table = BlockingAnalysis::default().run(f.reports.bot_test.addresses(), &partition);
    let r32 = table.row(32).expect("row");
    // /32 blocking can only hit candidates that are bot-test members.
    let bt = f.reports.bot_test.addresses();
    let max_possible = cands.iter().filter(|c| bt.contains(c.ip)).count() as u64;
    assert!(r32.pop + r32.unknown <= max_possible.max(1) + max_possible);
    assert!(r32.pop <= table.row(24).expect("row").pop);
}

#[test]
fn collect_candidates_agrees_with_pipeline() {
    // The core-crate collector and the flowgen pipeline agree on the
    // candidate universe.
    let f = fixture();
    let cands = candidates();
    let filtered = collect_candidates(&cands, f.reports.bot_test.addresses(), 24);
    assert_eq!(
        filtered.len(),
        cands.len(),
        "pipeline already filtered to the /24s"
    );
}
