//! Property-based tests (proptest) over the core data structures and the
//! invariants every analysis relies on.

use proptest::collection::vec;
use proptest::prelude::*;
use unclean_core::blocks::block_count_naive;
use unclean_core::prelude::*;
use unclean_stats::{quantile_sorted, FiveNumber, SeedTree};

fn ipset_strategy() -> impl Strategy<Value = IpSet> {
    vec(any::<u32>(), 0..500).prop_map(IpSet::from_raw)
}

proptest! {
    #[test]
    fn ipset_construction_is_sorted_unique(raw in vec(any::<u32>(), 0..500)) {
        let set = IpSet::from_raw(raw.clone());
        prop_assert!(set.as_raw().windows(2).all(|w| w[0] < w[1]));
        for v in raw {
            prop_assert!(set.contains(Ip(v)));
        }
    }

    #[test]
    fn set_algebra_laws(a in ipset_strategy(), b in ipset_strategy()) {
        let union = a.union(&b);
        let inter = a.intersect(&b);
        let diff_ab = a.difference(&b);
        let diff_ba = b.difference(&a);
        // |A ∪ B| + |A ∩ B| = |A| + |B|
        prop_assert_eq!(union.len() + inter.len(), a.len() + b.len());
        // A = (A \ B) ⊎ (A ∩ B)
        prop_assert_eq!(diff_ab.len() + inter.len(), a.len());
        // Union is commutative; intersection distributes.
        prop_assert_eq!(&union, &b.union(&a));
        prop_assert_eq!(&inter, &b.intersect(&a));
        // Disjointness of the difference pieces.
        prop_assert!(diff_ab.intersect(&diff_ba).is_empty());
        // Every union member is in A or B.
        for ip in union.iter() {
            prop_assert!(a.contains(ip) || b.contains(ip));
        }
    }

    #[test]
    fn sample_is_uniformly_a_subset(raw in vec(any::<u32>(), 1..300), seed in any::<u64>()) {
        let set = IpSet::from_raw(raw);
        let k = set.len() / 2;
        let mut rng = SeedTree::new(seed).stream("prop");
        let sub = set.sample(&mut rng, k).expect("k <= n");
        prop_assert_eq!(sub.len(), k);
        for ip in sub.iter() {
            prop_assert!(set.contains(ip));
        }
    }

    #[test]
    fn block_counts_match_naive_at_all_prefixes(set in ipset_strategy()) {
        let fast = BlockCounts::of(&set);
        for n in [0u8, 1, 7, 8, 15, 16, 20, 24, 29, 32] {
            prop_assert_eq!(fast.at(n), block_count_naive(&set, n), "n = {}", n);
        }
    }

    #[test]
    fn block_counts_are_monotone(set in ipset_strategy()) {
        let counts = BlockCounts::of(&set);
        for n in 1..=32u8 {
            prop_assert!(counts.at(n) >= counts.at(n - 1));
            // Growth is at most 2× per bit.
            prop_assert!(counts.at(n) <= counts.at(n - 1) * 2);
        }
    }

    #[test]
    fn blockset_agrees_with_blockcounts(set in ipset_strategy(), n in 0u8..=32) {
        let bs = BlockSet::of(&set, n);
        prop_assert_eq!(bs.len() as u64, BlockCounts::of(&set).at(n));
        // Every member's block is contained.
        for ip in set.iter() {
            prop_assert!(bs.contains(ip));
        }
    }

    #[test]
    fn blockset_intersection_is_bounded(a in ipset_strategy(), b in ipset_strategy(), n in 0u8..=32) {
        let ba = BlockSet::of(&a, n);
        let bb = BlockSet::of(&b, n);
        let i = ba.intersect_count(&bb);
        prop_assert!(i <= ba.len() as u64);
        prop_assert!(i <= bb.len() as u64);
        // Self-intersection is identity.
        prop_assert_eq!(ba.intersect_count(&ba), ba.len() as u64);
    }

    #[test]
    fn trie_and_flat_paths_agree(set in ipset_strategy(), n in 0u8..=32) {
        let trie = PrefixTrie::from_set(&set);
        prop_assert_eq!(trie.len(), set.len());
        prop_assert_eq!(trie.block_count(n), BlockCounts::of(&set).at(n));
        for ip in set.iter().take(50) {
            prop_assert!(trie.contains(ip));
            prop_assert!(trie.contains_prefix(ip, n));
        }
    }

    #[test]
    fn trie_aggregate_is_an_exact_disjoint_cover(raw in vec(any::<u32>(), 1..200)) {
        let set = IpSet::from_raw(raw);
        let trie = PrefixTrie::from_set(&set);
        let cover = trie.aggregate();
        let span: u64 = cover.iter().map(|c| c.size()).sum();
        prop_assert_eq!(span, set.len() as u64, "cover size equals set size");
        for ip in set.iter().take(100) {
            prop_assert_eq!(cover.iter().filter(|c| c.contains(ip)).count(), 1);
        }
    }

    #[test]
    fn cidr_of_is_idempotent_and_nested(v in any::<u32>(), n in 0u8..=32) {
        let ip = Ip(v);
        let block = Cidr::of(ip, n);
        prop_assert!(block.contains(ip));
        prop_assert_eq!(Cidr::of(block.base(), n), block);
        // Parent chains nest.
        if let Some(parent) = block.parent() {
            prop_assert!(parent.contains_cidr(&block));
            prop_assert!(parent.contains(ip));
        }
    }

    #[test]
    fn cidr_display_parse_round_trip(v in any::<u32>(), n in 0u8..=32) {
        let block = Cidr::of(Ip(v), n);
        let parsed: Cidr = block.to_string().parse().expect("display is parseable");
        prop_assert_eq!(parsed, block);
    }

    #[test]
    fn ip_display_parse_round_trip(v in any::<u32>()) {
        let ip = Ip(v);
        let parsed: Ip = ip.to_string().parse().expect("display is parseable");
        prop_assert_eq!(parsed, ip);
    }

    #[test]
    fn day_round_trip(offset in -40_000i32..40_000) {
        let day = Day(offset);
        let (y, m, d) = day.ymd();
        prop_assert_eq!(Day::from_ymd(y, m, d).expect("valid"), day);
        let parsed: Day = day.to_string().parse().expect("display is parseable");
        prop_assert_eq!(parsed, day);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(mut values in vec(-1e6f64..1e6, 1..200)) {
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut last = f64::NEG_INFINITY;
        for i in 0..=10 {
            let q = quantile_sorted(&values, i as f64 / 10.0);
            prop_assert!(q >= last);
            prop_assert!(q >= values[0] && q <= *values.last().expect("non-empty"));
            last = q;
        }
    }

    #[test]
    fn five_number_is_ordered(values in vec(-1e6f64..1e6, 1..200)) {
        let f = FiveNumber::of(&values).expect("non-empty, finite");
        prop_assert!(f.min <= f.q1);
        prop_assert!(f.q1 <= f.median);
        prop_assert!(f.median <= f.q3);
        prop_assert!(f.q3 <= f.max);
        prop_assert!(f.mean >= f.min && f.mean <= f.max);
    }

    #[test]
    fn prediction_curve_bounded_by_past_blocks(a in ipset_strategy(), b in ipset_strategy()) {
        prop_assume!(!a.is_empty() && !b.is_empty());
        let curve = prediction_curve(&a, &b, PrefixRange::PAPER);
        let counts = BlockCounts::of(&a);
        for (i, n) in (16u8..=32).enumerate() {
            prop_assert!(curve[i] <= counts.at(n));
        }
    }

    #[test]
    fn netflow_v5_round_trip(
        src in any::<u32>(), dst in any::<u32>(),
        sport in any::<u16>(), dport in any::<u16>(),
        packets in 1u32..1000, payload in 0u32..100_000,
        // V5's 32-bit millisecond uptime wraps every ~49.7 days, so the
        // round trip is only lossless within that horizon of boot (the
        // wrap itself is covered by flowgen's unit tests).
        flags in 0u8..64, secs in 0i64..49 * 86_400,
    ) {
        use unclean_flowgen::{Flow, record::EPOCH_UNIX_SECS};
        let flow = Flow {
            src: Ip(src), dst: Ip(dst),
            src_port: sport, dst_port: dport,
            proto: 6, packets, octets: packets * 40 + payload,
            flags, start_secs: secs, duration_secs: 30,
        };
        let boot = EPOCH_UNIX_SECS;
        let back = Flow::from_v5(&flow.to_v5(boot), boot);
        prop_assert_eq!(back, flow);
    }
}

proptest! {
    #[test]
    fn v5_decoder_never_panics_on_garbage(bytes in vec(any::<u8>(), 0..2048)) {
        // Fuzz-shaped robustness: arbitrary input must yield Ok or a typed
        // error, never a panic or an over-read.
        let _ = unclean_flowgen::decode_datagram(&bytes);
    }

    #[test]
    fn v5_decoder_accepts_what_the_encoder_emits_after_count_preserving_mutation(
        n_records in 1usize..=30,
        flip_at in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        // Flip any single bit outside the version/count fields: decoding
        // must still succeed (the format has no checksum) and return the
        // same record count.
        use unclean_flowgen::{encode_datagram, decode_datagram, V5Header, V5Record};
        let records: Vec<V5Record> = (0..n_records)
            .map(|i| V5Record { srcaddr: i as u32, ..V5Record::default() })
            .collect();
        let header = V5Header {
            count: n_records as u16,
            sys_uptime_ms: 0,
            unix_secs: 0,
            unix_nsecs: 0,
            flow_sequence: 0,
            engine_type: 0,
            engine_id: 0,
            sampling_interval: 0,
        };
        let mut wire = encode_datagram(&header, &records).to_vec();
        let idx = 4 + flip_at % (wire.len() - 4); // skip version+count
        wire[idx] ^= 1 << flip_bit;
        let (h, r) = decode_datagram(&wire).expect("bit flips outside framing decode");
        prop_assert_eq!(h.count as usize, n_records);
        prop_assert_eq!(r.len(), n_records);
    }

    #[test]
    fn archive_round_trip(flow_count in 0usize..200, seed in any::<u64>()) {
        use unclean_flowgen::{ArchiveReader, ArchiveWriter, Flow, record::EPOCH_UNIX_SECS};
        let mut rng = SeedTree::new(seed).stream("archive-prop");
        use rand::Rng;
        let flows: Vec<Flow> = (0..flow_count)
            .map(|_| Flow {
                src: Ip(rng.gen()),
                dst: Ip(rng.gen()),
                src_port: rng.gen(),
                dst_port: rng.gen(),
                proto: 6,
                packets: rng.gen_range(1..100),
                octets: rng.gen_range(40..100_000),
                flags: rng.gen_range(0..64),
                start_secs: rng.gen_range(0..40 * 86_400),
                duration_secs: rng.gen_range(0..600),
            })
            .collect();
        let mut w = ArchiveWriter::new(Vec::new(), EPOCH_UNIX_SECS);
        for f in &flows {
            w.push(f).expect("in-memory write");
        }
        let (bytes, _) = w.finish().expect("finish");
        let mut r = ArchiveReader::new(bytes.as_slice(), EPOCH_UNIX_SECS);
        let back = r.read_all().expect("well-formed");
        prop_assert_eq!(back, flows);
        prop_assert_eq!(r.telemetry().lost_flows, 0);
    }

    #[test]
    fn fault_injector_conserves_flow_accounting(
        drop in 0.0f64..1.0, dup in 0.0f64..1.0, corrupt in 0.0f64..1.0,
        burst in 0.0f64..0.3, burst_len in 1u32..12, trunc in 0.0f64..1.0,
        n in 0u32..500, seed in any::<u64>(),
    ) {
        use unclean_flowgen::{FaultConfig, FaultInjector, Flow};
        let mut inj = FaultInjector::new(
            FaultConfig {
                drop_chance: drop,
                duplicate_chance: dup,
                corrupt_chance: corrupt,
                burst_chance: burst,
                burst_len,
                truncate_chance: trunc,
                dup_datagram_chance: 0.0,
            },
            SeedTree::new(seed),
        );
        let template = Flow {
            src: Ip(1), dst: Ip(2), src_port: 1, dst_port: 2, proto: 6,
            packets: 1, octets: 40, flags: 2, start_secs: 100, duration_secs: 0,
        };
        let mut delivered = 0u64;
        for _ in 0..n {
            inj.apply(&template, |_| delivered += 1);
        }
        let s = inj.stats();
        prop_assert_eq!(s.seen, n as u64);
        let lost = s.dropped + s.burst_dropped + s.truncated;
        prop_assert_eq!(delivered, s.seen - lost + s.duplicated);
        prop_assert!(s.corrupted <= s.seen - lost);
    }
}

#[test]
fn contains_block_is_equivalent_to_blockset_contains() {
    // Deterministic sweep complementing the proptest cases: the two
    // inclusion-relation implementations agree.
    let set = IpSet::from_raw(
        (0..5_000u32)
            .map(|i| i.wrapping_mul(2_654_435_761))
            .collect(),
    );
    for n in [8u8, 16, 20, 24, 28, 32] {
        let bs = BlockSet::of(&set, n);
        for probe in (0..2_000u32).map(|i| Ip(i.wrapping_mul(0x9e37_79b9))) {
            assert_eq!(
                set.contains_block(probe, n),
                bs.contains(probe),
                "probe {probe} at /{n}"
            );
        }
    }
}

proptest! {
    #[test]
    fn frozen_trie_is_equivalent_to_pointer_trie_and_linear_scan(
        raw in vec(any::<u64>(), 1..80),
        extra_probes in vec(any::<u32>(), 0..64),
    ) {
        // The daemon's frozen (flattened) trie must answer exactly like
        // the pointer trie it was frozen from, and both must agree with
        // a brute-force longest-prefix scan — including at and just
        // outside block boundaries, where off-by-one bit walks hide.
        use unclean_core::frozen::{CidrTrie, FrozenTrie};
        let blocks: Vec<(Cidr, f64)> = raw
            .iter()
            .map(|&x| {
                // One u64 per block: high bits pick the address, the rest
                // a length in 8..=32 and a score in [0, 100).
                let ip = (x >> 32) as u32;
                let len = 8 + (x % 25) as u8;
                let score = ((x >> 8) % 1000) as f64 / 10.0;
                (Cidr::of(Ip(ip), len), score)
            })
            .collect();
        let pointer = CidrTrie::from_scored(blocks.iter().copied());
        let frozen = FrozenTrie::freeze(&pointer);
        prop_assert_eq!(pointer.len(), frozen.len());

        // Reference: scan every block, keep the longest-prefix hit. On a
        // duplicate CIDR the trie keeps the *last* score inserted, so
        // scan in insertion order with >=.
        let reference = |ip: Ip| -> Option<(Cidr, f64)> {
            let mut best: Option<(Cidr, f64)> = None;
            for &(cidr, score) in &blocks {
                if cidr.contains(ip)
                    && best.is_none_or(|(b, _)| cidr.len() >= b.len())
                {
                    best = Some((cidr, score));
                }
            }
            best
        };

        // Probe each block's boundaries and one-off neighbours, plus
        // arbitrary addresses.
        let mut probes: Vec<Ip> = Vec::new();
        for (cidr, _) in &blocks {
            let first = cidr.first().raw();
            let last = cidr.last().raw();
            for raw in [first, last, first.wrapping_sub(1), last.wrapping_add(1)] {
                probes.push(Ip(raw));
            }
        }
        probes.extend(extra_probes.iter().map(|&r| Ip(r)));

        for ip in probes {
            let expect = reference(ip);
            let from_pointer = pointer.lookup(ip).map(|m| (m.cidr, m.score));
            let from_frozen = frozen.lookup(ip).map(|m| (m.cidr, m.score));
            prop_assert_eq!(from_pointer, expect, "pointer trie at {}", ip);
            prop_assert_eq!(from_frozen, expect, "frozen trie at {}", ip);
            prop_assert_eq!(frozen.contains(ip), expect.is_some());
        }
    }

    #[test]
    fn mmap_snapshot_is_equivalent_to_heap_trie(
        raw in vec(any::<u64>(), 1..80),
        extra_probes in vec(any::<u32>(), 0..64),
    ) {
        // A frozen trie written with freeze_to_file and mapped back from
        // disk must answer every lookup — verdict, matched prefix, AND
        // score — exactly like the heap-backed trie it serialized, and
        // the round trip must preserve the snapshot metadata.
        use std::sync::atomic::{AtomicU64, Ordering};
        use unclean_core::frozen::FrozenTrie;
        use unclean_core::snap::SnapshotMeta;
        static CASE: AtomicU64 = AtomicU64::new(0);

        let blocks: Vec<(Cidr, f64)> = raw
            .iter()
            .map(|&x| {
                let ip = (x >> 32) as u32;
                let len = 8 + (x % 25) as u8;
                let score = ((x >> 8) % 1000) as f64 / 10.0;
                (Cidr::of(Ip(ip), len), score)
            })
            .collect();
        let heap = FrozenTrie::from_scored(blocks.iter().copied());

        let path = std::env::temp_dir().join(format!(
            "unclean-prop-snap-{}-{}.snap",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let meta = SnapshotMeta { built_unix_ms: 777, source_generation: Some(9) };
        heap.freeze_to_file(&path, meta).expect("freeze_to_file");
        // Full-CRC open: the strictest read path must accept its own
        // writer's output bit-for-bit.
        let mapped = FrozenTrie::open_mmap_verified(&path).expect("open_mmap_verified");
        let _ = std::fs::remove_file(&path);

        prop_assert!(mapped.is_mapped());
        prop_assert_eq!(mapped.len(), heap.len());
        prop_assert_eq!(mapped.snapshot_meta(), Some(meta));

        let mut probes: Vec<Ip> = Vec::new();
        for (cidr, _) in &blocks {
            let first = cidr.first().raw();
            let last = cidr.last().raw();
            for raw in [first, last, first.wrapping_sub(1), last.wrapping_add(1)] {
                probes.push(Ip(raw));
            }
        }
        probes.extend(extra_probes.iter().map(|&r| Ip(r)));

        for ip in probes {
            let from_heap = heap.lookup(ip).map(|m| (m.cidr, m.score));
            let from_mmap = mapped.lookup(ip).map(|m| (m.cidr, m.score));
            prop_assert_eq!(from_mmap, from_heap, "mmap vs heap at {}", ip);
            prop_assert_eq!(mapped.contains(ip), from_heap.is_some());
        }
    }

    #[test]
    fn corrupt_or_truncated_snapshots_are_rejected(
        raw in vec(any::<u64>(), 1..40),
        flip in any::<u32>(),
    ) {
        // Any single flipped byte or truncation must be caught: header
        // damage by the O(1) open, section damage by the verified open.
        use std::sync::atomic::{AtomicU64, Ordering};
        use unclean_core::frozen::FrozenTrie;
        use unclean_core::snap::SnapshotMeta;
        static CASE: AtomicU64 = AtomicU64::new(0);

        let blocks: Vec<(Cidr, f64)> = raw
            .iter()
            .map(|&x| (Cidr::of(Ip((x >> 32) as u32), 8 + (x % 25) as u8), 1.0))
            .collect();
        let heap = FrozenTrie::from_scored(blocks.iter().copied());
        let path = std::env::temp_dir().join(format!(
            "unclean-prop-corrupt-{}-{}.snap",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let meta = SnapshotMeta { built_unix_ms: 0, source_generation: None };
        heap.freeze_to_file(&path, meta).expect("freeze_to_file");
        let pristine = std::fs::read(&path).expect("read snapshot");

        // Flip one byte anywhere integrity is promised — the header's
        // CRC-covered bytes (incl. the stored CRC itself) or the node
        // and entry sections; page-alignment padding between them is
        // explicitly don't-care. The verified open must reject it
        // (header CRC, section CRC, or geometry check — any is fine).
        let info = unclean_core::snap::inspect(&path).expect("inspect pristine");
        let covered_ranges = [
            (0usize, 76usize),
            (info.nodes_off as usize, (info.node_count * 16) as usize),
            (info.entries_off as usize, (info.entry_count * 16) as usize),
        ];
        let covered: usize = covered_ranges.iter().map(|&(_, len)| len).sum();
        let mut slot = (flip as usize) % covered;
        let mut at = 0usize;
        for &(start, len) in &covered_ranges {
            if slot < len {
                at = start + slot;
                break;
            }
            slot -= len;
        }
        let mut corrupt = pristine.clone();
        corrupt[at] ^= 0x01 | ((flip >> 8) as u8);
        std::fs::write(&path, &corrupt).expect("write corrupt");
        prop_assert!(
            FrozenTrie::open_mmap_verified(&path).is_err(),
            "flipped byte at {} accepted", at
        );

        // Truncate anywhere strictly inside the file: must be rejected
        // even by the cheap open (bounds check against the header).
        let cut = (flip as usize) % pristine.len();
        std::fs::write(&path, &pristine[..cut]).expect("write truncated");
        prop_assert!(
            FrozenTrie::open_mmap(&path).is_err(),
            "truncation to {} bytes accepted", cut
        );
        let _ = std::fs::remove_file(&path);
    }
}
