//! Cross-crate pipeline coherence: the report inventory's metadata, the
//! relationships between reports, and the NetFlow substrate's fidelity
//! along the way.

use unclean_core::prelude::*;
use unclean_flowgen::{decode_datagram, encode_datagram, FlowGenerator, GeneratorConfig, V5Header};
use unclean_integration::fixture;
use unclean_stats::SeedTree;

#[test]
fn inventory_matches_table1_structure() {
    let f = fixture();
    let r = &f.reports;
    // Tags, classes and provenance per Table 1.
    assert_eq!(r.bot.tag(), "bot");
    assert_eq!(r.bot.class(), ReportClass::Bots);
    assert_eq!(r.bot.provenance(), Provenance::Provided);
    assert_eq!(r.phish.class(), ReportClass::Phishing);
    assert_eq!(r.phish.provenance(), Provenance::Provided);
    assert_eq!(r.scan.class(), ReportClass::Scanning);
    assert_eq!(r.scan.provenance(), Provenance::Observed);
    assert_eq!(r.spam.class(), ReportClass::Spamming);
    assert_eq!(r.spam.provenance(), Provenance::Observed);
    assert_eq!(r.control.class(), ReportClass::Control);
    assert_eq!(r.unclean.class(), ReportClass::Special);
    // Periods per Table 1.
    assert_eq!(r.bot.period().start.to_string(), "2006-10-01");
    assert_eq!(r.bot.period().end.to_string(), "2006-10-14");
    assert_eq!(r.phish.period().start.to_string(), "2006-05-01");
    assert_eq!(r.bot_test.period().start.to_string(), "2006-05-10");
    assert_eq!(r.control.period().start.to_string(), "2006-09-25");
}

#[test]
fn size_ordering_matches_table1() {
    let f = fixture();
    let r = &f.reports;
    assert!(r.control.len() > r.bot.len());
    assert!(r.bot.len() > r.spam.len());
    assert!(r.spam.len() > r.scan.len());
    assert!(
        r.scan.len() > r.phish.len() / 2,
        "scan is within reach of phish scale"
    );
    assert!(r.bot_test.len() <= 186);
    assert!(r.bot_test.len() >= 30);
}

#[test]
fn unclean_union_is_exact() {
    let f = fixture();
    let r = &f.reports;
    let manual = r
        .bot
        .addresses()
        .union(r.phish.addresses())
        .union(r.scan.addresses())
        .union(r.spam.addresses());
    assert_eq!(r.unclean.addresses(), &manual);
    // "note that there is overlap": the union is smaller than the sum.
    let sum: usize = r.unclean_reports().iter().map(|x| x.len()).sum();
    assert!(r.unclean.len() < sum, "cross-indicator overlap exists");
}

#[test]
fn scan_and_bot_reports_overlap_like_figure_1() {
    // Figure 1's phenomenon: a sizable fraction of bot addresses also
    // appear in the scan report (the paper saw up to 35% during campaign
    // peaks; baseline overlap is lower but must be present).
    let f = fixture();
    let overlap = f
        .reports
        .bot
        .addresses()
        .intersect(f.reports.scan.addresses());
    assert!(
        overlap.len() * 20 >= f.reports.scan.len(),
        "scanners are drawn from the bot population: {} of {}",
        overlap.len(),
        f.reports.scan.len()
    );
}

#[test]
fn phishing_is_disjoint_from_the_botnet_ecosystem() {
    // The mechanism behind Figure 4(ii): phishing hosts live on hosting
    // infrastructure, not in the compromised population.
    let f = fixture();
    let with_bot = f
        .reports
        .phish
        .addresses()
        .intersect(f.reports.bot.addresses());
    assert!(
        with_bot.len() * 20 < f.reports.phish.len().max(20),
        "phish/bot overlap should be negligible: {}",
        with_bot.len()
    );
}

#[test]
fn no_report_contains_reserved_or_observed_addresses() {
    let f = fixture();
    let observed = &f.scenario.observed;
    for report in [
        &f.reports.bot,
        &f.reports.phish,
        &f.reports.scan,
        &f.reports.spam,
        &f.reports.control,
        &f.reports.bot_test,
    ] {
        for ip in report.addresses().iter() {
            assert!(!ip.is_reserved(), "{}: reserved {ip}", report.tag());
            assert!(
                !observed.contains(ip),
                "{}: inside observed {ip}",
                report.tag()
            );
        }
    }
}

#[test]
fn border_flows_round_trip_the_v5_wire_format() {
    // Generate a real day's worth of candidate-block flows, export them as
    // V5 datagrams, decode, and verify nothing is lost.
    let f = fixture();
    let model = f.scenario.activity();
    let generator = FlowGenerator::new(
        &f.scenario.observed,
        GeneratorConfig::default(),
        f.scenario.seeds.child("v5-test"),
    );
    let mut flows = Vec::new();
    let day = f.scenario.dates.unclean_window.start;
    model.hostile_events_on(day, |e| {
        if flows.len() < 2_000 {
            generator.expand(&e, |fl| flows.push(fl));
        }
    });
    assert!(flows.len() >= 30, "enough flows to fill a datagram");

    let boot = unclean_flowgen::record::EPOCH_UNIX_SECS + 86_400 * 270;
    let mut sequence = 0u32;
    for chunk in flows.chunks(30) {
        let records: Vec<_> = chunk.iter().map(|fl| fl.to_v5(boot)).collect();
        let header = V5Header {
            count: records.len() as u16,
            sys_uptime_ms: 0,
            unix_secs: boot,
            unix_nsecs: 0,
            flow_sequence: sequence,
            engine_type: 0,
            engine_id: 0,
            sampling_interval: 0,
        };
        let wire = encode_datagram(&header, &records);
        let (h, decoded) = decode_datagram(&wire).expect("well-formed datagram");
        assert_eq!(h.flow_sequence, sequence);
        assert_eq!(decoded, records);
        for (orig, dec) in chunk.iter().zip(&decoded) {
            let back = unclean_flowgen::Flow::from_v5(dec, boot);
            assert_eq!(&back, orig, "flow survives the wire");
        }
        sequence += records.len() as u32;
    }
}

#[test]
fn scenario_regeneration_is_bit_identical() {
    use unclean_netmodel::{Scenario, ScenarioConfig};
    let a = Scenario::generate(ScenarioConfig::at_scale(
        unclean_integration::TEST_SCALE,
        unclean_integration::TEST_SEED,
    ));
    let f = fixture();
    assert_eq!(a.infections, f.scenario.infections);
    assert_eq!(a.phish_sites, f.scenario.phish_sites);
    assert_eq!(a.bot_test_addrs(), f.scenario.bot_test_addrs());
}

#[test]
fn control_report_is_a_plausible_internet_sample() {
    let f = fixture();
    let control = f.reports.control.addresses();
    // Spans many /8s.
    let slash8s: std::collections::HashSet<u8> = control.iter().map(|ip| ip.slash8()).collect();
    assert!(slash8s.len() > 30, "control spans {} /8s", slash8s.len());
    // Multifractal: /24 blocks ≪ addresses (clustering), yet ≫ /16 blocks.
    let counts = f.reports.control.block_counts();
    assert!(counts.at(24) < control.len() as u64);
    assert!(counts.at(24) > counts.at(16));
    // The sampling API the analyses depend on works at this size.
    let mut rng = SeedTree::new(9).stream("sanity");
    let sub = control.sample(&mut rng, 1000).expect("plenty");
    assert_eq!(sub.len(), 1000);
}

#[test]
fn default_scenario_flow_store_drops_nothing() {
    // Satellite for the dropped() bugfix: in the default fault-free
    // scenario, a capacity-bounded FlowStore sized for the day must keep
    // every flow — and the drop count must be *surfaced*, both through
    // the accessor and through the telemetry counter.
    use unclean_flowgen::FlowStore;
    use unclean_telemetry::Registry;
    let f = fixture();
    let model = f.scenario.activity();
    let generator = FlowGenerator::new(
        &f.scenario.observed,
        GeneratorConfig::default(),
        f.scenario.seeds.child("store-audit"),
    );
    let registry = Registry::full();
    let mut store = FlowStore::new(None, usize::MAX);
    store.attach_telemetry(&registry);
    let day = f.scenario.dates.unclean_window.start;
    generator.flows_on(&model, day, true, |flow| store.observe(&flow));
    assert!(!store.flows().is_empty(), "the day produced flows");
    assert_eq!(store.dropped(), 0, "fault-free scenario drops nothing");
    let snap = registry.snapshot();
    assert_eq!(
        snap.counters.get("store.flows_dropped").copied(),
        Some(0),
        "the drop counter is declared and zero, not merely absent"
    );
    assert_eq!(
        snap.counters.get("store.flows_stored").copied(),
        Some(store.flows().len() as u64),
        "stored counter matches the accessor"
    );
}
