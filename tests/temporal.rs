//! End-to-end temporal uncleanliness (§5): the five-month-old bot-test
//! report must predict the present bot/spam/scan reports better than
//! random control draws (Eq. 5), must NOT predict phishing, and phishing
//! history must predict phishing (Figure 5).

use unclean_core::prelude::*;
use unclean_integration::{fixture, TEST_TRIALS};
use unclean_stats::SeedTree;

fn analysis() -> TemporalAnalysis {
    TemporalAnalysis::with_config(TemporalConfig {
        trials: TEST_TRIALS,
        ..TemporalConfig::default()
    })
}

#[test]
fn bot_test_predicts_future_bots() {
    let f = fixture();
    let res = analysis().run(
        &f.reports.bot_test,
        &f.reports.bot,
        f.reports.control.addresses(),
        &SeedTree::new(1),
    );
    assert!(
        res.hypothesis_holds(),
        "Eq. 5 for bots: verdicts {:?}",
        res.verdicts()
    );
    let band = res.predictive_band().expect("band exists");
    // The /24 view must always sit inside the predictive band (it is where
    // the paper anchors §6's blocking). The paper additionally sees the
    // band's lower edge at 20 bits — a full-scale effect: its present
    // reports blanket the /16 universe, which a scaled-down report set
    // cannot (see EXPERIMENTS.md).
    assert!(
        band.0 <= 24 && 24 <= band.1,
        "/24 inside the band, got {band:?}"
    );
}

#[test]
fn bot_test_predicts_future_spamming() {
    let f = fixture();
    let res = analysis().run(
        &f.reports.bot_test,
        &f.reports.spam,
        f.reports.control.addresses(),
        &SeedTree::new(2),
    );
    assert!(
        res.hypothesis_holds(),
        "Eq. 5 for spam: verdicts {:?}",
        res.verdicts()
    );
}

#[test]
fn bot_test_predicts_future_scanning() {
    let f = fixture();
    let res = analysis().run(
        &f.reports.bot_test,
        &f.reports.scan,
        f.reports.control.addresses(),
        &SeedTree::new(3),
    );
    assert!(
        res.hypothesis_holds(),
        "Eq. 5 for scanning: verdicts {:?}",
        res.verdicts()
    );
}

#[test]
fn bot_test_does_not_predict_phishing() {
    // Figure 4(ii)'s negative result: phishing lives on hosting
    // infrastructure, not in the botnet's unclean networks.
    let f = fixture();
    let res = analysis().run(
        &f.reports.bot_test,
        &f.reports.phish_window,
        f.reports.control.addresses(),
        &SeedTree::new(4),
    );
    assert!(
        !res.hypothesis_holds(),
        "bots must not predict phishing: verdicts {:?}, observed {:?}",
        res.verdicts(),
        res.observed
    );
}

#[test]
fn phish_test_predicts_future_phishing() {
    // Figure 5: phishing history predicts phishing, so temporal
    // uncleanliness holds for all four indicators.
    let f = fixture();
    let res = analysis().run(
        &f.reports.phish_test,
        &f.reports.phish_window,
        f.reports.control.addresses(),
        &SeedTree::new(5),
    );
    assert!(
        res.hypothesis_holds(),
        "phish-test predicts phishing: verdicts {:?}",
        res.verdicts()
    );
}

#[test]
fn control_gains_imprecise_successes_at_coarse_prefixes() {
    // §5.2's mechanism for the crossover: "as block size increases, the
    // control report will have a larger number of imprecise successes".
    // At full scale this hands control the win below ~19–20 bits; at
    // reduced scale the crossover slides out of [16, 32], but the
    // mechanism — control intersections growing as prefixes coarsen —
    // must be visible regardless.
    let f = fixture();
    let res = analysis().run(
        &f.reports.bot_test,
        &f.reports.spam,
        f.reports.control.addresses(),
        &SeedTree::new(6),
    );
    let median_at = |n: u32| {
        let i = res.xs.iter().position(|&x| x == n).expect("in range");
        res.control.five_numbers()[i].1.median
    };
    assert!(
        median_at(16) > median_at(20) && median_at(20) >= median_at(24),
        "control intersections grow with coarser prefixes: /16 {} /20 {} /24 {}",
        median_at(16),
        median_at(20),
        median_at(24)
    );
    // And the unclean report's *relative* advantage shrinks toward /16.
    let idx = |n: u32| res.xs.iter().position(|&x| x == n).expect("in range");
    let advantage = |n: u32| res.observed[idx(n)] as f64 / median_at(n).max(0.5);
    assert!(
        advantage(16) < advantage(24),
        "the coarse end erodes the predictor's edge: /16 {:.1} vs /24 {:.1}",
        advantage(16),
        advantage(24)
    );
}

#[test]
fn random_past_predicts_nothing() {
    // Negative control for Eq. 5.
    let f = fixture();
    let control = f.reports.control.addresses();
    let mut rng = SeedTree::new(7).stream("rand-past");
    let sample = control
        .sample(&mut rng, f.reports.bot_test.len())
        .expect("larger");
    let fake = Report::new(
        "random-past",
        ReportClass::Special,
        Provenance::Observed,
        f.reports.bot_test.period(),
        sample,
    );
    let res = analysis().run(&fake, &f.reports.bot, control, &SeedTree::new(8));
    assert!(
        res.test.better_xs().len() <= 1,
        "random history should not predict: {:?}",
        res.test.better_xs()
    );
}

#[test]
fn prediction_over_five_month_gap() {
    // The headline claim: the predictor is five months older than what it
    // predicts.
    let f = fixture();
    let gap = f.reports.bot.period().start - f.reports.bot_test.period().end;
    assert!(
        gap >= 140,
        "bot-test precedes the unclean window by ~5 months: {gap} days"
    );
}

#[test]
fn observed_intersections_decay_with_prefix_length() {
    let f = fixture();
    let curve = prediction_curve(
        f.reports.bot_test.addresses(),
        f.reports.bot.addresses(),
        PrefixRange::PAPER,
    );
    // |C_16 ∩| ≥ |C_24 ∩| ≥ |C_32 ∩| need not be monotone in general, but
    // the coarse end must dominate the fine end.
    assert!(
        curve[0] >= curve[16],
        "coarse blocks intersect at least as much"
    );
}
