//! Shared fixtures for the cross-crate integration tests.
//!
//! Every integration target exercises the same end-to-end object: a small
//! paper-shaped scenario pushed through the full detector pipeline. The
//! fixture is generated once per test process and shared.

use std::sync::OnceLock;
use unclean_detect::{build_reports, PipelineConfig, ReportSet};
use unclean_netmodel::{Scenario, ScenarioConfig};

/// The scale every integration test runs at: large enough for the
/// statistical shapes to be stable, small enough to finish in seconds.
pub const TEST_SCALE: f64 = 0.002;

/// The master seed shared by the integration fixtures.
pub const TEST_SEED: u64 = 20061001;

/// A generated scenario plus its full report inventory.
pub struct Fixture {
    /// The scenario (world, infections, phishing, campaigns).
    pub scenario: Scenario,
    /// The Table 1 / Table 2 report set.
    pub reports: ReportSet,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

/// The shared fixture, generated on first use.
pub fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let scenario = Scenario::generate(ScenarioConfig::at_scale(TEST_SCALE, TEST_SEED));
        let reports = build_reports(&scenario, &PipelineConfig::paper());
        Fixture { scenario, reports }
    })
}

/// Number of control-ensemble trials used in the integration tests (the
/// paper uses 1000; a tenth of that keeps CI fast while the 95% criterion
/// stays meaningful).
pub const TEST_TRIALS: usize = 100;
