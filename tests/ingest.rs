//! The streaming ingest loop, end to end at the library level: V5
//! datagrams over a real UDP socket → bounded ring → durable WAL spool →
//! window rescore → scored blocklist file → `unclean-serve` hot reload.
//! No daemon restarts anywhere — the serving generation advances because
//! the rescore loop published a fresh file, which is the paper's
//! operational claim wired all the way through.

use std::io::{Read, Write};
use std::net::{TcpStream, UdpSocket};
use std::path::PathBuf;
use std::time::{Duration, Instant};
use unclean_core::blocklist::render_scored;
use unclean_core::Ip;
use unclean_detect::{rescore_window, LiveScanConfig};
use unclean_flowgen::record::{proto, tcp_flags, EPOCH_UNIX_SECS};
use unclean_flowgen::{
    encode_datagram, BatchStatus, Flow, FlowSource, UdpFlowSource, UdpSourceConfig, V5Header,
    WalSpool, V5_MAX_RECORDS,
};
use unclean_serve::{ServeConfig, Server};
use unclean_telemetry::Registry;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("unclean-ingest-e2e").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// Scan-shaped traffic: four sources in 9.1.0.0/24 sweeping globally
/// distinct destinations inside hour zero — far past the 64-distinct-dst
/// hourly fan-out threshold.
fn scan_flows(count: u64) -> Vec<Flow> {
    (0..count)
        .map(|i| Flow {
            src: Ip(0x0901_0001 + (i % 4) as u32),
            dst: Ip(0x1e00_0001u32.wrapping_add(i as u32)),
            src_port: 40_000 + (i % 1_024) as u16,
            dst_port: 445,
            proto: proto::TCP,
            packets: 1,
            octets: 40,
            flags: tcp_flags::SYN,
            start_secs: (i % 3_000) as i64,
            duration_secs: 0,
        })
        .collect()
}

/// Send `flows` at `to` as well-formed V5 datagrams with contiguous
/// sequence numbers.
fn send_flows(to: std::net::SocketAddr, flows: &[Flow]) {
    let socket = UdpSocket::bind("127.0.0.1:0").expect("sender");
    let mut seq = 0u32;
    for chunk in flows.chunks(V5_MAX_RECORDS) {
        let records: Vec<_> = chunk.iter().map(|f| f.to_v5(EPOCH_UNIX_SECS)).collect();
        let header = V5Header {
            count: records.len() as u16,
            sys_uptime_ms: 0,
            unix_secs: EPOCH_UNIX_SECS,
            unix_nsecs: 0,
            flow_sequence: seq,
            engine_type: 0,
            engine_id: 0,
            sampling_interval: 0,
        };
        seq = seq.wrapping_add(chunk.len() as u32);
        socket
            .send_to(&encode_datagram(&header, &records), to)
            .expect("send");
        // Keep loopback socket buffers honest.
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// One blocking HTTP/1.0 exchange; retries the connect until the daemon
/// answers. Returns the raw response.
fn http(addr: &str, request: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(mut stream) => {
                stream.write_all(request.as_bytes()).expect("write");
                let mut text = String::new();
                stream.read_to_string(&mut text).expect("read");
                return text;
            }
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("daemon never came up at {addr}: {e}"),
        }
    }
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .unwrap_or("")
}

#[test]
fn udp_to_wal_to_rescore_to_served_generation() {
    let dir = tmp_dir("streaming-loop");
    const SENT: u64 = 1_500;

    // --- Socket → ring: real UDP datagrams into the flow source. ---
    let mut source = UdpFlowSource::bind(UdpSourceConfig {
        poll_timeout: Duration::from_millis(10),
        ..UdpSourceConfig::default()
    })
    .expect("bind");
    send_flows(source.local_addr(), &scan_flows(SENT));

    // --- Ring → WAL: spool every admitted flow, then seal. ---
    let mut spool = WalSpool::create(&dir.join("spool"), EPOCH_UNIX_SECS).expect("spool");
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut batch = Vec::new();
    let mut spooled = 0u64;
    while spooled < SENT {
        assert!(Instant::now() < deadline, "spooled only {spooled}/{SENT}");
        batch.clear();
        if let BatchStatus::Delivered(_) = source.next_batch(&mut batch).expect("batch") {
            for flow in &batch {
                spool.push(flow).expect("push");
            }
            spooled += batch.len() as u64;
        }
    }
    source.stop();
    let telemetry = source.telemetry();
    assert_eq!(telemetry.flows, SENT, "clean stream loses nothing");
    assert_eq!(telemetry.lost_flows, 0);
    let sealed = spool.seal().expect("seal");
    assert!(sealed.is_some(), "a sealed segment materializes");
    assert_eq!(spool.checkpoint().sealed_flows, SENT);

    // --- WAL → rescore: the sealed image replays through the detectors
    // and the scanner's /24 comes out scored. ---
    let image = spool.sealed_image().expect("image");
    let registry = Registry::full();
    let scan = rescore_window(&image, None, &LiveScanConfig::default(), &registry).expect("scan");
    assert_eq!(scan.flows, SENT);
    assert!(
        scan.blocklist
            .iter()
            .any(|(cidr, _)| cidr.to_string() == "9.1.0.0/24"),
        "scanner network missing from {:?}",
        scan.blocklist
    );

    // --- Rescore → reload: serve boots on a decoy list, then picks up
    // the published generation without restarting. ---
    let out = dir.join("blocklist.txt");
    std::fs::write(&out, "203.0.113.0/24 # score=1.0\n").expect("seed list");
    let mut config = ServeConfig::new(&out);
    config.addr = "127.0.0.1:0".to_string();
    config.threads = 2;
    config.watch = Some(Duration::from_millis(50));
    config.stale_after = Some(Duration::from_secs(3_600));
    config.degraded_after = Some(Duration::from_secs(7_200));
    let server = Server::start(config, Registry::full()).expect("serve");
    let addr = server.local_addr().to_string();

    let lookup = http(&addr, "GET /lookup?ip=9.1.0.7 HTTP/1.0\r\n\r\n");
    assert!(
        body_of(&lookup).contains("\"blocked\":false"),
        "decoy generation must not block the scanner yet: {lookup}"
    );

    // Atomic publish, exactly as the ingest daemon does it.
    let text = render_scored(&scan.blocklist, "unclean-ingest");
    let tmp = out.with_extension("tmp");
    std::fs::write(&tmp, &text).expect("tmp write");
    std::fs::rename(&tmp, &out).expect("rename");

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let health = http(&addr, "GET /healthz HTTP/1.0\r\n\r\n");
        if body_of(&health).contains("generation=2") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "watcher never reloaded: {health}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let lookup = http(&addr, "GET /lookup?ip=9.1.0.7 HTTP/1.0\r\n\r\n");
    assert!(
        body_of(&lookup).contains("\"blocked\":true"),
        "reloaded generation must block the scanner: {lookup}"
    );
    assert!(body_of(&lookup).contains("9.1.0.0/24"), "{lookup}");

    // The staleness watchdog exports the generation age.
    let metrics = http(&addr, "GET /metrics HTTP/1.0\r\n\r\n");
    assert!(
        metrics.contains("unclean_serve_generation_age_secs"),
        "{metrics}"
    );

    let quit = http(&addr, "POST /quit HTTP/1.0\r\nContent-Length: 0\r\n\r\n");
    assert!(quit.starts_with("HTTP/1.0 200"), "{quit}");
    server.wait();
}

#[test]
fn recovered_spool_resumes_the_served_window() {
    // A crash between rescores must not change what the next generation
    // serves: reopening the WAL yields the identical sealed image, so the
    // rescore after a restart scores the identical blocklist.
    let dir = tmp_dir("recovery-window");
    let flows = scan_flows(1_200);
    let spool_dir = dir.join("spool");
    let mut spool = WalSpool::create(&spool_dir, EPOCH_UNIX_SECS).expect("spool");
    for flow in &flows {
        spool.push(flow).expect("push");
    }
    spool.seal().expect("seal");
    let image_before = spool.sealed_image().expect("image");
    drop(spool);

    let (spool, report) = WalSpool::open(&spool_dir).expect("recover");
    assert_eq!(report.sealed_flows, 1_200);
    assert_eq!(report.torn_tail_bytes, 0);
    let image_after = spool.sealed_image().expect("image");
    assert_eq!(image_before, image_after, "recovery is byte-exact");

    let registry = Registry::full();
    let before =
        rescore_window(&image_before, None, &LiveScanConfig::default(), &registry).expect("scan");
    let after =
        rescore_window(&image_after, None, &LiveScanConfig::default(), &registry).expect("scan");
    assert_eq!(
        render_scored(&before.blocklist, "x"),
        render_scored(&after.blocklist, "x")
    );
}
