//! Allocation accounting for the zero-copy v2 replay path.
//!
//! The acceptance contract is O(1) *amortized* allocations per replayed
//! flow: decoding borrows the segment bytes (`FlowView`/`SegmentCursor`),
//! yields `Copy` records, and must not allocate per datagram or per flow.
//! This test installs a counting global allocator (its own test binary —
//! the library crates `forbid(unsafe_code)`, a test crate root may not)
//! and verifies the allocation count during a full replay stays flat as
//! the flow count quadruples.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use unclean_core::{BlockSet, Ip, IpSet};
use unclean_flowgen::record::EPOCH_UNIX_SECS;
use unclean_flowgen::{
    CandidateCollector, Flow, IndexedArchive, IndexedArchiveWriter, SegmentCursor,
};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn spool(flows_per_day: u32) -> Vec<u8> {
    let mut writer = IndexedArchiveWriter::new(Vec::new(), EPOCH_UNIX_SECS);
    for day in 0..3i64 {
        for i in 0..flows_per_day {
            writer
                .push(&Flow {
                    src: Ip(0x0a00_0000 + i),
                    dst: Ip(0xc633_6401),
                    src_port: (1024 + i % 60_000) as u16,
                    dst_port: 80,
                    proto: 6,
                    packets: 3 + i % 7,
                    octets: 120 + i % 1400,
                    flags: 0x12,
                    start_secs: day * 86_400 + i64::from(i % 86_000),
                    duration_secs: i % 60,
                })
                .expect("in-memory spool");
        }
    }
    writer.finish().expect("in-memory spool").0
}

/// Walk every segment of `bytes` through the zero-copy cursor, returning
/// (flows delivered, heap allocations during the walk).
fn replay_counting(bytes: &[u8]) -> (u64, u64) {
    let archive = IndexedArchive::open(bytes).expect("indexes").expect("v2");
    let segments = archive.segments().to_vec();
    let mut flows = 0u64;
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..segments.len() {
        let entry = (i > 0).then(|| segments[i - 1].end_seq);
        let mut cursor = SegmentCursor::new(archive.segment_bytes(i), EPOCH_UNIX_SECS, entry);
        cursor.for_each_flow(|_| flows += 1).expect("clean replay");
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    (flows, after - before)
}

#[test]
fn replay_allocations_do_not_scale_with_flow_count() {
    let small = spool(500);
    let large = spool(2_000);

    // Warm-up pass so one-time lazy initialization (error paths, runtime
    // internals) doesn't pollute the measured walks.
    let _ = replay_counting(&small);

    let (small_flows, small_allocs) = replay_counting(&small);
    let (large_flows, large_allocs) = replay_counting(&large);
    assert_eq!(small_flows, 3 * 500);
    assert_eq!(large_flows, 3 * 2_000);

    // O(1) amortized per flow: the walk itself must be allocation-flat.
    // Allow a tiny constant budget (test harness noise), but 4x the flows
    // must not mean 4x the allocations.
    assert!(
        small_allocs <= 8,
        "zero-copy replay of {small_flows} flows made {small_allocs} allocations"
    );
    assert!(
        large_allocs <= 8,
        "zero-copy replay of {large_flows} flows made {large_allocs} allocations"
    );
}

/// Walk every segment of `bytes` through the zero-copy cursor and feed
/// each flow to `collector` — the §6 candidate scan path. Returns
/// (flows delivered, heap allocations during the walk).
fn candidate_scan_counting(bytes: &[u8], collector: &mut CandidateCollector) -> (u64, u64) {
    let archive = IndexedArchive::open(bytes).expect("indexes").expect("v2");
    let segments = archive.segments().to_vec();
    let mut flows = 0u64;
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0..segments.len() {
        let entry = (i > 0).then(|| segments[i - 1].end_seq);
        let mut cursor = SegmentCursor::new(archive.segment_bytes(i), EPOCH_UNIX_SECS, entry);
        cursor
            .for_each_flow(|f| {
                flows += 1;
                collector.observe(f);
            })
            .expect("clean replay");
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    (flows, after - before)
}

#[test]
fn candidate_scan_allocations_do_not_scale_with_flow_count() {
    let small = spool(500);
    let large = spool(2_000);

    // Watch every /24 the spool's sources fall into, so each flow takes
    // the expensive branch (block match + evidence update).
    let sources = IpSet::from_ips((0..2_000u32).map(|i| Ip(0x0a00_0000 + i)));
    let mut collector = CandidateCollector::new(BlockSet::of(&sources, 24));

    // Warm-up: first-seen sources legitimately allocate their evidence
    // entries (amortized over the archive's life); the steady-state
    // contract covers re-scans over a warmed collector — the shape of
    // the §6 analysis, which replays the same spool repeatedly.
    let _ = candidate_scan_counting(&small, &mut collector);
    let _ = candidate_scan_counting(&large, &mut collector);

    let (small_flows, small_allocs) = candidate_scan_counting(&small, &mut collector);
    let (large_flows, large_allocs) = candidate_scan_counting(&large, &mut collector);
    assert_eq!(small_flows, 3 * 500);
    assert_eq!(large_flows, 3 * 2_000);
    assert!(collector.flows_matched() > 0, "scan exercised the hot path");

    assert!(
        small_allocs <= 8,
        "candidate scan of {small_flows} flows made {small_allocs} allocations"
    );
    assert!(
        large_allocs <= 8,
        "candidate scan of {large_flows} flows made {large_allocs} allocations"
    );
}
