//! Failure injection across the pipeline: the detectors and the §6
//! conclusions must survive realistic NetFlow telemetry loss (drops,
//! duplicates, corrupted datagrams — the fault model every flow collector
//! operates under).

use unclean_core::prelude::*;
use unclean_detect::{FanoutConfig, HourlyFanoutDetector, SpamConfig, SpamDetector};
use unclean_flowgen::{FaultConfig, FaultInjector, FlowGenerator, GeneratorConfig};
use unclean_integration::fixture;
use unclean_stats::SeedTree;

/// Run one day of border traffic through detectors behind a fault
/// injector; return (scanners, spammers).
fn detect_under_faults(faults: FaultConfig) -> (IpSet, IpSet) {
    let f = fixture();
    let model = f.scenario.activity();
    let generator = FlowGenerator::new(
        &f.scenario.observed,
        GeneratorConfig::default(),
        f.scenario.seeds.child("fault-test"),
    );
    let mut injector = FaultInjector::new(faults, SeedTree::new(99));
    let mut scan = HourlyFanoutDetector::new(FanoutConfig::default());
    let mut spam = SpamDetector::new(SpamConfig::default());
    let day = f.scenario.dates.unclean_window.start;
    generator.flows_on(&model, day, true, |flow| {
        injector.apply(&flow, |delivered| {
            scan.observe(&delivered);
            spam.observe(&delivered);
        });
    });
    (scan.detected(), spam.detected())
}

#[test]
fn detectors_survive_adverse_telemetry() {
    let (clean_scan, clean_spam) = detect_under_faults(FaultConfig::default());
    let (faulty_scan, faulty_spam) = detect_under_faults(FaultConfig::adverse());
    assert!(!clean_scan.is_empty() && !clean_spam.is_empty());

    // The adverse preset now stacks 15% drop + 15% corrupt with correlated
    // loss bursts and 5% datagram truncation (~24% total loss). That costs
    // detections but nothing close to collapse: fast scans have 10x
    // threshold headroom, spam bursts 2x — the §6 conclusions (unclean
    // reports remain detectable and predictive) must survive the richer
    // fault model.
    let scan_recall = faulty_scan.intersect(&clean_scan).len() as f64 / clean_scan.len() as f64;
    let spam_recall = faulty_spam.intersect(&clean_spam).len() as f64 / clean_spam.len() as f64;
    assert!(scan_recall > 0.8, "scan recall under faults: {scan_recall}");
    assert!(
        spam_recall > 0.75,
        "spam recall under faults: {spam_recall}"
    );

    // Corruption must not conjure spurious detections outside the real
    // scanner population by more than a sliver.
    let scan_extra = faulty_scan.difference(&clean_scan).len() as f64 / clean_scan.len() as f64;
    assert!(scan_extra < 0.05, "spurious scan detections: {scan_extra}");
}

#[test]
fn burst_loss_alone_degrades_gracefully() {
    // Correlated loss is the nastiest realistic fault: whole windows of a
    // scanner's probes vanish together. Even ~8% of flows lost in bursts
    // must leave the detector populations largely intact.
    let (clean_scan, clean_spam) = detect_under_faults(FaultConfig::default());
    let (burst_scan, burst_spam) = detect_under_faults(FaultConfig {
        burst_chance: 0.01,
        burst_len: 8,
        ..FaultConfig::default()
    });
    let scan_recall = burst_scan.intersect(&clean_scan).len() as f64 / clean_scan.len() as f64;
    let spam_recall = burst_spam.intersect(&clean_spam).len() as f64 / clean_spam.len() as f64;
    assert!(
        scan_recall > 0.8,
        "scan recall under burst loss: {scan_recall}"
    );
    assert!(
        spam_recall > 0.75,
        "spam recall under burst loss: {spam_recall}"
    );
    // Loss can only remove evidence, never invent scanners.
    assert_eq!(burst_scan.difference(&clean_scan).len(), 0);
}

#[test]
fn truncation_alone_degrades_gracefully() {
    // Truncated datagrams lose flows outright (no corruption side-channel),
    // so like drops they can only shrink the detected sets.
    let (clean_scan, clean_spam) = detect_under_faults(FaultConfig::default());
    let (trunc_scan, trunc_spam) = detect_under_faults(FaultConfig {
        truncate_chance: 0.1,
        ..FaultConfig::default()
    });
    let scan_recall = trunc_scan.intersect(&clean_scan).len() as f64 / clean_scan.len() as f64;
    let spam_recall = trunc_spam.intersect(&clean_spam).len() as f64 / clean_spam.len() as f64;
    assert!(
        scan_recall > 0.85,
        "scan recall under truncation: {scan_recall}"
    );
    assert!(
        spam_recall > 0.8,
        "spam recall under truncation: {spam_recall}"
    );
    assert_eq!(trunc_scan.difference(&clean_scan).len(), 0);
    assert_eq!(trunc_spam.difference(&clean_spam).len(), 0);
}

#[test]
fn pure_duplication_changes_nothing_for_scan_detection() {
    // Scan detection counts *distinct* destinations, so duplicate delivery
    // must be a strict no-op.
    let (clean_scan, _) = detect_under_faults(FaultConfig::default());
    let (dup_scan, _) = detect_under_faults(FaultConfig {
        duplicate_chance: 0.5,
        ..FaultConfig::default()
    });
    assert_eq!(clean_scan, dup_scan);
}

#[test]
fn duplication_inflates_spam_counts_conservatively() {
    // Spam detection counts deliveries, so duplication can only ADD
    // detections (threshold crossed sooner) — never lose one.
    let (_, clean_spam) = detect_under_faults(FaultConfig::default());
    let (_, dup_spam) = detect_under_faults(FaultConfig {
        duplicate_chance: 0.5,
        ..FaultConfig::default()
    });
    assert_eq!(
        clean_spam.difference(&dup_spam).len(),
        0,
        "no detections lost"
    );
    assert!(dup_spam.len() >= clean_spam.len());
}

#[test]
fn empty_pipeline_degrades_gracefully() {
    // Total telemetry loss: every analysis input is empty, and the
    // analyses refuse loudly (panics with messages) rather than producing
    // silent nonsense — verified here via the catch at the API boundary.
    let (scan, spam) = detect_under_faults(FaultConfig {
        drop_chance: 1.0,
        ..FaultConfig::default()
    });
    assert!(scan.is_empty() && spam.is_empty());
    // Empty reports are rejected by the analyses (programmer-facing
    // contract, documented on the types).
    let f = fixture();
    let empty = Report::new(
        "empty",
        ReportClass::Scanning,
        Provenance::Observed,
        f.reports.scan.period(),
        scan,
    );
    let res = std::panic::catch_unwind(|| {
        DensityAnalysis::with_config(DensityConfig {
            trials: 2,
            ..DensityConfig::default()
        })
        .run(
            &empty,
            f.reports.control.addresses(),
            &[],
            &SeedTree::new(1),
        )
    });
    assert!(res.is_err(), "empty report must be rejected, not analyzed");
}
