//! Failure injection across the pipeline: the detectors and the §6
//! conclusions must survive realistic NetFlow telemetry loss (drops,
//! duplicates, corrupted datagrams — the fault model every flow collector
//! operates under).

use unclean_core::prelude::*;
use unclean_detect::{FanoutConfig, HourlyFanoutDetector, SpamConfig, SpamDetector};
use unclean_flowgen::{FaultConfig, FaultInjector, FlowGenerator, GeneratorConfig};
use unclean_integration::fixture;
use unclean_stats::SeedTree;

/// Run one day of border traffic through detectors behind a fault
/// injector; return (scanners, spammers).
fn detect_under_faults(faults: FaultConfig) -> (IpSet, IpSet) {
    let f = fixture();
    let model = f.scenario.activity();
    let generator = FlowGenerator::new(
        &f.scenario.observed,
        GeneratorConfig::default(),
        f.scenario.seeds.child("fault-test"),
    );
    let mut injector = FaultInjector::new(faults, SeedTree::new(99));
    let mut scan = HourlyFanoutDetector::new(FanoutConfig::default());
    let mut spam = SpamDetector::new(SpamConfig::default());
    let day = f.scenario.dates.unclean_window.start;
    generator.flows_on(&model, day, true, |flow| {
        injector.apply(&flow, |delivered| {
            scan.observe(&delivered);
            spam.observe(&delivered);
        });
    });
    (scan.detected(), spam.detected())
}

#[test]
fn detectors_survive_adverse_telemetry() {
    let (clean_scan, clean_spam) = detect_under_faults(FaultConfig::default());
    let (faulty_scan, faulty_spam) = detect_under_faults(FaultConfig::adverse());
    assert!(!clean_scan.is_empty() && !clean_spam.is_empty());

    // 15% drop + 15% corrupt costs some detections but nothing close to
    // collapse: fast scans have 10x threshold headroom, spam bursts 2x.
    let scan_recall = faulty_scan.intersect(&clean_scan).len() as f64 / clean_scan.len() as f64;
    let spam_recall = faulty_spam.intersect(&clean_spam).len() as f64 / clean_spam.len() as f64;
    assert!(scan_recall > 0.85, "scan recall under faults: {scan_recall}");
    assert!(spam_recall > 0.8, "spam recall under faults: {spam_recall}");

    // Corruption must not conjure spurious detections outside the real
    // scanner population by more than a sliver.
    let scan_extra = faulty_scan.difference(&clean_scan).len() as f64 / clean_scan.len() as f64;
    assert!(scan_extra < 0.05, "spurious scan detections: {scan_extra}");
}

#[test]
fn pure_duplication_changes_nothing_for_scan_detection() {
    // Scan detection counts *distinct* destinations, so duplicate delivery
    // must be a strict no-op.
    let (clean_scan, _) = detect_under_faults(FaultConfig::default());
    let (dup_scan, _) = detect_under_faults(FaultConfig {
        duplicate_chance: 0.5,
        ..FaultConfig::default()
    });
    assert_eq!(clean_scan, dup_scan);
}

#[test]
fn duplication_inflates_spam_counts_conservatively() {
    // Spam detection counts deliveries, so duplication can only ADD
    // detections (threshold crossed sooner) — never lose one.
    let (_, clean_spam) = detect_under_faults(FaultConfig::default());
    let (_, dup_spam) = detect_under_faults(FaultConfig {
        duplicate_chance: 0.5,
        ..FaultConfig::default()
    });
    assert_eq!(clean_spam.difference(&dup_spam).len(), 0, "no detections lost");
    assert!(dup_spam.len() >= clean_spam.len());
}

#[test]
fn empty_pipeline_degrades_gracefully() {
    // Total telemetry loss: every analysis input is empty, and the
    // analyses refuse loudly (panics with messages) rather than producing
    // silent nonsense — verified here via the catch at the API boundary.
    let (scan, spam) = detect_under_faults(FaultConfig {
        drop_chance: 1.0,
        ..FaultConfig::default()
    });
    assert!(scan.is_empty() && spam.is_empty());
    // Empty reports are rejected by the analyses (programmer-facing
    // contract, documented on the types).
    let f = fixture();
    let empty = Report::new(
        "empty",
        ReportClass::Scanning,
        Provenance::Observed,
        f.reports.scan.period(),
        scan,
    );
    let res = std::panic::catch_unwind(|| {
        DensityAnalysis::with_config(DensityConfig { trials: 2, ..DensityConfig::default() })
            .run(&empty, f.reports.control.addresses(), &[], &SeedTree::new(1))
    });
    assert!(res.is_err(), "empty report must be rejected, not analyzed");
}
