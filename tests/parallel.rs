//! The parallel pipeline's determinism contract: running the full
//! supervised benchmark at any thread count must produce byte-identical
//! results. Wall-clock may differ; `results/*.json`, the manifest's
//! output hashes, and every ensemble summary inside them may not.
//!
//! A proptest companion checks the building block the contract rests on:
//! folding per-day detector shards with `merge()` equals one sequential
//! sweep over the same flows.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;
use unclean_bench::runner::{run_all, RunStatus, RunnerConfig};
use unclean_bench::{BenchOpts, ExperimentContext, TelemetryLevel};
use unclean_detect::{FanoutConfig, HourlyFanoutDetector, SpamConfig, SpamDetector};
use unclean_flowgen::record::{proto, tcp_flags};
use unclean_flowgen::Flow;

/// A smoke-scale supervised run into `dir` with the given worker count.
/// Returns the manifest.
fn smoke_run(threads: usize, dir: &Path) -> unclean_bench::runner::Manifest {
    let _ = std::fs::remove_dir_all(dir);
    let opts = BenchOpts {
        scale: 0.002,
        seed: 20061001,
        trials: 20,
        out_dir: Some(dir.to_path_buf()),
        telemetry: TelemetryLevel::Summary,
        threads,
    };
    let ctx = Arc::new(ExperimentContext::generate(opts));
    run_all(ctx, &RunnerConfig::default());
    unclean_bench::runner::Manifest::load(dir).expect("run leaves a manifest")
}

/// The result files whose bytes the determinism contract covers: every
/// experiment's JSON plus the combined `all.json`. The telemetry exports
/// and the manifest itself contain wall-clock durations and are excluded —
/// their *result hashes* are compared instead.
fn result_files(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("results dir") {
        let path = entry.expect("dir entry").path();
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .expect("utf8 name")
            .to_string();
        let timed = ["manifest.json", "telemetry.json", "metrics.prom"];
        if name.ends_with(".json") && !timed.contains(&name.as_str()) {
            out.insert(name, std::fs::read(&path).expect("result file"));
        }
    }
    out
}

#[test]
fn run_all_is_byte_identical_at_any_thread_count() {
    let base = std::env::temp_dir().join("unclean-parallel-determinism");
    let serial_dir = base.join("threads-1");
    let parallel_dir = base.join("threads-8");
    let serial = smoke_run(1, &serial_dir);
    let parallel = smoke_run(8, &parallel_dir);

    // Every experiment must have actually run and succeeded in both modes.
    assert!(!serial.runs.is_empty());
    for (s, p) in serial.runs.iter().zip(&parallel.runs) {
        assert_eq!(s.id, p.id, "manifest order is registry order");
        assert_eq!(s.status, RunStatus::Ok, "{} (serial)", s.id);
        assert_eq!(p.status, RunStatus::Ok, "{} (parallel)", p.id);
        // The manifest's recorded output hashes — the resume contract —
        // must agree file-for-file.
        assert_eq!(s.outputs, p.outputs, "{} output hashes differ", s.id);
    }

    // Byte-for-byte identity of every result file (this covers the
    // ensemble five-number summaries inside fig2–fig5 and the ablations).
    let serial_files = result_files(&serial_dir);
    let parallel_files = result_files(&parallel_dir);
    assert_eq!(
        serial_files.keys().collect::<Vec<_>>(),
        parallel_files.keys().collect::<Vec<_>>(),
        "same result inventory"
    );
    for (name, bytes) in &serial_files {
        assert_eq!(
            bytes, &parallel_files[name],
            "{name} differs between --threads 1 and --threads 8"
        );
    }
}

// ---------------------------------------------------------------------------
// FlowSource trait path: archive replay is thread-count invariant
// ---------------------------------------------------------------------------

/// Draining an `ArchiveFlowSource` must deliver the identical flow
/// sequence at any thread count — the trait path a live consumer swaps
/// in for a UDP socket carries the same determinism contract as the
/// underlying parallel replay.
#[test]
fn archive_flow_source_is_thread_count_invariant() {
    use unclean_flowgen::{ArchiveFlowSource, BatchStatus, FlowSource, IndexedArchiveWriter};

    let boot = 1_136_073_600u32;
    let mut writer = IndexedArchiveWriter::new(Vec::new(), boot);
    for day in 0..6i64 {
        for i in 0..500u32 {
            writer
                .push(&flow(
                    i % 12,
                    i,
                    day,
                    i64::from(i % 24),
                    i % 3 == 0,
                    i % 5 == 0,
                ))
                .expect("push");
        }
    }
    let (bytes, _) = writer.finish().expect("finish");

    let drain = |threads: usize| -> Vec<Flow> {
        let mut source = ArchiveFlowSource::open(&bytes, boot, threads).expect("open");
        let mut out = Vec::new();
        while !matches!(
            source.next_batch(&mut out).expect("batch"),
            BatchStatus::Exhausted
        ) {}
        assert_eq!(source.telemetry().flows, out.len() as u64);
        out
    };
    let sequential = drain(1);
    assert_eq!(sequential.len(), 3_000);
    for threads in [2, 8] {
        assert_eq!(
            sequential,
            drain(threads),
            "{threads}-thread drain diverged from sequential"
        );
    }
}

// ---------------------------------------------------------------------------
// Sharded detector merge == sequential fold
// ---------------------------------------------------------------------------

/// A synthetic flow on `day`: a SYN probe when `payload` is false, a
/// payload-bearing delivery (to the spam port when `smtp`) otherwise.
fn flow(src: u32, dst: u32, day: i64, hour: i64, payload: bool, smtp: bool) -> Flow {
    Flow {
        src: unclean_core::Ip(src),
        dst: unclean_core::Ip(dst),
        src_port: 40_000,
        dst_port: if smtp { 25 } else { 445 },
        proto: proto::TCP,
        packets: if payload { 10 } else { 1 },
        octets: if payload { 1400 } else { 40 },
        flags: if payload {
            tcp_flags::SYN | tcp_flags::ACK | tcp_flags::PSH
        } else {
            tcp_flags::SYN
        },
        start_secs: day * 86_400 + hour * 3600,
        duration_secs: 0,
    }
}

/// One generated flow event, decoded from random bits:
/// (src index, dst, day, hour, payload, smtp). A small source pool keeps
/// the detection thresholds reachable; four day shards exercise the
/// per-day partitioning.
fn decode_event(bits: u64) -> (u32, u32, i64, i64, bool, bool) {
    let src = (bits % 12) as u32;
    let dst = ((bits >> 4) % 4096) as u32;
    let day = ((bits >> 16) % 4) as i64;
    let hour = ((bits >> 18) % 24) as i64;
    let payload = bits & (1 << 24) != 0;
    let smtp = bits & (1 << 25) != 0;
    (src, dst, day, hour, payload, smtp)
}

proptest! {
    /// Per-day sharding with `merge()` must equal the sequential
    /// day-by-day sweep, for both detectors, on arbitrary flow streams.
    #[test]
    fn sharded_detector_merge_equals_sequential_fold(
        events in proptest::collection::vec(any::<u64>(), 0..400),
        threshold in 2usize..8,
    ) {
        // Group flows by day, preserving arrival order within each day —
        // exactly how the day-sharded pipeline partitions them.
        let mut by_day: BTreeMap<i64, Vec<Flow>> = BTreeMap::new();
        for &bits in &events {
            let (s, d, day, hour, payload, smtp) = decode_event(bits);
            by_day.entry(day).or_default().push(
                flow(0x0a00_0000 + s, 0x1e00_0000 + d, day, hour, payload, smtp),
            );
        }

        let scan_cfg = FanoutConfig { hourly_threshold: threshold };
        let spam_cfg = SpamConfig { daily_message_threshold: threshold as u32 };

        // Sequential: one detector pair over the days in order, flushing
        // window state at each day boundary (the pre-sharding pipeline).
        let mut seq_scan = HourlyFanoutDetector::new(scan_cfg.clone());
        let mut seq_spam = SpamDetector::new(spam_cfg.clone());
        for flows in by_day.values() {
            for f in flows {
                seq_scan.observe(f);
                seq_spam.observe(f);
            }
            seq_scan.flush_window_state();
            seq_spam.flush_window_state();
        }

        // Sharded: a fresh detector pair per day, folded in day order.
        let mut fold_scan = HourlyFanoutDetector::new(scan_cfg.clone());
        let mut fold_spam = SpamDetector::new(spam_cfg.clone());
        for flows in by_day.values() {
            let mut shard_scan = HourlyFanoutDetector::new(scan_cfg.clone());
            let mut shard_spam = SpamDetector::new(spam_cfg.clone());
            for f in flows {
                shard_scan.observe(f);
                shard_spam.observe(f);
            }
            shard_scan.flush_window_state();
            shard_spam.flush_window_state();
            fold_scan.merge(shard_scan);
            fold_spam.merge(shard_spam);
        }

        prop_assert_eq!(fold_scan.detected(), seq_scan.detected());
        prop_assert_eq!(fold_spam.detected(), seq_spam.detected());
    }
}

// ---------------------------------------------------------------------------
// /8-sharded scenario generation is thread-count invariant
// ---------------------------------------------------------------------------

/// `Scenario::generate` fans /8-shaped shards (population cascade, per-/24
/// profiles, the epidemic) across the worker pool. Shard boundaries and
/// RNG streams depend only on the data, so the generated world must be
/// byte-identical at any thread count.
#[test]
fn sharded_scenario_generation_is_thread_count_invariant() {
    use unclean_netmodel::{Scenario, ScenarioConfig};

    let generate = |threads: usize| {
        let mut config = ScenarioConfig::at_scale(0.002, 20061001);
        config.threads = threads;
        Scenario::generate(config)
    };
    let serial = generate(1);
    let sharded = generate(8);
    assert_eq!(
        serde_json::to_string(&serial.world).expect("world serializes"),
        serde_json::to_string(&sharded.world).expect("world serializes"),
        "world diverged between --threads 1 and --threads 8"
    );
    assert_eq!(
        serde_json::to_string(&serial.infections).expect("infections serialize"),
        serde_json::to_string(&sharded.infections).expect("infections serialize"),
        "infection history diverged between --threads 1 and --threads 8"
    );
    assert_eq!(
        serde_json::to_string(&serial.phish_sites).expect("phish sites serialize"),
        serde_json::to_string(&sharded.phish_sites).expect("phish sites serialize"),
        "phish history diverged between --threads 1 and --threads 8"
    );
}

// ---------------------------------------------------------------------------
// Out-of-core sweep == in-memory sweep
// ---------------------------------------------------------------------------

/// The reference the out-of-core pipeline must match: expand each day's
/// flows into a plain `Vec` (the pre-spooling pipeline's peak-memory
/// shape) and feed the detectors directly, flushing window state at each
/// day boundary.
fn in_memory_sweep(
    scenario: &unclean_netmodel::Scenario,
    cfg: &unclean_detect::PipelineConfig,
) -> (unclean_core::IpSet, unclean_core::IpSet) {
    use unclean_flowgen::FlowGenerator;

    let model = scenario.activity();
    let generator = FlowGenerator::new(
        &scenario.observed,
        cfg.generator.clone(),
        scenario.seeds.child("flowgen"),
    );
    let mut scan = HourlyFanoutDetector::new(cfg.fanout.clone());
    let mut spam = SpamDetector::new(cfg.spam.clone());
    for day in scenario.dates.unclean_window.days() {
        let mut flows: Vec<Flow> = Vec::new();
        generator.flows_on(&model, day, cfg.detect_over_benign, |f| flows.push(f));
        for f in &flows {
            scan.observe(f);
            spam.observe(f);
        }
        scan.flush_window_state();
        spam.flush_window_state();
    }
    (scan.detected(), spam.detected())
}

/// The out-of-core sweep (spool each day through the v2 indexed
/// archive, replay through zero-copy cursors in day chunks) must report
/// the identical scanner and spammer sets as the in-memory reference
/// sweep — at 1 and 8 threads, at two scenario scales, over
/// property-drawn seeds. Scenario generation is too expensive for the
/// default 64-case budget, so the seed strategy is driven by hand for a
/// fixed two cases instead of through `proptest!`.
#[test]
fn out_of_core_sweep_matches_in_memory_sweep() {
    use proptest::{Strategy, TestRng};
    use unclean_detect::{build_reports_with, PipelineConfig};
    use unclean_netmodel::{Scenario, ScenarioConfig};
    use unclean_telemetry::Registry;

    let mut rng = TestRng::from_name("out_of_core_sweep_matches_in_memory_sweep");
    let seed_strategy = 1u64..1_000_000;
    for _case in 0..2 {
        let seed = Strategy::generate(&seed_strategy, &mut rng);
        for scale in [0.002, 0.005] {
            let scenario = Scenario::generate(ScenarioConfig::at_scale(scale, seed));
            let (ref_scan, ref_spam) = in_memory_sweep(&scenario, &PipelineConfig::paper());
            let observed_blocks = scenario.observed.blocks().to_vec();
            for threads in [1usize, 8] {
                let mut cfg = PipelineConfig::paper();
                cfg.threads = threads;
                let reports = build_reports_with(&scenario, &cfg, &Registry::off());
                // build_reports_with ships filtered reports; apply the
                // same §3.2 filter to the reference detector output.
                let filter = |addrs: unclean_core::IpSet, tag: &str| {
                    unclean_core::Report::new(
                        tag,
                        unclean_core::ReportClass::Scanning,
                        unclean_core::Provenance::Observed,
                        scenario.dates.unclean_window,
                        addrs,
                    )
                    .filter_for_analysis(&observed_blocks)
                };
                let scan_ref = filter(ref_scan.clone(), "scan-ref");
                let spam_ref = filter(ref_spam.clone(), "spam-ref");
                prop_assert_eq!(
                    reports.scan.addresses(),
                    scan_ref.addresses(),
                    "scan report diverged at scale {} threads {}",
                    scale,
                    threads
                );
                prop_assert_eq!(
                    reports.spam.addresses(),
                    spam_ref.addresses(),
                    "spam report diverged at scale {} threads {}",
                    scale,
                    threads
                );
            }
        }
    }
}
