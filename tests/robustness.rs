//! Cross-seed robustness: the paper-shape claims must hold for *any* seed,
//! not one lucky draw. Three fresh worlds (distinct master seeds, the
//! integration scale) each rebuild the full pipeline and re-check the
//! headline shapes with reduced trial counts.

use unclean_core::prelude::*;
use unclean_detect::{build_candidates, build_reports, PipelineConfig};
use unclean_netmodel::{Scenario, ScenarioConfig};
use unclean_stats::SeedTree;

const SEEDS: [u64; 3] = [101, 7_777, 424_242];
const SCALE: f64 = 0.002;
const TRIALS: usize = 60;

fn pipeline(seed: u64) -> (Scenario, unclean_detect::ReportSet) {
    let scenario = Scenario::generate(ScenarioConfig::at_scale(SCALE, seed));
    let reports = build_reports(&scenario, &PipelineConfig::paper());
    (scenario, reports)
}

#[test]
fn headline_shapes_hold_across_seeds() {
    for seed in SEEDS {
        let (scenario, reports) = pipeline(seed);
        let control = reports.control.addresses();

        // Spatial uncleanliness for the bot report (Eq. 3).
        let density = DensityAnalysis::with_config(DensityConfig {
            trials: TRIALS,
            ..DensityConfig::default()
        })
        .run(&reports.bot, control, &[], &SeedTree::new(seed ^ 1));
        assert!(
            density.hypothesis_holds(),
            "seed {seed}: Eq. 3 for bots, support {:?}",
            density.support
        );

        // Temporal uncleanliness: bot-test → spam (Eq. 5).
        let temporal = TemporalAnalysis::with_config(TemporalConfig {
            trials: TRIALS,
            ..TemporalConfig::default()
        });
        let spam_pred = temporal.run(
            &reports.bot_test,
            &reports.spam,
            control,
            &SeedTree::new(seed ^ 2),
        );
        assert!(
            spam_pred.hypothesis_holds(),
            "seed {seed}: bot-test must predict spam, verdicts {:?}",
            spam_pred.verdicts()
        );

        // The phishing negative.
        if !reports.phish_window.is_empty() {
            let phish_pred = temporal.run(
                &reports.bot_test,
                &reports.phish_window,
                control,
                &SeedTree::new(seed ^ 3),
            );
            assert!(
                !phish_pred.hypothesis_holds(),
                "seed {seed}: bot-test must NOT predict phishing"
            );
        }

        // Blocking precision at /24.
        let candidates =
            build_candidates(&scenario, &reports.bot_test, 24, &PipelineConfig::paper());
        let partition = Partition::new(&candidates, reports.unclean.addresses());
        let table = BlockingAnalysis::default().run(reports.bot_test.addresses(), &partition);
        let r24 = table.row(24).expect("row 24");
        assert!(
            r24.precision() > 0.7,
            "seed {seed}: precision at /24 = {:.2} (tp {} fp {})",
            r24.precision(),
            r24.tp,
            r24.fp
        );
        assert!(
            partition.hostile.len() > partition.innocent.len() * 2,
            "seed {seed}: hostile {} ≫ innocent {}",
            partition.hostile.len(),
            partition.innocent.len()
        );
    }
}
