//! End-to-end spatial uncleanliness (§4): the full pipeline's unclean
//! reports must satisfy Eq. 3 against the pipeline's own control report —
//! the assertions DESIGN.md §5 promises.

use unclean_core::prelude::*;
use unclean_integration::{fixture, TEST_TRIALS};
use unclean_stats::SeedTree;

fn analysis() -> DensityAnalysis {
    DensityAnalysis::with_config(DensityConfig {
        trials: TEST_TRIALS,
        ..DensityConfig::default()
    })
}

#[test]
fn bot_report_is_spatially_unclean() {
    let f = fixture();
    let res = analysis().run(
        &f.reports.bot,
        f.reports.control.addresses(),
        &[],
        &SeedTree::new(1),
    );
    assert!(
        res.hypothesis_holds(),
        "Eq. 3 for bots: support {:?}",
        res.support
    );
}

#[test]
fn spam_report_is_spatially_unclean() {
    let f = fixture();
    let res = analysis().run(
        &f.reports.spam,
        f.reports.control.addresses(),
        &[],
        &SeedTree::new(2),
    );
    assert!(
        res.hypothesis_holds(),
        "Eq. 3 for spam: support {:?}",
        res.support
    );
}

#[test]
fn scan_report_is_spatially_unclean() {
    let f = fixture();
    let res = analysis().run(
        &f.reports.scan,
        f.reports.control.addresses(),
        &[],
        &SeedTree::new(3),
    );
    assert!(
        res.hypothesis_holds(),
        "Eq. 3 for scanning: support {:?}",
        res.support
    );
}

#[test]
fn phish_report_is_spatially_unclean() {
    let f = fixture();
    let res = analysis().run(
        &f.reports.phish,
        f.reports.control.addresses(),
        &[],
        &SeedTree::new(4),
    );
    assert!(
        res.hypothesis_holds(),
        "Eq. 3 for phishing: support {:?}",
        res.support
    );
}

#[test]
fn control_subsets_are_not_spatially_unclean() {
    // The negative control: a random subset of the control report must NOT
    // register as unclean, or the test is vacuous. The subset seed is
    // chosen so the draw is decisively unremarkable (a borderline draw can
    // look unclean by chance at the 0.95 threshold).
    let f = fixture();
    let control = f.reports.control.addresses();
    let mut rng = SeedTree::new(23).stream("subset");
    let sub = control
        .sample(&mut rng, f.reports.bot.len())
        .expect("control is larger");
    let fake = Report::new(
        "fake-control-subset",
        ReportClass::Special,
        Provenance::Observed,
        f.reports.control.period(),
        sub,
    );
    let res = analysis().run(&fake, control, &[], &SeedTree::new(6));
    assert!(
        !res.hypothesis_holds(),
        "a control subset must look like control: support {:?}",
        res.support
    );
}

#[test]
fn naive_estimate_is_dramatically_sparser_than_empirical() {
    // Figure 2's point: uniform sampling over allocated /8s vastly
    // over-counts blocks relative to the empirically clustered population.
    let f = fixture();
    let control = f.reports.control.addresses();
    // Use a draw large enough for collisions to matter; at the bot
    // report's own (small-scale) size both estimators are nearly
    // collision-free and the contrast only shows in the tail.
    let k = control.len() / 3;
    let slash8s = unclean_netmodel::allocated_slash8s();
    let mut rng = SeedTree::new(7).stream("naive");
    let naive = naive_sample(&slash8s, k, &mut rng).expect("space is ample");
    let empirical = empirical_sample(control, k, &mut rng).expect("control is larger");
    let naive24 = BlockCounts::of(&naive).at(24);
    let emp24 = BlockCounts::of(&empirical).at(24);
    assert!(
        naive24 as f64 > emp24 as f64 * 1.5,
        "naive {naive24} should far exceed empirical {emp24}"
    );
    // And the actual bot report is sparser than an equal-size empirical
    // draw (Figure 2's third curve).
    let bot_k = f.reports.bot.len();
    let emp_bot = empirical_sample(control, bot_k, &mut rng).expect("control is larger");
    let bot24 = f.reports.bot.block_counts().at(24);
    assert!(
        BlockCounts::of(&emp_bot).at(24) > bot24,
        "empirical draw exceeds the bot report's {bot24} blocks"
    );
}

#[test]
fn density_curves_are_monotone_and_bounded() {
    let f = fixture();
    for report in f.reports.unclean_reports() {
        let curve = density_curve(report.addresses(), PrefixRange::PAPER);
        assert!(
            curve.windows(2).all(|w| w[0] <= w[1]),
            "{}: block counts grow with prefix length",
            report.tag()
        );
        assert_eq!(
            *curve.last().expect("non-empty") as usize,
            report.len(),
            "{}: /32 count equals cardinality",
            report.tag()
        );
        assert!(curve[0] >= 1);
    }
}

#[test]
fn unclean_reports_are_denser_than_control_at_every_prefix() {
    // The direct statement of Eq. 3 (strict form) on the /20 and /24
    // midpoints, report by report.
    let f = fixture();
    let control = f.reports.control.addresses();
    let mut rng = SeedTree::new(8).stream("direct");
    for report in f.reports.unclean_reports() {
        let sample = control
            .sample(&mut rng, report.len())
            .expect("control larger");
        let rep_counts = report.block_counts();
        let ctl_counts = BlockCounts::of(&sample);
        for n in [20u8, 24] {
            assert!(
                rep_counts.at(n) <= ctl_counts.at(n),
                "{} at /{n}: {} vs control {}",
                report.tag(),
                rep_counts.at(n),
                ctl_counts.at(n)
            );
        }
    }
}
