//! The forecasting layer, end to end at the workspace level: a seeded
//! scenario's flows written into a v2 indexed archive → per-/16 daily
//! report series via `read_day_range` → Holt level+trend fit → held-out
//! scoring against the persistence baseline → generation-stamped
//! artifact served and hot-reloaded by `unclean-serve`.

use crossbeam::executor::Executor;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::{Duration, Instant};
use unclean_core::Day;
use unclean_flowgen::record::EPOCH_UNIX_SECS;
use unclean_flowgen::{FlowGenerator, GeneratorConfig, IndexedArchiveWriter};
use unclean_forecast::{
    evaluate, publish_atomic, DailySeries, ForecastArtifact, ForecastConfig, ForecastModel,
};
use unclean_netmodel::{Scenario, ScenarioConfig};
use unclean_serve::{ServeConfig, Server};
use unclean_telemetry::Registry;

/// Days of flow history synthesized into the shared archive.
const ARCHIVE_DAYS: u32 = 40;

/// A smoke-scale v2 indexed archive of hostile flows, generated once per
/// test process — the same object `unclean forecast synth` publishes.
fn archive_bytes() -> &'static [u8] {
    static ARCHIVE: OnceLock<Vec<u8>> = OnceLock::new();
    ARCHIVE.get_or_init(|| {
        let scenario = Scenario::generate(ScenarioConfig::at_scale(0.002, 11));
        let model = scenario.activity();
        let generator = FlowGenerator::new(
            &scenario.observed,
            GeneratorConfig::default(),
            scenario.seeds.child("flowgen"),
        );
        let mut writer = IndexedArchiveWriter::new(Vec::new(), EPOCH_UNIX_SECS);
        let start = scenario.dates.full_span.start;
        let mut write_error = None;
        for i in 0..ARCHIVE_DAYS {
            generator.flows_on(&model, Day(start.0 + i as i32), false, |flow| {
                if write_error.is_none() {
                    if let Err(e) = writer.push(&flow) {
                        write_error = Some(e.to_string());
                    }
                }
            });
        }
        assert_eq!(write_error, None);
        let (bytes, index) = writer.finish().expect("finish archive");
        assert!(!index.segments.is_empty());
        bytes
    })
}

fn archive_series() -> DailySeries {
    let (series, _telemetry) = DailySeries::from_archive(archive_bytes(), None).expect("series");
    series
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("unclean-forecast-e2e").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// One blocking HTTP/1.0 exchange; retries the connect until the daemon
/// answers. Returns the raw response.
fn http(addr: &str, request: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(mut stream) => {
                stream.write_all(request.as_bytes()).expect("write");
                let mut text = String::new();
                stream.read_to_string(&mut text).expect("read");
                return text;
            }
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("daemon never came up at {addr}: {e}"),
        }
    }
}

fn body_of(response: &str) -> &str {
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body)
        .unwrap_or("")
}

#[test]
fn model_beats_persistence_on_archived_series() {
    // The acceptance claim at smoke scale: trained through the archive
    // read path, the smoother's held-out Brier score beats carrying the
    // last observed count forward.
    let series = archive_series();
    let config = ForecastConfig::default();
    let train = series.days() - config.horizon_days as usize;
    let pool = Executor::new(2);
    let report = evaluate(&series, train, &config, &pool).expect("evaluate");
    assert!(
        report.networks > 10,
        "too few networks: {}",
        report.networks
    );
    assert!(
        report.beats_persistence(),
        "model brier {} vs persistence {}",
        report.model_brier,
        report.persistence_brier
    );
    assert!(report.brier_skill() > 0.0);
}

#[test]
fn fit_and_eval_are_thread_count_invariant() {
    // Byte-identical artifacts and identical held-out scores whether the
    // fit fans out over 1 thread or 8.
    let series = archive_series();
    let config = ForecastConfig::default();
    let one = Executor::new(1);
    let eight = Executor::new(8);

    let render = |pool: &Executor| {
        let model = ForecastModel::fit(&series, &config, pool);
        let mut artifact = ForecastArtifact::from_model(&model, "determinism");
        artifact.generation = Some(3);
        artifact.render()
    };
    let text_one = render(&one);
    let text_eight = render(&eight);
    assert_eq!(text_one, text_eight, "artifact bytes diverge across pools");

    // Render → parse → render is also byte-stable on the fitted state.
    let reparsed = ForecastArtifact::parse(&text_one).expect("parse");
    assert_eq!(reparsed.render(), text_one);

    let train = series.days() - config.horizon_days as usize;
    let report_one = evaluate(&series, train, &config, &one).expect("evaluate");
    let report_eight = evaluate(&series, train, &config, &eight).expect("evaluate");
    assert_eq!(report_one, report_eight);
}

#[test]
fn forecast_endpoint_hot_reloads_generations() {
    // Serve boots with a generation-stamped forecast artifact, answers
    // /forecast with the full schema, then picks up an atomically
    // republished artifact through the watcher — no restart.
    let dir = tmp_dir("hot-reload");
    let series = archive_series();
    let config = ForecastConfig::default();
    let pool = Executor::new(2);
    let model = ForecastModel::fit(&series, &config, &pool);
    let mut artifact = ForecastArtifact::from_model(&model, "e2e");
    artifact.generation = Some(1);

    let forecast_path = dir.join("forecast.txt");
    publish_atomic(&forecast_path, artifact.render().as_bytes()).expect("publish");
    let blocklist = dir.join("blocklist.txt");
    std::fs::write(&blocklist, "203.0.113.0/24 # score=1.0\n").expect("blocklist");

    let mut serve = ServeConfig::new(&blocklist);
    serve.addr = "127.0.0.1:0".to_string();
    serve.threads = 2;
    serve.watch = Some(Duration::from_millis(50));
    serve.forecast = Some(forecast_path.clone());
    let server = Server::start(serve, Registry::full()).expect("serve");
    let addr = server.local_addr().to_string();

    let known = artifact.entries.first().expect("nonempty model").network;
    let query = format!(
        "GET /forecast?net={}.{}.0.0/16&horizon=3 HTTP/1.0\r\n\r\n",
        known >> 8,
        known & 255
    );
    let body = body_of(&http(&addr, &query)).to_string();
    for field in [
        "\"known\":true",
        "\"horizon_days\":3",
        "\"predicted_rate\":",
        "\"ci_low\":",
        "\"ci_high\":",
        "\"score_half_life\":",
        "\"generation\":1",
        "\"source_generation\":1",
    ] {
        assert!(body.contains(field), "missing {field} in {body}");
    }

    // Republish with a new source generation, exactly as `forecast fit`
    // does it (tmp + rename), and wait for the watcher.
    artifact.generation = Some(7);
    publish_atomic(&forecast_path, artifact.render().as_bytes()).expect("republish");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let body = body_of(&http(&addr, &query)).to_string();
        if body.contains("\"generation\":2") && body.contains("\"source_generation\":7") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "watcher never reloaded the forecast: {body}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // An unseen network answers known:false instead of erroring.
    let miss = body_of(&http(
        &addr,
        "GET /forecast?net=255.255.0.0/16 HTTP/1.0\r\n\r\n",
    ))
    .to_string();
    assert!(miss.contains("\"known\":false"), "{miss}");

    let quit = http(&addr, "POST /quit HTTP/1.0\r\nContent-Length: 0\r\n\r\n");
    assert!(quit.starts_with("HTTP/1.0 200"), "{quit}");
    server.wait();
}
