//! Cross-crate tests for the v2 indexed segment archive: round-trip
//! properties at any thread count, the checked-in v1 golden compat
//! contract, per-segment fault quarantine, and equivalence of the
//! archive-backed candidate scan with direct collection.

use crossbeam::executor::Executor;
use proptest::collection::vec;
use proptest::prelude::*;
use unclean_core::{BlockSet, Ip};
use unclean_detect::{build_candidates_with, PipelineConfig};
use unclean_flowgen::record::EPOCH_UNIX_SECS;
use unclean_flowgen::{
    faults, ArchiveReader, ArchiveWriter, CandidateCollector, Flow, FlowArchive, FlowGenerator,
    IndexedArchive, IndexedArchiveWriter, IndexedError,
};
use unclean_integration::fixture;
use unclean_telemetry::Registry;

const BOOT: u32 = EPOCH_UNIX_SECS;

/// Expand one random seed into a fully-populated flow (splitmix64 per
/// field) — the vendored proptest shim has no tuple strategies, so the
/// per-flow variety comes from this deterministic expansion instead.
fn flow_from_seed(seed: u64) -> Flow {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    let day = (next() % 5) as i64;
    let sec = (next() % 86_000) as i64;
    Flow {
        src: Ip(next() as u32),
        dst: Ip(next() as u32),
        src_port: next() as u16,
        dst_port: next() as u16,
        proto: next() as u8,
        packets: 1 + (next() % 1_000) as u32,
        octets: 1 + (next() % 100_000) as u32,
        flags: next() as u8,
        start_secs: day * 86_400 + sec,
        duration_secs: (next() % 600) as u32,
    }
}

fn spool_v2(flows: &[Flow]) -> Vec<u8> {
    let mut writer = IndexedArchiveWriter::new(Vec::new(), BOOT);
    for f in flows {
        writer.push(f).expect("in-memory spool");
    }
    writer.finish().expect("in-memory spool").0
}

fn replay_parallel(archive: &IndexedArchive<'_>, threads: usize) -> Vec<Flow> {
    archive
        .replay_with(&Executor::new(threads), None, false, |_, cursor| {
            let mut flows = Vec::new();
            cursor.for_each_flow(|f| flows.push(*f))?;
            Ok(flows)
        })
        .expect("clean archive replays")
        .outputs
        .into_iter()
        .flat_map(|o| o.output.expect("strict replay delivers"))
        .collect()
}

proptest! {
    /// The satellite round-trip property: write → index → parallel read ==
    /// sequential read == the original flows, at any thread count.
    #[test]
    fn v2_round_trip_at_any_thread_count(
        seeds in vec(any::<u64>(), 1..400),
        threads in 1usize..5,
    ) {
        let mut flows: Vec<Flow> = seeds.iter().map(|&s| flow_from_seed(s)).collect();
        // The writer's contract is day-ordered input (one segment per
        // day); intra-day order is preserved as-is.
        flows.sort_by_key(|f| f.day().0);
        let bytes = spool_v2(&flows);
        let archive = IndexedArchive::open(&bytes).expect("indexes").expect("v2");
        let (sequential, seq_telemetry) = archive.read_day_range(None).expect("sequential");
        prop_assert_eq!(&sequential, &flows);
        prop_assert_eq!(seq_telemetry.flows, flows.len() as u64);
        prop_assert_eq!(seq_telemetry.lost_flows, 0);
        let parallel = replay_parallel(&archive, threads);
        prop_assert_eq!(&parallel, &sequential);
    }
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("data/golden_v1.flows")
}

/// The deterministic flow set behind the golden archive: 3 days × 67
/// flows with every field exercised.
fn golden_flows() -> Vec<Flow> {
    let mut flows = Vec::new();
    for day in 0..3i64 {
        for i in 0..67u32 {
            flows.push(Flow {
                src: Ip(0x0a00_0000 ^ (i.wrapping_mul(2_654_435_761))),
                dst: Ip(0xc633_6401 + i),
                src_port: (1024 + 37 * i % 60_000) as u16,
                dst_port: if i % 3 == 0 { 80 } else { 25 },
                proto: if i % 5 == 0 { 17 } else { 6 },
                packets: 1 + i % 97,
                octets: 40 + 1500 * (i % 13),
                flags: (i % 64) as u8,
                start_secs: day * 86_400 + i64::from(i * 1_201 % 86_000),
                duration_secs: i % 300,
            });
        }
    }
    flows
}

fn golden_bytes() -> Vec<u8> {
    let mut writer = ArchiveWriter::new(Vec::new(), BOOT);
    for f in golden_flows() {
        writer.push(&f).expect("in-memory spool");
    }
    writer.finish().expect("in-memory spool").0
}

/// Regenerate `tests/data/golden_v1.flows`. Run explicitly with
/// `--ignored` only when the fixture is intentionally rebuilt — the
/// checked-in bytes are the v1 compatibility contract.
#[test]
#[ignore]
fn regenerate_golden_v1() {
    let path = golden_path();
    std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
    std::fs::write(&path, golden_bytes()).expect("write golden");
}

/// v1 compat: the checked-in golden archive still decodes to the same
/// flows, still byte-matches today's v1 writer, still falls back to the
/// sequential path (no footer), and upgrades losslessly to v2.
#[test]
fn v1_golden_archive_reads_and_upgrades() {
    let bytes = std::fs::read(golden_path()).expect("golden archive checked in");
    assert_eq!(
        bytes,
        golden_bytes(),
        "v1 writer output drifted from the golden archive"
    );
    let flows = ArchiveReader::new(bytes.as_slice(), BOOT)
        .read_all()
        .expect("v1 read");
    assert_eq!(flows, golden_flows());

    // No trailer ⇒ the sniffing open falls back to v1.
    match FlowArchive::open(&bytes).expect("open") {
        FlowArchive::V1(_) => {}
        FlowArchive::V2(_) => panic!("golden v1 archive misdetected as v2"),
    }

    // Upgrade to v2: same flows, one segment per day, indexed reads work.
    let (v2, index, telemetry) =
        unclean_flowgen::indexed::upgrade_v1(&bytes, BOOT).expect("upgrade");
    assert_eq!(telemetry.flows, flows.len() as u64);
    assert_eq!(telemetry.lost_flows, 0);
    assert_eq!(index.segments.len(), 3);
    let archive = IndexedArchive::open(&v2).expect("indexes").expect("v2");
    let (upgraded, _) = archive.read_day_range(None).expect("v2 read");
    assert_eq!(upgraded, flows);
}

/// A truncated final segment (the classic crash-mid-write shape, with the
/// footer still intact from the previous generation) quarantines only
/// that segment: lenient replay delivers every earlier day untouched.
#[test]
fn truncated_final_segment_quarantines_only_that_segment() {
    let flows: Vec<Flow> = golden_flows();
    let mut bytes = spool_v2(&flows);
    let index = IndexedArchive::open(&bytes)
        .expect("indexes")
        .expect("v2")
        .index()
        .clone();
    assert_eq!(index.segments.len(), 3);
    let last = index.segments[2];
    faults::truncate_segment_tail(&mut bytes, &last, 16);

    let archive = IndexedArchive::open(&bytes)
        .expect("footer intact")
        .expect("v2");
    // Strict: the damage is an error naming the segment.
    match archive.replay_with(&Executor::new(2), None, false, |_, cursor| {
        cursor.for_each_flow(|_| {})?;
        Ok(())
    }) {
        Err(IndexedError::CrcMismatch { segment, .. }) => assert_eq!(segment, 2),
        other => panic!("expected CRC mismatch on segment 2, got {other:?}"),
    }
    // Lenient: days 0 and 1 are delivered in full, day 2 is quarantined.
    let replay = archive
        .replay_with(&Executor::new(2), None, true, |_, cursor| {
            let mut seg = Vec::new();
            cursor.for_each_flow(|f| seg.push(*f))?;
            Ok(seg)
        })
        .expect("lenient replay");
    assert_eq!(replay.quarantined.len(), 1);
    assert_eq!(replay.quarantined[0].segment, 2);
    let delivered: Vec<Flow> = replay
        .outputs
        .iter()
        .filter_map(|o| o.output.clone())
        .flatten()
        .collect();
    assert_eq!(delivered, flows[..2 * 67].to_vec());
}

/// The archive-backed §6 candidate scan returns byte-identical candidates
/// at any thread count, and matches a direct (no-archive) serial
/// collection replicating the pre-v2 pipeline.
#[test]
fn candidate_scan_matches_direct_collection() {
    let fx = fixture();
    let scan_at = |threads: usize| {
        let mut cfg = PipelineConfig::paper();
        cfg.threads = threads;
        build_candidates_with(
            &fx.scenario,
            &fx.reports.bot_test,
            24,
            &cfg,
            &Registry::off(),
        )
    };
    let serial = scan_at(1);
    for threads in [2, 4, 7] {
        assert_eq!(scan_at(threads), serial, "threads={threads} diverged");
    }

    // Direct reference: feed the generator straight into one collector,
    // exactly as the pipeline did before the archive spool existed.
    let cfg = PipelineConfig::paper();
    let blocks = BlockSet::of(fx.reports.bot_test.addresses(), 24);
    let model = fx.scenario.activity();
    let generator = FlowGenerator::new(
        &fx.scenario.observed,
        cfg.generator.clone(),
        fx.scenario.seeds.child("flowgen"),
    );
    let mut collector = CandidateCollector::new(blocks.clone());
    for day in fx.scenario.dates.unclean_window.days() {
        model.hostile_events_on_filtered(
            day,
            |ip| blocks.contains(ip),
            |e| generator.expand(&e, |f| collector.observe(&f)),
        );
        model.benign_events_on_filtered(
            day,
            |prefix24| blocks.contains(Ip(prefix24 << 8)),
            |e| generator.expand(&e, |f| collector.observe(&f)),
        );
    }
    assert_eq!(serial, collector.candidates());
}
