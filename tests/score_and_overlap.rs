//! Integration tests for the extension modules: the multidimensional
//! uncleanliness score (paper §7 future work) and the cross-indicator
//! overlap matrix (the abstract's cross-relationship claim), both run over
//! the full pipeline's reports.

use unclean_core::prelude::*;
use unclean_integration::fixture;

#[test]
fn score_recovers_latent_hygiene() {
    let f = fixture();
    let scorer = UncleanlinessScorer::default();
    let scores = scorer.score(&[
        &f.reports.bot,
        &f.reports.spam,
        &f.reports.scan,
        &f.reports.phish,
    ]);
    assert!(scores.len() > 10, "many networks carry evidence");
    // Scores descend.
    assert!(scores.windows(2).all(|w| w[0].score >= w[1].score));

    // Ground-truth check: the top-decile networks are genuinely filthier
    // than the rest (hygiene is the latent variable the score estimates).
    let hygiene = |ns: &NetworkScore| {
        f.scenario
            .world
            .profile_of(ns.network.base())
            .map(|p| p.hygiene as f64)
    };
    let top_n = (scores.len() / 10).max(1);
    let mean = |s: &[NetworkScore]| {
        let v: Vec<f64> = s.iter().filter_map(hygiene).collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    let top = mean(&scores[..top_n]);
    let rest = mean(&scores[top_n..]);
    assert!(
        top + 0.1 < rest,
        "top-decile hygiene {top:.3} should undercut the rest {rest:.3}"
    );
}

#[test]
fn phishing_weighting_is_a_separate_dimension() {
    let f = fixture();
    let reports: [&Report; 4] = [
        &f.reports.bot,
        &f.reports.spam,
        &f.reports.scan,
        &f.reports.phish,
    ];
    let botnet_view = UncleanlinessScorer::default().score(&reports);
    let hosting_view = UncleanlinessScorer {
        weights: ScoreWeights {
            bots: 0.05,
            spamming: 0.05,
            scanning: 0.05,
            phishing: 1.0,
        },
        ..UncleanlinessScorer::default()
    }
    .score(&reports);
    let top = |v: &[NetworkScore]| -> Vec<Cidr> { v.iter().take(5).map(|n| n.network).collect() };
    let a = top(&botnet_view);
    let b = top(&hosting_view);
    let shared = a.iter().filter(|n| b.contains(n)).count();
    assert!(
        shared <= 2,
        "botnet-led and phishing-led rankings should diverge, shared {shared}"
    );
}

#[test]
fn cross_relationship_matrix_matches_the_abstract() {
    let f = fixture();
    let matrix = OverlapMatrix::compute(&[
        &f.reports.bot,
        &f.reports.spam,
        &f.reports.scan,
        &f.reports.phish,
    ]);
    assert_eq!(matrix.cells.len(), 6);

    let bot = f.reports.bot.tag();
    let spam = f.reports.spam.tag();
    let scan = f.reports.scan.tag();
    let phish = f.reports.phish.tag();

    // The botnet ecosystem interrelates: most spammers/scanners are bots.
    let bot_spam = matrix.cell(bot, spam).expect("pair");
    let bot_scan = matrix.cell(bot, scan).expect("pair");
    assert!(
        bot_spam.containment > 0.3,
        "bot∩spam containment {}",
        bot_spam.containment
    );
    assert!(
        bot_scan.containment > 0.3,
        "bot∩scan containment {}",
        bot_scan.containment
    );
    assert!(bot_spam.blocks24 > 0 && bot_scan.blocks24 > 0);

    // Phishing is unrelated to all of it.
    for other in [bot, spam, scan] {
        let cell = matrix.cell(phish, other).expect("pair");
        assert!(
            cell.containment < 0.05,
            "phish∩{other} containment {} should be negligible",
            cell.containment
        );
    }
}

#[test]
fn blocklist_round_trip_of_the_deny_list() {
    // The operational §6 artifact: render C_24(bot-test) and parse it back.
    let f = fixture();
    let cidrs = f.reports.bot_test.blocks(24).to_cidrs();
    let text = render_blocklist(&cidrs, BlocklistFormat::Plain, "bot-test");
    let parsed = parse_plain(&text).expect("well-formed");
    assert_eq!(parsed, cidrs);
    // Cisco rendering covers every block with a deny line.
    let acl = render_blocklist(&cidrs, BlocklistFormat::CiscoAcl, "UNCLEAN");
    assert_eq!(acl.matches(" deny ip ").count(), cidrs.len());
}
