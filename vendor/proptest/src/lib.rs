//! Offline shim for the subset of `proptest` this workspace uses: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, [`any`], ranges as
//! strategies, `collection::vec`, and the `prop_assert*`/`prop_assume!`
//! macros. Cases are generated from a deterministic per-test RNG (seeded
//! from the test name), so failures reproduce across runs; set
//! `PROPTEST_CASES` to change the case count (default 64).
// API-fidelity shim: mirrors the upstream crate's surface, so idiom lints
// against the real API shape are expected noise here.
#![allow(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64-based case generator.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (stable across runs and platforms).
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        if span.is_power_of_two() {
            return self.next_u64() & (span - 1);
        }
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            let m = (v as u128) * (span as u128);
            if (m as u64) <= zone {
                return (m >> 64) as u64;
            }
        }
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Number of cases per property (`PROPTEST_CASES`, default 64).
pub fn cases_from_env() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// A generator of values for one property input.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for MapStrategy<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Marker for "any value of `T`" (see [`any`]).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The full-range strategy for a primitive type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Primitive types drawable from raw bits.
pub trait Arbitrary: Sized {
    /// Draw one value over the type's full range.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Size bounds for generated collections.
    pub trait SizeRange {
        /// Draw a size.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty size range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports (`proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy,
    };
}

/// Declare property tests: each `fn name(input in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cases = $crate::cases_from_env();
            let mut proptest_rng = $crate::TestRng::from_name(stringify!($name));
            for _ in 0..cases {
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut proptest_rng);)+
                $body
            }
        }
    )*};
}

/// Assert within a property (shim: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality within a property (shim: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality within a property (shim: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skip cases that don't meet a precondition (shim: `continue` to the
/// next generated case; must appear directly inside the property body).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 10u32..20, y in -5i32..=5, f in 0.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(items in crate::collection::vec(any::<u8>(), 3..7)) {
            prop_assert!((3..7).contains(&items.len()));
        }

        #[test]
        fn prop_map_applies(len in crate::collection::vec(any::<u32>(), 0..9).prop_map(|v| v.len())) {
            prop_assert!(len < 9);
        }

        #[test]
        fn assume_skips(mut n in 0u8..10) {
            prop_assume!(n != 3);
            n = n.wrapping_add(1);
            prop_assert_ne!(n, 4);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
