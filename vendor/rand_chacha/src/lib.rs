//! Offline shim for `rand_chacha` 0.3 providing [`ChaCha8Rng`]. The core
//! is a faithful ChaCha8 (RFC 8439 quarter-round, 8 rounds, 64-bit block
//! counter) so determinism and statistical quality match expectations; the
//! exact output stream is the standard ChaCha keystream keyed by the seed.
// API-fidelity shim: mirrors the upstream crate's surface, so idiom lints
// against the real API shape are expected noise here.
#![allow(clippy::all)]

use rand::{RngCore, SeedableRng};

/// Re-export point matching the real crate's `rand_chacha::rand_core`.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

const BLOCK_WORDS: usize = 16;

/// A ChaCha RNG with 8 rounds.
#[derive(Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; BLOCK_WORDS],
    /// Next unconsumed word index in `buffer`; `BLOCK_WORDS` = exhausted.
    index: usize,
}

impl std::fmt::Debug for ChaCha8Rng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaCha8Rng")
            .field("counter", &self.counter)
            .field("index", &self.index)
            .finish_non_exhaustive()
    }
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        // "expand 32-byte k" constants, key, 64-bit block counter, zero nonce.
        let mut state: [u32; BLOCK_WORDS] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buffer = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let b = self.next_word().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&b[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::from_seed([7u8; 32]);
        let mut b = ChaCha8Rng::from_seed([7u8; 32]);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::from_seed([8u8; 32]);
        assert_ne!(ChaCha8Rng::from_seed([7u8; 32]).next_u64(), c.next_u64());
    }

    #[test]
    fn seed_from_u64_works() {
        let mut a = ChaCha8Rng::seed_from_u64(20061001);
        let mut b = ChaCha8Rng::seed_from_u64(20061001);
        assert_eq!(a.next_u32(), b.next_u32());
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn rough_bit_balance() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut ones = 0u64;
        for _ in 0..10_000 {
            ones += rng.next_u64().count_ones() as u64;
        }
        let total = 10_000u64 * 64;
        assert!(ones > total * 48 / 100 && ones < total * 52 / 100);
    }
}
