//! Typed bump arena and scratch-buffer pool, vendored for offline builds.
//!
//! The workspace's library crates `forbid(unsafe_code)`, so this is a
//! *safe* arena: instead of handing out raw pointers it hands out `u32`
//! handles ([`Idx`]) into chunked storage. The properties that matter for
//! the hot paths here are the bump-allocator ones:
//!
//! * allocation is a bounds-checked push into the current chunk — no
//!   per-value heap allocation, no reallocation-copy of earlier values
//!   (chunks are fixed-capacity and never grow);
//! * [`Arena::reset`] drops the *values* but keeps every chunk's
//!   capacity, so a per-shard arena reused across days/events settles
//!   into zero steady-state allocations;
//! * handles are plain `u32`s — they stay valid across further
//!   allocations (until `reset`), can be stored in packed side tables,
//!   and make "interned ID" designs cheap.
//!
//! [`Pool`] is the companion for plain `Vec<T>` scratch: lease a buffer,
//! fill it, and dropping the lease clears it (keeping capacity) and
//! returns it to the pool for the next worker.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Mutex;

/// Default values per chunk: large enough to amortize chunk bookkeeping,
/// small enough that a mostly-empty arena wastes little.
pub const DEFAULT_CHUNK_CAPACITY: usize = 1024;

/// A handle into an [`Arena`]: index of an allocated value, valid until
/// the next [`Arena::reset`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Idx(pub u32);

/// A typed, chunked bump arena. See the crate docs for the contract.
#[derive(Debug, Clone)]
pub struct Arena<T> {
    chunks: Vec<Vec<T>>,
    chunk_cap: usize,
    len: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Arena<T> {
        Arena::new()
    }
}

impl<T> Arena<T> {
    /// An empty arena with the default chunk capacity.
    pub fn new() -> Arena<T> {
        Arena::with_chunk_capacity(DEFAULT_CHUNK_CAPACITY)
    }

    /// An empty arena whose chunks hold `chunk_cap` values each.
    pub fn with_chunk_capacity(chunk_cap: usize) -> Arena<T> {
        assert!(chunk_cap > 0, "chunk capacity must be positive");
        Arena {
            chunks: Vec::new(),
            chunk_cap,
            len: 0,
        }
    }

    /// Bump-allocate `value`, returning its handle.
    pub fn alloc(&mut self, value: T) -> Idx {
        let idx = self.len;
        assert!(idx < u32::MAX as usize, "arena handle space exhausted");
        let cap = self.chunk_cap;
        let needs_chunk = match self.chunks.last() {
            Some(c) => c.len() == cap,
            None => true,
        };
        if needs_chunk {
            // A fixed-capacity chunk: it never grows, so values (and the
            // handles pointing at them) never move.
            let live = idx / cap;
            if live < self.chunks.len() {
                // reset() kept this chunk's capacity around — reuse it.
                debug_assert!(self.chunks[live].is_empty());
            } else {
                self.chunks.push(Vec::with_capacity(cap));
            }
        }
        let chunk = idx / cap;
        self.chunks[chunk].push(value);
        self.len = idx + 1;
        Idx(idx as u32)
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the arena holds no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value behind `handle`. Panics on a stale (post-reset) handle.
    pub fn get(&self, handle: Idx) -> &T {
        let i = handle.0 as usize;
        assert!(i < self.len, "stale arena handle");
        &self.chunks[i / self.chunk_cap][i % self.chunk_cap]
    }

    /// Mutable access to the value behind `handle`.
    pub fn get_mut(&mut self, handle: Idx) -> &mut T {
        let i = handle.0 as usize;
        assert!(i < self.len, "stale arena handle");
        &mut self.chunks[i / self.chunk_cap][i % self.chunk_cap]
    }

    /// Drop every value but keep every chunk's capacity — the bump reset.
    /// All outstanding handles become stale.
    pub fn reset(&mut self) {
        for chunk in &mut self.chunks {
            chunk.clear();
        }
        self.len = 0;
    }

    /// Iterate the live values in allocation order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.chunks.iter().flat_map(|c| c.iter())
    }

    /// Heap capacity currently retained, in values (across all chunks).
    pub fn capacity(&self) -> usize {
        self.chunks.len() * self.chunk_cap
    }
}

impl<T> Extend<T> for Arena<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.alloc(v);
        }
    }
}

/// A pool of recycled `Vec<T>` scratch buffers shared between workers.
///
/// [`Pool::lease`] hands out an empty buffer (reusing a returned one when
/// available); dropping the [`Scratch`] lease clears the buffer — keeping
/// its capacity — and returns it to the pool.
#[derive(Debug, Default)]
pub struct Pool<T> {
    free: Mutex<Vec<Vec<T>>>,
}

impl<T> Pool<T> {
    /// An empty pool.
    pub fn new() -> Pool<T> {
        Pool {
            free: Mutex::new(Vec::new()),
        }
    }

    /// Lease a cleared buffer, recycling capacity from earlier leases.
    pub fn lease(&self) -> Scratch<'_, T> {
        let buf = self
            .free
            .lock()
            .expect("arena pool lock")
            .pop()
            .unwrap_or_default();
        debug_assert!(buf.is_empty());
        Scratch {
            pool: self,
            buf: Some(buf),
        }
    }

    /// Buffers currently parked in the pool.
    pub fn idle(&self) -> usize {
        self.free.lock().expect("arena pool lock").len()
    }
}

/// A leased scratch buffer; derefs to `Vec<T>` and returns the buffer
/// (cleared, capacity kept) to its [`Pool`] on drop.
#[derive(Debug)]
pub struct Scratch<'a, T> {
    pool: &'a Pool<T>,
    buf: Option<Vec<T>>,
}

impl<T> std::ops::Deref for Scratch<'_, T> {
    type Target = Vec<T>;

    fn deref(&self) -> &Vec<T> {
        self.buf.as_ref().expect("live lease")
    }
}

impl<T> std::ops::DerefMut for Scratch<'_, T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        self.buf.as_mut().expect("live lease")
    }
}

impl<T> Drop for Scratch<'_, T> {
    fn drop(&mut self) {
        if let Some(mut buf) = self.buf.take() {
            buf.clear();
            if let Ok(mut free) = self.pool.free.lock() {
                free.push(buf);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_get_roundtrip_across_chunks() {
        let mut a = Arena::with_chunk_capacity(4);
        let handles: Vec<Idx> = (0..11).map(|i| a.alloc(i * 10)).collect();
        assert_eq!(a.len(), 11);
        for (i, h) in handles.iter().enumerate() {
            assert_eq!(*a.get(*h), i * 10);
        }
        *a.get_mut(handles[7]) = 700;
        assert_eq!(*a.get(handles[7]), 700);
        assert_eq!(a.iter().count(), 11);
    }

    #[test]
    fn reset_keeps_chunk_capacity() {
        let mut a = Arena::with_chunk_capacity(8);
        for i in 0..20 {
            a.alloc(i);
        }
        let cap = a.capacity();
        assert!(cap >= 20);
        a.reset();
        assert!(a.is_empty());
        assert_eq!(a.capacity(), cap, "reset must not free chunks");
        for i in 0..20 {
            a.alloc(i);
        }
        assert_eq!(a.capacity(), cap, "refill must reuse retained chunks");
        assert_eq!(a.iter().copied().sum::<usize>(), (0..20).sum());
    }

    #[test]
    #[should_panic(expected = "stale arena handle")]
    fn stale_handle_panics() {
        let mut a: Arena<u8> = Arena::new();
        let h = a.alloc(1);
        a.reset();
        let _ = a.get(h);
    }

    #[test]
    fn pool_recycles_capacity() {
        let pool: Pool<u64> = Pool::new();
        let cap = {
            let mut s = pool.lease();
            s.extend(0..100);
            assert_eq!(s.len(), 100);
            s.capacity()
        };
        assert_eq!(pool.idle(), 1);
        let s = pool.lease();
        assert!(s.is_empty(), "lease hands back a cleared buffer");
        assert_eq!(s.capacity(), cap, "and keeps its capacity");
        drop(s);
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn pool_supports_concurrent_leases() {
        let pool: Pool<u8> = Pool::new();
        let a = pool.lease();
        let b = pool.lease();
        drop(a);
        drop(b);
        assert_eq!(pool.idle(), 2);
    }
}
