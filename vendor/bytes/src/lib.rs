//! Offline shim for the subset of the `bytes` crate this workspace uses:
//! [`Bytes`], [`BytesMut`], and the [`Buf`]/[`BufMut`] trait methods the
//! NetFlow codec calls (big-endian integer puts/gets). API signatures match
//! the real crate so code compiles identically against either.
// API-fidelity shim: mirrors the upstream crate's surface, so idiom lints
// against the real API shape are expected noise here.
#![allow(clippy::all)]

use std::ops::Deref;

/// An immutable byte buffer (shim: an owned `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes { data: Vec::new() }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out to a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Bytes {
        Bytes {
            data: data.to_vec(),
        }
    }
}

/// A mutable, growable byte buffer (shim: an owned `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read primitives off the front of a buffer (network byte order).
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Advance the read cursor.
    fn advance(&mut self, cnt: usize);
    /// Borrow the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let mut b = [0u8; 8];
        b.copy_from_slice(&c[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Write primitives onto the end of a buffer (network byte order).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u16(0x0105);
        b.put_u32(0xdead_beef);
        b.put_u8(7);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 7);
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u16(), 0x0105);
        assert_eq!(r.get_u32(), 0xdead_beef);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.remaining(), 0);
    }
}
