//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`Value`]/[`Map`]/[`Number`] (defined in the `serde` shim and re-exported
//! here), the [`json!`] macro, compact and pretty writers, and a strict
//! recursive-descent parser for `from_str`/`from_slice`/`from_reader`.
// API-fidelity shim: mirrors the upstream crate's surface, so idiom lints
// against the real API shape are expected noise here.
#![allow(clippy::all)]

use std::io;

pub use serde::{Map, Number, Value};

/// Error type covering serialization, parsing, and I/O failures.
#[derive(Debug)]
pub enum Error {
    /// Data-model conversion failure.
    Serde(serde::Error),
    /// Syntax error at a byte offset.
    Syntax {
        /// What went wrong.
        msg: String,
        /// Byte offset into the input.
        offset: usize,
    },
    /// Underlying I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Serde(e) => write!(f, "{e}"),
            Error::Syntax { msg, offset } => write!(f, "{msg} at byte {offset}"),
            Error::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::Serde(e)
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Error {
        Error::Io(e)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Convert any serializable value into a [`Value`].
///
/// Shim note: infallible (the shim data model conversion cannot fail), so
/// this returns `Value` directly rather than `Result`.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_json()
}

/// Reconstruct a typed value from a [`Value`].
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T> {
    T::from_json(value).map_err(Error::Serde)
}

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_json(), &mut out);
    Ok(out)
}

/// Serialize to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_json(), &mut out, 0);
    Ok(out)
}

/// Serialize to a compact JSON byte vector.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Serialize compactly into a writer.
pub fn to_writer<W: io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Serialize pretty-printed into a writer.
pub fn to_writer_pretty<W: io::Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    let s = to_string_pretty(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Parse a typed value from a JSON string.
pub fn from_str<T: serde::Deserialize>(input: &str) -> Result<T> {
    let value = parse_value_complete(input.as_bytes())?;
    from_value(&value)
}

/// Parse a typed value from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(input: &[u8]) -> Result<T> {
    let value = parse_value_complete(input)?;
    from_value(&value)
}

/// Parse a typed value from a reader.
pub fn from_reader<R: io::Read, T: serde::Deserialize>(mut reader: R) -> Result<T> {
    let mut buf = Vec::new();
    reader.read_to_end(&mut buf)?;
    from_slice(&buf)
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: &Number, out: &mut String) {
    match *n {
        Number::PosInt(u) => out.push_str(&u.to_string()),
        Number::NegInt(i) => out.push_str(&i.to_string()),
        Number::Float(f) => {
            // `{f:?}` keeps a decimal point or exponent on round floats
            // ("1.0", not "1"), matching serde_json's output.
            out.push_str(&format!("{f:?}"));
        }
    }
}

fn write_compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(n, out),
        Value::String(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(value: &Value, out: &mut String, indent: usize) {
    const STEP: &str = "  ";
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&STEP.repeat(indent + 1));
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(v, out, indent + 1);
            }
            out.push('\n');
            out.push_str(&STEP.repeat(indent));
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

fn parse_value_complete(input: &[u8]) -> Result<Value> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::Syntax {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.input.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn expect_literal(&mut self, lit: &str) -> Result<()> {
        if self.input[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.expect_literal("null").map(|_| Value::Null),
            Some(b't') => self.expect_literal("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.expect_literal("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.pos += 1; // '{'
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected object key string"));
            }
            let key = self.parse_string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:`"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .input
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            // Surrogate pairs unsupported (shim): map to the
                            // replacement character rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.input[self.pos..])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(i)));
            }
        }
        let f: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        Number::from_f64(f)
            .map(Value::Number)
            .ok_or_else(|| self.err("non-finite number"))
    }
}

/// Build a [`Value`] from a JSON-ish literal. Supports `null`, booleans,
/// nested `[...]` arrays and `{ "key": value }` objects, and arbitrary
/// serializable expressions in value position — the same surface as
/// serde_json's macro (minus `..spread` and non-literal keys).
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

/// Token-muncher behind [`json!`]; not public API.
#[macro_export]
#[doc(hidden)]
macro_rules! json_internal {
    // ---- array elements: accumulate into [$($elems:expr,)*] ----
    (@array [$($elems:expr,)*]) => { vec![$($elems,)*] };
    (@array [$($elems:expr),*]) => { vec![$($elems),*] };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($arr:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($arr)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ---- object members: munch key tts into (...), then the value ----
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($arr:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($arr)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) $copy);
    };

    // ---- entry points ----
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(vec![]) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_internal!(@array [] $($tt)+)) };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+) ($($tt)+));
            object
        })
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let n = 2.5f64;
        let v = json!({
            "a": 1u32,
            "b": [1.5f64, n],
            "c": "text",
            "nested": { "x": true, "deep": { "null_member": null } },
            "call": json!({ "y": [] }),
        });
        let s = to_string(&v).unwrap();
        assert_eq!(
            s,
            r#"{"a":1,"b":[1.5,2.5],"c":"text","call":{"y":[]},"nested":{"deep":{"null_member":null},"x":true}}"#
        );
    }

    #[test]
    fn parse_round_trip() {
        let text = r#"{"a":1,"b":[1.5,-2,true,null],"c":"he\"llo","d":{"k":3}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn pretty_print_shape() {
        let v = json!({ "a": 1u32, "b": [2u32] });
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"a\": 1,\n  \"b\": [\n    2\n  ]\n}");
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn float_formatting_keeps_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![(1u8, 2u64), (3, 4)];
        let s = to_string(&xs).unwrap();
        let back: Vec<(u8, u64)> = from_str(&s).unwrap();
        assert_eq!(back, xs);
    }
}
