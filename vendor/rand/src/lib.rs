//! Offline shim for the subset of `rand` 0.8 this workspace uses:
//! [`RngCore`], [`SeedableRng`], and the [`Rng`] extension trait with
//! `gen`, `gen_range` (half-open and inclusive, integer and float) and
//! `gen_bool`. Signatures match the real crate for the methods provided,
//! so code compiles identically against either.
//!
//! Uniformity notes: integer ranges use rejection sampling (Lemire-style
//! threshold on the widening multiply), floats use the 53-bit mantissa
//! construction — both match the statistical contract analyses here rely
//! on, though draw-for-draw output differs from upstream `rand`.
// API-fidelity shim: mirrors the upstream crate's surface, so idiom lints
// against the real API shape are expected noise here.
#![allow(clippy::all)]

/// The core RNG abstraction (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction (mirrors `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by key-stretching with splitmix64 (the same
    /// construction `rand_core` documents).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible uniformly from raw RNG output (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    u64 => next_u64, i64 => next_u64, usize => next_u64, isize => next_u64,
);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range usable with [`Rng::gen_range`] (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX as u64 {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_range_int!(i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// Unbiased uniform draw in `[0, span)` (`span > 0`) by rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Widening-multiply rejection (Lemire); the zone below the threshold
    // would bias low values, so redraw there.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        let (hi, lo) = {
            let m = (v as u128) * (span as u128);
            ((m >> 64) as u64, m as u64)
        };
        if lo <= zone {
            return hi;
        }
    }
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draw a value of any [`Standard`]-producible type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_one(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `rand::rngs` placeholder module (kept for path compatibility).
pub mod rngs {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&b[..n]);
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(42);
        for _ in 0..2_000 {
            let a: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&a));
            let b: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&b));
            let c: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&c));
            let d: usize = rng.gen_range(0..1);
            assert_eq!(d, 0);
        }
    }

    #[test]
    fn uniformity_rough() {
        let mut rng = Lcg(7);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = Lcg(9);
        for _ in 0..1_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
