//! Offline shim for `serde_derive`: dependency-free (no syn/quote)
//! implementations of `#[derive(Serialize)]` and `#[derive(Deserialize)]`
//! targeting the trait model of the vendored `serde` shim.
//!
//! Supported item shapes — the full set this workspace declares:
//! named-field structs, newtype (single-field tuple) structs (always
//! transparent, matching real serde's newtype behavior, so
//! `#[serde(transparent)]` is honored implicitly), unit structs, and enums
//! with unit and/or named-field variants (externally tagged, like serde's
//! default). Generics are rejected with a clear error.
// API-fidelity shim: mirrors the upstream crate's surface, so idiom lints
// against the real API shape are expected noise here.
#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed description of the deriving item.
struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    /// `struct S;`
    Unit,
    /// `struct S(T);` — serialized as the inner value.
    Newtype,
    /// `struct S { a: A, ... }`
    Named(Vec<String>),
    /// `enum E { A, B { x: X }, ... }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: Option<Vec<String>>,
}

/// Advance past any `#[...]` attributes starting at `i`.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() != '#' {
            break;
        }
        match tokens.get(i + 1) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => i += 2,
            _ => break,
        }
    }
    i
}

/// Advance past `pub` / `pub(...)` starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Advance past one type, stopping after the top-level `,` (if any).
/// Tracks `<`/`>` depth; commas inside generic arguments don't terminate.
fn skip_type_and_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

/// Parse `name: Type, ...` field lists (struct bodies, struct variants).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after field name, got {other:?}"),
        }
        i = skip_type_and_comma(&tokens, i);
    }
    fields
}

/// Count the fields of a tuple-struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        i = skip_type_and_comma(&tokens, i);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                i += 1;
                Some(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!(
                    "serde shim derive: tuple enum variant `{name}` is not supported; \
                     use a struct variant"
                );
            }
            _ => None,
        };
        variants.push(Variant { name, fields });
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected item name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type `{name}` is not supported");
        }
    }
    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                match count_tuple_fields(g.stream()) {
                    1 => Shape::Newtype,
                    n => panic!(
                        "serde shim derive: tuple struct `{name}` has {n} fields; \
                         only single-field newtypes are supported"
                    ),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            other => panic!("serde shim derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: expected enum body, got {other:?}"),
        },
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    };
    Item { name, shape }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Newtype => "::serde::Serialize::to_json(&self.0)".to_string(),
        Shape::Named(fields) => {
            let mut s = String::from("{ let mut m = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "m.insert(\"{f}\".to_string(), ::serde::Serialize::to_json(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(m) }");
            s
        }
        Shape::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    None => s.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    Some(fields) => {
                        let binders = fields.join(", ");
                        s.push_str(&format!("{name}::{vn} {{ {binders} }} => {{\n"));
                        s.push_str("let mut inner = ::serde::Map::new();\n");
                        for f in fields {
                            s.push_str(&format!(
                                "inner.insert(\"{f}\".to_string(), \
                                 ::serde::Serialize::to_json({f}));\n"
                            ));
                        }
                        s.push_str(&format!(
                            "let mut outer = ::serde::Map::new();\n\
                             outer.insert(\"{vn}\".to_string(), ::serde::Value::Object(inner));\n\
                             ::serde::Value::Object(outer) }},\n"
                        ));
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_json(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Unit => format!("::core::result::Result::Ok({name})"),
        Shape::Newtype => {
            format!("::core::result::Result::Ok({name}(::serde::Deserialize::from_json(value)?))")
        }
        Shape::Named(fields) => {
            let mut s = format!(
                "let obj = value.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                 ::core::result::Result::Ok({name} {{\n"
            );
            for f in fields {
                s.push_str(&format!(
                    "{f}: ::serde::field_from_json(obj.get(\"{f}\"), \"{f}\")?,\n"
                ));
            }
            s.push_str("})");
            s
        }
        Shape::Enum(variants) => {
            let mut s = String::from("if let ::core::option::Option::Some(s) = value.as_str() {\n");
            s.push_str("return match s {\n");
            for v in variants {
                if v.fields.is_none() {
                    let vn = &v.name;
                    s.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
                    ));
                }
            }
            s.push_str(&format!(
                "other => ::core::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown variant `{{other}}` for {name}\"))),\n}};\n}}\n"
            ));
            s.push_str(&format!(
                "let obj = value.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected string or object for {name}\"))?;\n\
                 let (tag, inner) = obj.iter().next().ok_or_else(|| \
                 ::serde::Error::custom(\"expected single-key object for {name}\"))?;\n\
                 match tag.as_str() {{\n"
            ));
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    None => s.push_str(&format!(
                        "\"{vn}\" => {{ let _ = inner; \
                         ::core::result::Result::Ok({name}::{vn}) }},\n"
                    )),
                    Some(fields) => {
                        s.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let io = inner.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object for {name}::{vn}\"))?;\n\
                             ::core::result::Result::Ok({name}::{vn} {{\n"
                        ));
                        for f in fields {
                            s.push_str(&format!(
                                "{f}: ::serde::field_from_json(io.get(\"{f}\"), \"{f}\")?,\n"
                            ));
                        }
                        s.push_str("})},\n");
                    }
                }
            }
            s.push_str(&format!(
                "other => ::core::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown variant `{{other}}` for {name}\"))),\n}}"
            ));
            s
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_json(value: &::serde::Value) -> \
         ::core::result::Result<{name}, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}

/// Derive the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde shim derive: generated Serialize impl must parse")
}

/// Derive the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde shim derive: generated Deserialize impl must parse")
}
