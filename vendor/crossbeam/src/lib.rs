//! Offline shim for the subset of `crossbeam` this workspace uses:
//! [`scope`] with `Scope::spawn` (over `std::thread::scope`, which
//! provides the same structured-concurrency guarantee),
//! [`channel`] — MPMC bounded/unbounded channels over `Mutex` +
//! `Condvar` with crossbeam's disconnect semantics — and
//! [`executor`] — a scoped work-stealing thread pool with deterministic,
//! index-ordered results shared by the generation, detection, and
//! experiment-supervision layers.
// API-fidelity shim: mirrors the upstream crate's surface, so idiom lints
// against the real API shape are expected noise here.
#![allow(clippy::all)]

use std::any::Any;

/// A scope handle; `spawn` borrows from the enclosing environment.
///
/// `repr(transparent)` over [`std::thread::Scope`] so the reference handed
/// out by `std::thread::scope` (whose lifetime *is* `'scope`) can be
/// reinterpreted as a reference to this wrapper.
#[repr(transparent)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: std::thread::Scope<'scope, 'env>,
}

fn wrap<'scope, 'env>(s: &'scope std::thread::Scope<'scope, 'env>) -> &'scope Scope<'scope, 'env> {
    // SAFETY: Scope is repr(transparent) over std::thread::Scope, so the
    // pointer cast preserves layout; lifetimes are carried through unchanged.
    unsafe { &*(s as *const std::thread::Scope<'scope, 'env> as *const Scope<'scope, 'env>) }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped worker. The closure receives the scope again (for
    /// nested spawns), matching crossbeam's signature.
    pub fn spawn<F, T>(&'scope self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&'scope Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(self))
    }
}

/// Run `f` with a scope in which borrowed threads can be spawned; joins all
/// spawned threads before returning. Mirrors `crossbeam::scope`, including
/// the `Result` wrapper (`Err` carries the payload when a worker panicked).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(wrap(s)))
    }))
}

pub mod channel {
    //! MPMC channels mirroring `crossbeam_channel`'s core API: [`bounded`]
    //! and [`unbounded`] constructors, cloneable [`Sender`]/[`Receiver`]
    //! halves, blocking and non-blocking sends/receives, and disconnect
    //! errors once every handle on the other side has dropped.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is at capacity.
        Full(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// The sending half. Clones share the queue.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half. Clones share the queue (each message is
    /// delivered to exactly one receiver).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// A channel holding at most `cap` in-flight messages; sends block
    /// (or [`TrySendError::Full`]) once full. `cap` of zero is bumped to
    /// one (the shim has no rendezvous mode; the workspace only uses
    /// positive bounds).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    /// A channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Block until the message is enqueued (or every receiver is gone).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.state.lock().expect("channel state");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.inner.cap {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self.inner.not_full.wait(state).expect("channel state");
                    }
                    _ => break,
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Enqueue without blocking; fails when full or disconnected.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.inner.state.lock().expect("channel state");
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = self.inner.cap {
                if state.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            state.queue.push_back(value);
            drop(state);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.state.lock().expect("channel state").queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives (or every sender is gone and the
        /// queue is drained).
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.state.lock().expect("channel state");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.inner.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.inner.not_empty.wait(state).expect("channel state");
            }
        }

        /// Like [`Receiver::recv`], giving up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.inner.state.lock().expect("channel state");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.inner.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, timed_out) = self
                    .inner
                    .not_empty
                    .wait_timeout(state, deadline - now)
                    .expect("channel state");
                state = next;
                if timed_out.timed_out() && state.queue.is_empty() {
                    return Err(if state.senders == 0 {
                        RecvTimeoutError::Disconnected
                    } else {
                        RecvTimeoutError::Timeout
                    });
                }
            }
        }

        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.inner.state.lock().expect("channel state");
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.inner.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.state.lock().expect("channel state").queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.inner.state.lock().expect("channel state").senders += 1;
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.inner.state.lock().expect("channel state").receivers += 1;
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().expect("channel state");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().expect("channel state");
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.inner.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_across_threads() {
            let (tx, rx) = bounded::<u32>(4);
            let producer = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).expect("receiver alive");
                }
            });
            let got: Vec<u32> = (0..100).map(|_| rx.recv().expect("sender alive")).collect();
            producer.join().expect("producer");
            assert_eq!(got, (0..100).collect::<Vec<u32>>());
        }

        #[test]
        fn try_send_reports_full_then_succeeds_after_drain() {
            let (tx, rx) = bounded::<u8>(2);
            tx.try_send(1).expect("room");
            tx.try_send(2).expect("room");
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
            assert_eq!(rx.try_recv(), Ok(1));
            tx.try_send(3).expect("room again");
            assert_eq!(rx.len(), 2);
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(7).expect("ok");
            drop(tx);
            assert_eq!(rx.recv(), Ok(7), "queued messages drain first");
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));

            let (tx, rx) = bounded::<u8>(1);
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
            assert_eq!(tx.try_send(2), Err(TrySendError::Disconnected(2)));
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = bounded::<u8>(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).expect("ok");
            assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(9));
        }

        #[test]
        fn multiple_consumers_partition_the_stream() {
            let (tx, rx) = bounded::<u64>(8);
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut sum = 0u64;
                        while let Ok(v) = rx.recv() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            drop(rx);
            for i in 1..=100u64 {
                tx.send(i).expect("consumers alive");
            }
            drop(tx);
            let total: u64 = consumers
                .into_iter()
                .map(|c| c.join().expect("consumer"))
                .sum();
            assert_eq!(total, 5050, "every message delivered exactly once");
        }
    }
}

pub mod executor {
    //! A scoped work-stealing thread pool with deterministic output.
    //!
    //! [`Executor::run_indexed`] evaluates `f(0..jobs)` across worker
    //! threads and returns the results in index order, so the output is
    //! identical at any thread count — callers derive any randomness for
    //! job `i` from `i` itself (e.g. a `SeedTree` stream), never from
    //! which worker ran it. Each worker starts with a contiguous slice of
    //! the index range and steals the upper half of another worker's
    //! remaining range when its own runs dry, which keeps workers busy
    //! under skewed per-job costs without a shared-queue bottleneck.
    //!
    //! Panics inside a job abort the pool (other workers stop picking up
    //! new jobs) and the first panic payload is re-raised on the caller's
    //! thread, so `catch_unwind` around `run_indexed` sees the original
    //! payload, not a generic join error.

    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    /// Resolve a `--threads`-style knob: `0` means one worker per
    /// available core, anything else is taken literally.
    pub fn resolve_threads(threads: usize) -> usize {
        if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        }
    }

    /// A fixed-width work-stealing pool. Cheap to construct; threads are
    /// scoped to each [`Executor::run_indexed`] call, so an `Executor` can
    /// be kept in a config struct without holding OS resources.
    #[derive(Debug, Clone, Copy)]
    pub struct Executor {
        threads: usize,
    }

    /// Half-open index range `[start, end)` still owed by a worker.
    type Range = (usize, usize);

    impl Executor {
        /// `threads == 0` selects one worker per available core.
        pub fn new(threads: usize) -> Executor {
            Executor {
                threads: resolve_threads(threads),
            }
        }

        /// The resolved worker count.
        pub fn threads(&self) -> usize {
            self.threads
        }

        /// Evaluate `f(i)` for every `i in 0..jobs` and return the results
        /// in index order. Deterministic: the mapping from index to result
        /// does not depend on the worker count or on scheduling.
        pub fn run_indexed<T, F>(&self, jobs: usize, f: F) -> Vec<T>
        where
            T: Send,
            F: Fn(usize) -> T + Sync,
        {
            if jobs == 0 {
                return Vec::new();
            }
            let workers = self.threads.min(jobs);
            if workers == 1 {
                return (0..jobs).map(f).collect();
            }

            // One deque of ranges per worker; workers steal the upper half
            // of a victim's bottom range when their own deque is empty.
            let queues: Vec<Mutex<Vec<Range>>> = (0..workers)
                .map(|w| {
                    let lo = jobs * w / workers;
                    let hi = jobs * (w + 1) / workers;
                    Mutex::new(if lo < hi { vec![(lo, hi)] } else { Vec::new() })
                })
                .collect();
            let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
            let aborted = AtomicBool::new(false);
            let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

            let outer = super::scope(|scope| {
                for w in 0..workers {
                    let queues = &queues;
                    let slots = &slots;
                    let aborted = &aborted;
                    let first_panic = &first_panic;
                    let f = &f;
                    scope.spawn(move |_| {
                        while !aborted.load(Ordering::Acquire) {
                            let Some(idx) = next_job(queues, w) else {
                                return;
                            };
                            match catch_unwind(AssertUnwindSafe(|| f(idx))) {
                                Ok(value) => {
                                    *slots[idx].lock().expect("result slot") = Some(value);
                                }
                                Err(payload) => {
                                    let mut first = first_panic.lock().expect("panic slot");
                                    first.get_or_insert(payload);
                                    aborted.store(true, Ordering::Release);
                                    return;
                                }
                            }
                        }
                    });
                }
            });
            if let Err(payload) = outer {
                resume_unwind(payload);
            }
            if let Some(payload) = first_panic.into_inner().expect("panic slot") {
                resume_unwind(payload);
            }
            slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("result slot")
                        .expect("every job ran to completion")
                })
                .collect()
        }
    }

    /// Pop the next index from worker `w`'s own deque, or steal the upper
    /// half of the largest remaining range among the other workers.
    fn next_job(queues: &[Mutex<Vec<Range>>], w: usize) -> Option<usize> {
        {
            let mut own = queues[w].lock().expect("work queue");
            if let Some((start, end)) = own.pop() {
                if start + 1 < end {
                    own.push((start + 1, end));
                }
                return Some(start);
            }
        }
        loop {
            // Scan victims starting after `w` so concurrent thieves spread
            // out instead of hammering worker 0.
            let mut best: Option<(usize, usize)> = None; // (victim, width)
            for off in 1..queues.len() {
                let v = (w + off) % queues.len();
                let queue = queues[v].lock().expect("work queue");
                let width: usize = queue.iter().map(|&(s, e)| e - s).sum();
                if width > 0 && best.is_none_or(|(_, bw)| width > bw) {
                    best = Some((v, width));
                }
            }
            let Some((victim, _)) = best else {
                return None;
            };
            let mut queue = queues[victim].lock().expect("work queue");
            // Re-check under the lock: the victim may have drained since
            // the scan.
            let Some((start, end)) = queue.pop() else {
                continue;
            };
            if end - start == 1 {
                return Some(start);
            }
            let mid = (start + end) / 2;
            queue.push((start, mid));
            drop(queue);
            let mut own = queues[w].lock().expect("work queue");
            if mid + 1 < end {
                own.push((mid + 1, end));
            }
            return Some(mid);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn results_are_index_ordered_at_any_thread_count() {
            let expected: Vec<usize> = (0..97).map(|i| i * i).collect();
            for threads in [1, 2, 3, 8, 97, 200] {
                let got = Executor::new(threads).run_indexed(97, |i| i * i);
                assert_eq!(got, expected, "threads={threads}");
            }
        }

        #[test]
        fn zero_jobs_and_zero_threads_resolve() {
            assert!(Executor::new(0).threads() >= 1);
            let got: Vec<u8> = Executor::new(4).run_indexed(0, |_| 1u8);
            assert!(got.is_empty());
        }

        #[test]
        fn skewed_job_costs_complete_via_stealing() {
            // Worker 0's initial slice holds all the slow jobs; the other
            // workers must steal to finish. Every job must still run
            // exactly once.
            let ran = AtomicUsize::new(0);
            let got = Executor::new(4).run_indexed(64, |i| {
                ran.fetch_add(1, Ordering::SeqCst);
                if i < 16 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                i
            });
            assert_eq!(ran.load(Ordering::SeqCst), 64);
            assert_eq!(got, (0..64).collect::<Vec<usize>>());
        }

        #[test]
        fn panic_payload_is_preserved() {
            let result = catch_unwind(AssertUnwindSafe(|| {
                Executor::new(4).run_indexed(32, |i| {
                    if i == 17 {
                        panic!("job 17 failed");
                    }
                    i
                })
            }));
            let payload = result.expect_err("panic propagates");
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .expect("payload is the original &str");
            assert_eq!(msg, "job 17 failed");
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let mut rows = vec![0u64; 8];
        super::scope(|scope| {
            for (i, row) in rows.chunks_mut(2).enumerate() {
                scope.spawn(move |_| {
                    for r in row.iter_mut() {
                        *r = i as u64 + 1;
                    }
                });
            }
        })
        .expect("no panics");
        assert!(rows.iter().all(|&r| r > 0));
    }

    #[test]
    fn nested_spawn_through_the_scope_arg() {
        let total = std::sync::atomic::AtomicU32::new(0);
        super::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
                total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
        })
        .expect("no panics");
        assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn panics_are_reported() {
        let res = super::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(res.is_err());
    }
}
