//! Offline shim for the subset of `crossbeam` this workspace uses:
//! [`scope`] with `Scope::spawn`. Implemented over `std::thread::scope`,
//! which provides the same structured-concurrency guarantee.
// API-fidelity shim: mirrors the upstream crate's surface, so idiom lints
// against the real API shape are expected noise here.
#![allow(clippy::all)]

use std::any::Any;

/// A scope handle; `spawn` borrows from the enclosing environment.
///
/// `repr(transparent)` over [`std::thread::Scope`] so the reference handed
/// out by `std::thread::scope` (whose lifetime *is* `'scope`) can be
/// reinterpreted as a reference to this wrapper.
#[repr(transparent)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: std::thread::Scope<'scope, 'env>,
}

fn wrap<'scope, 'env>(s: &'scope std::thread::Scope<'scope, 'env>) -> &'scope Scope<'scope, 'env> {
    // SAFETY: Scope is repr(transparent) over std::thread::Scope, so the
    // pointer cast preserves layout; lifetimes are carried through unchanged.
    unsafe { &*(s as *const std::thread::Scope<'scope, 'env> as *const Scope<'scope, 'env>) }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped worker. The closure receives the scope again (for
    /// nested spawns), matching crossbeam's signature.
    pub fn spawn<F, T>(&'scope self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&'scope Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(self))
    }
}

/// Run `f` with a scope in which borrowed threads can be spawned; joins all
/// spawned threads before returning. Mirrors `crossbeam::scope`, including
/// the `Result` wrapper (`Err` carries the payload when a worker panicked).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(wrap(s)))
    }))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let mut rows = vec![0u64; 8];
        super::scope(|scope| {
            for (i, row) in rows.chunks_mut(2).enumerate() {
                scope.spawn(move |_| {
                    for r in row.iter_mut() {
                        *r = i as u64 + 1;
                    }
                });
            }
        })
        .expect("no panics");
        assert!(rows.iter().all(|&r| r > 0));
    }

    #[test]
    fn nested_spawn_through_the_scope_arg() {
        let total = std::sync::atomic::AtomicU32::new(0);
        super::scope(|scope| {
            scope.spawn(|inner| {
                inner.spawn(|_| {
                    total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
                total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
        })
        .expect("no panics");
        assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn panics_are_reported() {
        let res = super::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(res.is_err());
    }
}
