//! Offline shim for the subset of `serde` this workspace uses. Instead of
//! serde's visitor architecture, the traits convert through a single JSON
//! [`Value`] data model (re-exported by the `serde_json` shim). The derive
//! macros (`serde_derive` shim) generate impls of these traits, so
//! `#[derive(Serialize, Deserialize)]`, `#[serde(transparent)]`, field
//! skipping for missing `Option`s, and externally-tagged enums behave like
//! the real crates at the JSON level.
// API-fidelity shim: mirrors the upstream crate's surface, so idiom lints
// against the real API shape are expected noise here.
#![allow(clippy::all)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON value (shim equivalent of `serde_json::Value`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(Map),
}

impl Value {
    /// Borrow as an object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as an array, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// As `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// As `i64`, if this is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// As `bool`, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup (`None` for non-objects or absent keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl Default for Value {
    fn default() -> Value {
        Value::Null
    }
}

/// A JSON number: integer when possible, `f64` otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Finite float.
    Float(f64),
}

impl Number {
    /// Build from an `f64`; `None` for NaN/infinite (like serde_json).
    pub fn from_f64(f: f64) -> Option<Number> {
        if f.is_finite() {
            Some(Number::Float(f))
        } else {
            None
        }
    }

    /// Lossy conversion to `f64`.
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(u) => u as f64,
            Number::NegInt(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// As `u64`, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(u) => Some(u),
            Number::NegInt(_) | Number::Float(_) => None,
        }
    }

    /// As `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(u) => i64::try_from(u).ok(),
            Number::NegInt(i) => Some(i),
            Number::Float(_) => None,
        }
    }
}

impl From<u64> for Number {
    fn from(u: u64) -> Number {
        Number::PosInt(u)
    }
}

impl From<i64> for Number {
    fn from(i: i64) -> Number {
        if i >= 0 {
            Number::PosInt(i as u64)
        } else {
            Number::NegInt(i)
        }
    }
}

/// A JSON object. Backed by a `BTreeMap` (sorted keys — matches real
/// serde_json's default, and keeps emitted files byte-deterministic).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: BTreeMap<String, Value>,
}

impl Map {
    /// An empty object.
    pub fn new() -> Map {
        Map::default()
    }

    /// Insert a member, returning any previous value for the key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.entries.insert(key, value)
    }

    /// Member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Remove a member.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.entries.remove(key)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the object has no members.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate members in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter()
    }

    /// Iterate keys in order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.keys()
    }

    /// Iterate values in key order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.values()
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::collections::btree_map::Iter<'a, String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::collections::btree_map::IntoIter<String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Map {
        Map {
            entries: iter.into_iter().collect(),
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Error {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Convert `self` into the JSON data model.
pub trait Serialize {
    /// Produce the JSON value for `self`.
    fn to_json(&self) -> Value;
}

/// Reconstruct `Self` from the JSON data model.
pub trait Deserialize: Sized {
    /// Parse `Self` out of a JSON value.
    fn from_json(value: &Value) -> Result<Self, Error>;

    /// Hook for absent object members; only `Option` admits them.
    fn missing_field(field: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{field}`")))
    }
}

/// Derive support: fetch a struct field, routing absence through
/// [`Deserialize::missing_field`].
pub fn field_from_json<T: Deserialize>(value: Option<&Value>, field: &str) -> Result<T, Error> {
    match value {
        Some(v) => T::from_json(v).map_err(|e| Error::custom(format!("field `{field}`: {e}"))),
        None => T::missing_field(field),
    }
}

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json(value: &Value) -> Result<Value, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(value: &Value) -> Result<bool, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom("expected boolean"))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_json(value: &Value) -> Result<$t, Error> {
                let u = value
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(u)
                    .map_err(|_| Error::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::from(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_json(value: &Value) -> Result<$t, Error> {
                let i = value
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(i)
                    .map_err(|_| Error::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                match Number::from_f64(*self as f64) {
                    Some(n) => Value::Number(n),
                    None => Value::Null,
                }
            }
        }
        impl Deserialize for $t {
            fn from_json(value: &Value) -> Result<$t, Error> {
                // Accept null for the NaN round-trip (serialize maps
                // non-finite floats to null).
                if value.is_null() {
                    return Ok(<$t>::NAN);
                }
                value
                    .as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(value: &Value) -> Result<String, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(value: &Value) -> Result<Box<T>, Error> {
        T::from_json(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(value: &Value) -> Result<Option<T>, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::from_json(value).map(Some)
        }
    }

    fn missing_field(_field: &str) -> Result<Option<T>, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(value: &Value) -> Result<Vec<T>, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_json(value: &Value) -> Result<[T; N], Error> {
        let items: Vec<T> = Vec::from_json(value)?;
        let got = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {got}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json(value: &Value) -> Result<($($name,)+), Error> {
                let arr = value.as_array().ok_or_else(|| Error::custom("expected array"))?;
                let want = [$($idx),+].len();
                if arr.len() != want {
                    return Err(Error::custom(format!(
                        "expected array of length {want}, got {}",
                        arr.len()
                    )));
                }
                Ok(($($name::from_json(&arr[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

/// Types usable as JSON object keys (strings and integers, stringified —
/// matches serde_json's map-key behavior).
pub trait JsonKey: Sized + Ord {
    /// Render the key.
    fn to_key(&self) -> String;
    /// Parse the key back.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<String, Error> {
        Ok(key.to_owned())
    }
}

macro_rules! impl_json_key_int {
    ($($t:ty),* $(,)?) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<$t, Error> {
                key.parse().map_err(|_| {
                    Error::custom(concat!("invalid ", stringify!($t), " map key"))
                })
            }
        }
    )*};
}

impl_json_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: JsonKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(k.to_key(), v.to_json());
        }
        Value::Object(map)
    }
}

impl<K: JsonKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json(value: &Value) -> Result<BTreeMap<K, V>, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?;
        let mut out = BTreeMap::new();
        for (k, v) in obj {
            out.insert(K::from_key(k)?, V::from_json(v)?);
        }
        Ok(out)
    }
}

impl<K: JsonKey + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_json(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(k.to_key(), v.to_json());
        }
        Value::Object(map)
    }
}

impl<K: JsonKey + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_json(value: &Value) -> Result<HashMap<K, V>, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| Error::custom("expected object"))?;
        let mut out = HashMap::with_capacity(obj.len());
        for (k, v) in obj {
            out.insert(K::from_key(k)?, V::from_json(v)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_json(&42u32.to_json()).unwrap(), 42);
        assert_eq!(i32::from_json(&(-7i32).to_json()).unwrap(), -7);
        assert_eq!(f64::from_json(&1.5f64.to_json()).unwrap(), 1.5);
        assert_eq!(String::from_json(&"hi".to_json()).unwrap(), "hi");
        assert_eq!(bool::from_json(&true.to_json()).unwrap(), true);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u8, 10u64), (2, 20)];
        assert_eq!(Vec::<(u8, u64)>::from_json(&v.to_json()).unwrap(), v);
        let a = [1u64, 2, 3];
        assert_eq!(<[u64; 3]>::from_json(&a.to_json()).unwrap(), a);
        let mut m = HashMap::new();
        m.insert(7u32, "x".to_string());
        assert_eq!(HashMap::<u32, String>::from_json(&m.to_json()).unwrap(), m);
    }

    #[test]
    fn option_absent_and_null() {
        assert_eq!(Option::<i32>::from_json(&Value::Null).unwrap(), None);
        assert_eq!(Option::<i32>::missing_field("x").unwrap(), None);
        assert!(i32::missing_field("x").is_err());
    }

    #[test]
    fn nan_serializes_to_null() {
        assert_eq!(f64::NAN.to_json(), Value::Null);
        assert!(f64::from_json(&Value::Null).unwrap().is_nan());
    }
}
