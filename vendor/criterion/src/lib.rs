//! Offline shim for the subset of `criterion` this workspace uses. Bench
//! functions run with a small fixed iteration budget and report a median
//! per-iteration time to stderr — enough to smoke-test the hot paths and
//! compare orders of magnitude, without criterion's statistical machinery.
// API-fidelity shim: mirrors the upstream crate's surface, so idiom lints
// against the real API shape are expected noise here.
#![allow(clippy::all)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value wrapper (mirrors `criterion::black_box`).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier with a parameter, e.g. `name/100`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }
}

/// Drives one benchmark's timed iterations.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    iters_per_sample: u32,
    sample_count: u32,
}

impl<'a> Bencher<'a> {
    /// Time the routine. The shim runs a warmup pass plus a fixed number
    /// of timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / self.iters_per_sample);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Annotate subsequent benches with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Reduce/raise the sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_count = (n as u32).clamp(2, 100);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        let mut samples = Vec::new();
        let mut bencher = Bencher {
            samples: &mut samples,
            iters_per_sample: self.criterion.iters_per_sample,
            sample_count: self.criterion.sample_count,
        };
        f(&mut bencher);
        report(&label, &samples, self.throughput);
        self
    }

    /// Run one benchmark against a prepared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// Benchmark names: plain strings or [`BenchmarkId`]s.
pub trait IntoBenchmarkId {
    /// Render the benchmark label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

fn report(label: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        eprintln!("bench {label}: no samples");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
            format!(
                " ({:.1} Melem/s)",
                n as f64 * 1e3 / median.as_nanos() as f64
            )
        }
        Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
            format!(" ({:.1} MB/s)", n as f64 * 1e3 / median.as_nanos() as f64)
        }
        _ => String::new(),
    };
    eprintln!("bench {label}: median {median:?}/iter{rate}");
}

/// The benchmark driver.
pub struct Criterion {
    iters_per_sample: u32,
    sample_count: u32,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Tiny fixed budget: the shim smoke-tests rather than measures.
        Criterion {
            iters_per_sample: 3,
            sample_count: 5,
        }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            name,
            criterion: self,
            throughput: None,
        }
    }
}

/// Bundle bench functions into a group runner (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit the bench `main` (mirrors `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_to", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn group_and_bench_run() {
        let mut criterion = Criterion::default();
        sum_bench(&mut criterion);
    }
}
