//! End-to-end daemon tests: boot on an ephemeral port, speak real HTTP
//! over real sockets, hot-reload under load, shut down gracefully.

use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use unclean_serve::{ServeConfig, Server};
use unclean_telemetry::{prom, Registry};

/// A scratch blocklist file unique to the calling test.
fn scratch_list(tag: &str, text: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("unclean-serve-daemon");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(format!("{tag}-{:?}.txt", std::thread::current().id()));
    std::fs::write(&path, text).expect("write blocklist");
    path
}

/// Issue one HTTP/1.0 request, return `(status, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let head = format!(
        "{method} {path} HTTP/1.0\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body).expect("write body");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    request(addr, "GET", path, b"")
}

/// Like [`request`] but returns the raw body bytes — the binary batch
/// endpoint answers frames that are not UTF-8.
fn request_raw(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let head = format!(
        "{method} {path} HTTP/1.0\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body).expect("write body");
    let mut bytes = Vec::new();
    stream.read_to_end(&mut bytes).expect("read response");
    let head_end = bytes
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .unwrap_or_else(|| panic!("torn response: {} bytes", bytes.len()));
    let status: u16 = std::str::from_utf8(&bytes[..head_end])
        .ok()
        .and_then(|h| h.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .expect("status line");
    (status, bytes[head_end + 4..].to_vec())
}

/// One persistent HTTP/1.1 keep-alive connection with responses framed
/// by `Content-Length` — supports writing a pipelined burst and then
/// draining the answers in order.
struct KeepAliveConn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl KeepAliveConn {
    fn connect(addr: SocketAddr) -> KeepAliveConn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        KeepAliveConn {
            stream,
            buf: Vec::new(),
        }
    }

    fn send(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("write request");
    }

    /// Read exactly one framed response off the connection.
    fn read_response(&mut self) -> (u16, Vec<u8>) {
        let mut chunk = [0u8; 8192];
        let head_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            let n = self.stream.read(&mut chunk).expect("read head");
            assert!(n > 0, "connection closed mid-response");
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = std::str::from_utf8(&self.buf[..head_end]).expect("ascii head");
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let content_length: usize = head
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().ok())?
            })
            .expect("content-length header");
        let total = head_end + 4 + content_length;
        while self.buf.len() < total {
            let n = self.stream.read(&mut chunk).expect("read body");
            assert!(n > 0, "connection closed mid-body");
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let body = self.buf[head_end + 4..total].to_vec();
        self.buf.drain(..total);
        (status, body)
    }
}

fn post(addr: SocketAddr, path: &str, body: &[u8]) -> (u16, String) {
    request(addr, "POST", path, body)
}

fn get_json(addr: SocketAddr, path: &str) -> Value {
    let (status, body) = get(addr, path);
    assert_eq!(status, 200, "GET {path}: {body}");
    serde_json::from_str(&body).unwrap_or_else(|e| panic!("bad json from {path}: {e} {body:?}"))
}

#[test]
fn endpoints_answer_over_real_sockets() {
    let list = scratch_list("endpoints", "9.1.0.0/16 # score=2.5\n203.0.113.0/24\n");
    let server = Server::start(ServeConfig::new(&list), Registry::full()).expect("start");
    let addr = server.local_addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(
        body.starts_with("ok generation=1 age_secs="),
        "healthz body: {body:?}"
    );

    let hit = get_json(addr, "/lookup?ip=9.1.44.44");
    assert_eq!(hit.get("blocked").and_then(Value::as_bool), Some(true));
    assert_eq!(hit.get("cidr").and_then(Value::as_str), Some("9.1.0.0/16"));
    assert_eq!(hit.get("n").and_then(Value::as_u64), Some(16));
    assert_eq!(hit.get("score").and_then(Value::as_f64), Some(2.5));
    assert_eq!(hit.get("generation").and_then(Value::as_u64), Some(1));

    let miss = get_json(addr, "/lookup?ip=8.8.8.8");
    assert_eq!(miss.get("blocked").and_then(Value::as_bool), Some(false));

    let (status, body) = post(
        addr,
        "/batch",
        b"9.1.1.7\n8.8.8.8\nnot-an-ip\n\n# comment\n",
    );
    assert_eq!(status, 200);
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), 3, "{body:?}");
    assert_eq!(lines[0], "9.1.1.7 blocked 9.1.0.0/16 16 2.5");
    assert_eq!(lines[1], "8.8.8.8 clean");
    assert_eq!(lines[2], "not-an-ip error");

    let snap = get_json(addr, "/snapshot");
    assert_eq!(snap.get("generation").and_then(Value::as_u64), Some(1));
    assert_eq!(snap.get("entries").and_then(Value::as_u64), Some(2));
    assert!(
        snap.get("memory_bytes")
            .and_then(Value::as_u64)
            .unwrap_or(0)
            > 0
    );

    // Client errors are answered, not dropped.
    assert_eq!(get(addr, "/lookup").0, 400, "missing ip=");
    assert_eq!(get(addr, "/lookup?ip=512.0.0.1").0, 400, "bad ip");
    assert_eq!(get(addr, "/no-such").0, 404);

    // /metrics is valid Prometheus exposition and a clean run shows
    // explicit zeros on the drop counters.
    let (status, text) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let exposition = prom::parse(&text).expect("prometheus parse");
    assert_eq!(
        exposition.counter_u64("unclean_serve_conns_dropped"),
        Some(0)
    );
    assert_eq!(
        exposition.counter_u64("unclean_serve_reload_errors"),
        Some(0)
    );
    assert!(
        exposition
            .counter_u64("unclean_serve_requests_lookup")
            .unwrap_or(0)
            >= 4
    );

    let (status, body) = post(addr, "/quit", b"");
    assert_eq!((status, body.as_str()), (200, "shutting down\n"));
    server.wait(); // joins cleanly: accept loop exited, workers drained
}

#[test]
fn post_reload_advances_generation_and_changes_answers() {
    let list = scratch_list("reload", "9.1.0.0/16 # score=2.5\n");
    let server = Server::start(ServeConfig::new(&list), Registry::full()).expect("start");
    let addr = server.local_addr();

    let before = get_json(addr, "/lookup?ip=9.1.44.44");
    assert_eq!(before.get("blocked").and_then(Value::as_bool), Some(true));

    // Swap the blocklist contents entirely: the old block disappears, a
    // new one appears.
    std::fs::write(&list, "198.51.100.0/24 # score=9.0\n").expect("rewrite");
    let reloaded = {
        let (status, body) = post(addr, "/reload", b"");
        assert_eq!(status, 200, "{body}");
        serde_json::from_str::<Value>(&body).expect("reload json")
    };
    assert_eq!(reloaded.get("generation").and_then(Value::as_u64), Some(2));
    assert_eq!(reloaded.get("entries").and_then(Value::as_u64), Some(1));

    let after = get_json(addr, "/lookup?ip=9.1.44.44");
    assert_eq!(after.get("blocked").and_then(Value::as_bool), Some(false));
    assert_eq!(after.get("generation").and_then(Value::as_u64), Some(2));
    let new_block = get_json(addr, "/lookup?ip=198.51.100.7");
    assert_eq!(
        new_block.get("blocked").and_then(Value::as_bool),
        Some(true)
    );
    assert_eq!(new_block.get("score").and_then(Value::as_f64), Some(9.0));

    // A reload that fails to parse keeps serving the old generation.
    std::fs::write(&list, "complete garbage\n").expect("rewrite");
    let (status, _) = post(addr, "/reload", b"");
    assert_eq!(status, 500);
    let still = get_json(addr, "/lookup?ip=198.51.100.7");
    assert_eq!(still.get("blocked").and_then(Value::as_bool), Some(true));
    assert_eq!(still.get("generation").and_then(Value::as_u64), Some(2));
    assert_eq!(server.registry().counter_value("reload.errors"), 1);

    server.shutdown();
}

#[test]
fn watcher_hot_reloads_on_file_change() {
    let list = scratch_list("watch", "9.1.0.0/16\n");
    let mut config = ServeConfig::new(&list);
    config.watch = Some(Duration::from_millis(25));
    let server = Server::start(config, Registry::full()).expect("start");
    let addr = server.local_addr();
    assert_eq!(server.generation(), 1);

    // Rewrite with different contents *and* length so the (mtime, len)
    // fingerprint changes even on coarse-mtime filesystems.
    std::fs::write(&list, "10.0.0.0/8 # score=1.0\n172.16.0.0/12\n").expect("rewrite");

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snap = get_json(addr, "/snapshot");
        if snap.get("generation").and_then(Value::as_u64) >= Some(2) {
            assert_eq!(snap.get("entries").and_then(Value::as_u64), Some(2));
            break;
        }
        assert!(Instant::now() < deadline, "watcher never picked up change");
        std::thread::sleep(Duration::from_millis(20));
    }

    let hit = get_json(addr, "/lookup?ip=10.9.9.9");
    assert_eq!(hit.get("blocked").and_then(Value::as_bool), Some(true));
    let gone = get_json(addr, "/lookup?ip=9.1.44.44");
    assert_eq!(gone.get("blocked").and_then(Value::as_bool), Some(false));

    server.shutdown();
}

/// Degraded-mode serving: with staleness thresholds set, `/healthz`
/// walks ok → stale (200) → degraded (503) as the generation ages, the
/// trie answers lookups throughout, and a reload snaps health back to ok.
#[test]
fn healthz_degrades_with_generation_age_and_recovers_on_reload() {
    let list = scratch_list("stale", "9.1.0.0/16 # score=2.5\n");
    let mut config = ServeConfig::new(&list);
    config.stale_after = Some(Duration::from_millis(400));
    config.degraded_after = Some(Duration::from_millis(1_200));
    let server = Server::start(config, Registry::full()).expect("start");
    let addr = server.local_addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    assert!(body.starts_with("ok "), "fresh boot: {body:?}");

    let wait_for = |prefix: &str, want_status: u16| {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let (status, body) = get(addr, "/healthz");
            if body.starts_with(prefix) {
                assert_eq!(status, want_status, "{body}");
                break;
            }
            assert!(
                Instant::now() < deadline,
                "never reached {prefix:?}: {body:?}"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    };
    wait_for("stale ", 200);
    wait_for("degraded ", 503);

    // Degraded ≠ down: lookups still answer from the last generation.
    let hit = get_json(addr, "/lookup?ip=9.1.44.44");
    assert_eq!(hit.get("blocked").and_then(Value::as_bool), Some(true));

    // The age gauge is exported and past the degraded threshold.
    let (status, text) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let exposition = prom::parse(&text).expect("prometheus parse");
    let age: f64 = exposition
        .find("unclean_serve_generation_age_secs")
        .and_then(|s| s.raw_value.parse().ok())
        .expect("age gauge exported");
    assert!(age >= 1.2, "age gauge {age} tracks staleness");

    // A fresh generation restores health immediately.
    std::fs::write(&list, "9.1.0.0/16 # score=3.0\n10.0.0.0/8\n").expect("rewrite");
    let (status, _) = post(addr, "/reload", b"");
    assert_eq!(status, 200);
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    assert!(body.starts_with("ok generation=2 "), "recovered: {body:?}");

    server.shutdown();
}

/// The binary batch endpoint must agree verdict-for-verdict with the
/// text endpoint over the same addresses, and `?detail=1` must name the
/// same matched prefixes.
#[test]
fn batch_bin_agrees_with_text_batch() {
    let list = scratch_list("batchbin", "9.1.0.0/16 # score=2.5\n203.0.113.0/24\n");
    let server = Server::start(ServeConfig::new(&list), Registry::full()).expect("start");
    let addr = server.local_addr();

    let ips: [u32; 5] = [
        (9 << 24) | (1 << 16) | (44 << 8) | 44, // 9.1.44.44  → /16 hit
        (8 << 24) | (8 << 16) | (8 << 8) | 8,   // 8.8.8.8    → clean
        (203 << 24) | (113 << 8) | 1,           // 203.0.113.1 → /24 hit
        (9 << 24) | (2 << 16),                  // 9.2.0.0    → clean (outside /16)
        u32::MAX,                               // 255.255.255.255 → clean
    ];

    // Text answers over /batch.
    let text_body: String = ips
        .iter()
        .map(|&ip| {
            format!(
                "{}.{}.{}.{}\n",
                ip >> 24,
                (ip >> 16) & 255,
                (ip >> 8) & 255,
                ip & 255
            )
        })
        .collect();
    let (status, text_answers) = post(addr, "/batch", text_body.as_bytes());
    assert_eq!(status, 200);
    let text_blocked: Vec<bool> = text_answers
        .lines()
        .map(|l| l.contains(" blocked "))
        .collect();
    assert_eq!(text_blocked, [true, false, true, false, false]);

    // Binary answers over /batch-bin: u32-BE count, then addresses.
    let mut frame = Vec::new();
    frame.extend_from_slice(&(ips.len() as u32).to_be_bytes());
    for &ip in &ips {
        frame.extend_from_slice(&ip.to_be_bytes());
    }
    let (status, body) = request_raw(addr, "POST", "/batch-bin", &frame);
    assert_eq!(status, 200);
    assert_eq!(
        body.len(),
        8 + ips.len(),
        "gen + count + one verdict byte each"
    );
    let generation = u32::from_be_bytes([body[0], body[1], body[2], body[3]]);
    let count = u32::from_be_bytes([body[4], body[5], body[6], body[7]]);
    assert_eq!((generation, count), (1, ips.len() as u32));
    // Verdict byte: 0 = clean, else matched prefix length + 1.
    let verdicts = &body[8..];
    assert_eq!(verdicts, [17, 0, 25, 0, 0], "text/binary verdict mismatch");
    for (i, &v) in verdicts.iter().enumerate() {
        assert_eq!(v != 0, text_blocked[i], "ip #{i}");
    }

    // ?detail=1 appends the matched CIDR base per address (0 if clean).
    let (status, body) = request_raw(addr, "POST", "/batch-bin?detail=1", &frame);
    assert_eq!(status, 200);
    assert_eq!(body.len(), 8 + ips.len() + 4 * ips.len());
    let bases: Vec<u32> = body[8 + ips.len()..]
        .chunks_exact(4)
        .map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    assert_eq!(
        bases,
        [
            (9 << 24) | (1 << 16), // 9.1.0.0
            0,
            (203 << 24) | (113 << 8), // 203.0.113.0
            0,
            0
        ]
    );

    // A torn frame (count promises more addresses than the body holds)
    // is a client error, not a crash.
    let (status, _) = request_raw(addr, "POST", "/batch-bin", &8u32.to_be_bytes());
    assert_eq!(status, 400);

    server.shutdown();
}

/// Keep-alive clients pipelining bursts of requests down one connection
/// while the snapshot hot-reloads underneath them: every response is
/// complete, generations never move backwards on any connection (text
/// and binary responses both carry the generation), and nothing is
/// dropped or mis-framed across the run.
#[test]
fn keepalive_pipelined_clients_survive_hot_reload() {
    let texts = [
        "9.1.0.0/16 # score=1.0\n203.0.113.0/24\n",
        "9.1.0.0/16 # score=2.0\n198.51.100.0/24 # score=3.5\n",
    ];
    let list = scratch_list("ka-reload", texts[0]);
    let mut config = ServeConfig::new(&list);
    config.threads = 2;
    config.max_conns = 64;
    let server = Server::start(config, Registry::full()).expect("start");
    let addr = server.local_addr();

    // One binary /batch-bin frame asking about a single always-blocked
    // address, reused by every burst.
    let mut bin_frame = Vec::new();
    bin_frame.extend_from_slice(&1u32.to_be_bytes());
    bin_frame.extend_from_slice(&(((9u32) << 24) | (1 << 16) | (44 << 8) | 44).to_be_bytes());
    let bin_request = {
        let mut req = format!(
            "POST /batch-bin HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            bin_frame.len()
        )
        .into_bytes();
        req.extend_from_slice(&bin_frame);
        req
    };

    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..3)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let bin_request = bin_request.clone();
            std::thread::spawn(move || {
                let mut conn = KeepAliveConn::connect(addr);
                let mut answered = 0u64;
                let mut last_generation = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Pipeline a burst: 7 text lookups + 1 binary batch,
                    // written back-to-back before reading any answer.
                    let mut burst = Vec::new();
                    for _ in 0..7 {
                        burst.extend_from_slice(b"GET /lookup?ip=9.1.44.44 HTTP/1.1\r\n\r\n");
                    }
                    burst.extend_from_slice(&bin_request);
                    conn.send(&burst);
                    for i in 0..8 {
                        let (status, body) = conn.read_response();
                        assert_eq!(status, 200, "response #{i} in burst");
                        let generation = if i < 7 {
                            let json: Value = serde_json::from_slice(&body).expect("lookup json");
                            assert_eq!(json.get("blocked").and_then(Value::as_bool), Some(true));
                            json.get("generation")
                                .and_then(Value::as_u64)
                                .expect("generation")
                        } else {
                            assert_eq!(body.len(), 9, "binary frame: gen+count+verdict");
                            assert_ne!(body[8], 0, "binary verdict must be blocked");
                            u64::from(u32::from_be_bytes([body[0], body[1], body[2], body[3]]))
                        };
                        assert!(
                            generation >= last_generation,
                            "generation went backwards on a live connection"
                        );
                        last_generation = generation;
                        answered += 1;
                    }
                }
                answered
            })
        })
        .collect();

    // Ten full hot reloads while the pipelined clients run.
    for round in 0..10 {
        std::fs::write(&list, texts[(round + 1) % 2]).expect("rewrite");
        let (status, _) = post(addr, "/reload", b"");
        assert_eq!(status, 200);
        std::thread::sleep(Duration::from_millis(10));
    }
    stop.store(true, Ordering::Relaxed);
    let answered: u64 = clients.into_iter().map(|c| c.join().expect("client")).sum();
    assert!(answered >= 24, "clients made no progress: {answered}");

    assert_eq!(server.generation(), 11);
    let registry = server.registry().clone();
    server.shutdown();
    assert_eq!(registry.counter_value("conns.dropped"), 0);
    assert_eq!(registry.counter_value("conns.read_errors"), 0);
    assert_eq!(registry.counter_value("reload.errors"), 0);
    assert_eq!(registry.counter_value("reload.count"), 10);
}

/// The tentpole's zero-loss claim: clients hammering `/lookup` while the
/// snapshot is rebuilt repeatedly see only complete 200 responses, each
/// from a well-defined generation, and generations never move backwards
/// from any single client's point of view.
#[test]
fn hot_reload_under_load_loses_no_requests() {
    let texts = [
        "9.1.0.0/16 # score=1.0\n203.0.113.0/24\n",
        "9.1.0.0/16 # score=2.0\n198.51.100.0/24 # score=3.5\n",
    ];
    let list = scratch_list("underload", texts[0]);
    let mut config = ServeConfig::new(&list);
    config.threads = 4;
    config.max_conns = 512;
    let server = Server::start(config, Registry::full()).expect("start");
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut answered = 0u64;
                let mut last_generation = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let body = get_json(addr, "/lookup?ip=9.1.44.44");
                    assert_eq!(body.get("blocked").and_then(Value::as_bool), Some(true));
                    let generation = body
                        .get("generation")
                        .and_then(Value::as_u64)
                        .expect("generation");
                    assert!(generation >= last_generation, "generation went backwards");
                    last_generation = generation;
                    answered += 1;
                }
                answered
            })
        })
        .collect();

    // Ten full hot reloads while the clients run.
    for round in 0..10 {
        std::fs::write(&list, texts[(round + 1) % 2]).expect("rewrite");
        let (status, _) = post(addr, "/reload", b"");
        assert_eq!(status, 200);
        std::thread::sleep(Duration::from_millis(10));
    }
    stop.store(true, Ordering::Relaxed);
    let answered: u64 = clients.into_iter().map(|c| c.join().expect("client")).sum();
    assert!(answered > 0, "clients made no progress");

    assert_eq!(server.generation(), 11);
    let registry = server.registry().clone();
    server.shutdown();
    // Nothing was dropped or errored across the whole run.
    assert_eq!(registry.counter_value("conns.dropped"), 0);
    assert_eq!(registry.counter_value("conns.read_errors"), 0);
    assert_eq!(registry.counter_value("reload.errors"), 0);
    assert_eq!(registry.counter_value("reload.count"), 10);
}
