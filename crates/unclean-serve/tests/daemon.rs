//! End-to-end daemon tests: boot on an ephemeral port, speak real HTTP
//! over real sockets, hot-reload under load, shut down gracefully.

use serde_json::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use unclean_serve::{ServeConfig, Server};
use unclean_telemetry::{prom, Registry};

/// A scratch blocklist file unique to the calling test.
fn scratch_list(tag: &str, text: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("unclean-serve-daemon");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(format!("{tag}-{:?}.txt", std::thread::current().id()));
    std::fs::write(&path, text).expect("write blocklist");
    path
}

/// Issue one HTTP/1.0 request, return `(status, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let head = format!(
        "{method} {path} HTTP/1.0\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body).expect("write body");
    let mut text = String::new();
    stream.read_to_string(&mut text).expect("read response");
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    request(addr, "GET", path, b"")
}

fn post(addr: SocketAddr, path: &str, body: &[u8]) -> (u16, String) {
    request(addr, "POST", path, body)
}

fn get_json(addr: SocketAddr, path: &str) -> Value {
    let (status, body) = get(addr, path);
    assert_eq!(status, 200, "GET {path}: {body}");
    serde_json::from_str(&body).unwrap_or_else(|e| panic!("bad json from {path}: {e} {body:?}"))
}

#[test]
fn endpoints_answer_over_real_sockets() {
    let list = scratch_list("endpoints", "9.1.0.0/16 # score=2.5\n203.0.113.0/24\n");
    let server = Server::start(ServeConfig::new(&list), Registry::full()).expect("start");
    let addr = server.local_addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(
        body.starts_with("ok generation=1 age_secs="),
        "healthz body: {body:?}"
    );

    let hit = get_json(addr, "/lookup?ip=9.1.44.44");
    assert_eq!(hit.get("blocked").and_then(Value::as_bool), Some(true));
    assert_eq!(hit.get("cidr").and_then(Value::as_str), Some("9.1.0.0/16"));
    assert_eq!(hit.get("n").and_then(Value::as_u64), Some(16));
    assert_eq!(hit.get("score").and_then(Value::as_f64), Some(2.5));
    assert_eq!(hit.get("generation").and_then(Value::as_u64), Some(1));

    let miss = get_json(addr, "/lookup?ip=8.8.8.8");
    assert_eq!(miss.get("blocked").and_then(Value::as_bool), Some(false));

    let (status, body) = post(
        addr,
        "/batch",
        b"9.1.1.7\n8.8.8.8\nnot-an-ip\n\n# comment\n",
    );
    assert_eq!(status, 200);
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), 3, "{body:?}");
    assert_eq!(lines[0], "9.1.1.7 blocked 9.1.0.0/16 16 2.5");
    assert_eq!(lines[1], "8.8.8.8 clean");
    assert_eq!(lines[2], "not-an-ip error");

    let snap = get_json(addr, "/snapshot");
    assert_eq!(snap.get("generation").and_then(Value::as_u64), Some(1));
    assert_eq!(snap.get("entries").and_then(Value::as_u64), Some(2));
    assert!(
        snap.get("memory_bytes")
            .and_then(Value::as_u64)
            .unwrap_or(0)
            > 0
    );

    // Client errors are answered, not dropped.
    assert_eq!(get(addr, "/lookup").0, 400, "missing ip=");
    assert_eq!(get(addr, "/lookup?ip=512.0.0.1").0, 400, "bad ip");
    assert_eq!(get(addr, "/no-such").0, 404);

    // /metrics is valid Prometheus exposition and a clean run shows
    // explicit zeros on the drop counters.
    let (status, text) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let exposition = prom::parse(&text).expect("prometheus parse");
    assert_eq!(
        exposition.counter_u64("unclean_serve_conns_dropped"),
        Some(0)
    );
    assert_eq!(
        exposition.counter_u64("unclean_serve_reload_errors"),
        Some(0)
    );
    assert!(
        exposition
            .counter_u64("unclean_serve_requests_lookup")
            .unwrap_or(0)
            >= 4
    );

    let (status, body) = post(addr, "/quit", b"");
    assert_eq!((status, body.as_str()), (200, "shutting down\n"));
    server.wait(); // joins cleanly: accept loop exited, workers drained
}

#[test]
fn post_reload_advances_generation_and_changes_answers() {
    let list = scratch_list("reload", "9.1.0.0/16 # score=2.5\n");
    let server = Server::start(ServeConfig::new(&list), Registry::full()).expect("start");
    let addr = server.local_addr();

    let before = get_json(addr, "/lookup?ip=9.1.44.44");
    assert_eq!(before.get("blocked").and_then(Value::as_bool), Some(true));

    // Swap the blocklist contents entirely: the old block disappears, a
    // new one appears.
    std::fs::write(&list, "198.51.100.0/24 # score=9.0\n").expect("rewrite");
    let reloaded = {
        let (status, body) = post(addr, "/reload", b"");
        assert_eq!(status, 200, "{body}");
        serde_json::from_str::<Value>(&body).expect("reload json")
    };
    assert_eq!(reloaded.get("generation").and_then(Value::as_u64), Some(2));
    assert_eq!(reloaded.get("entries").and_then(Value::as_u64), Some(1));

    let after = get_json(addr, "/lookup?ip=9.1.44.44");
    assert_eq!(after.get("blocked").and_then(Value::as_bool), Some(false));
    assert_eq!(after.get("generation").and_then(Value::as_u64), Some(2));
    let new_block = get_json(addr, "/lookup?ip=198.51.100.7");
    assert_eq!(
        new_block.get("blocked").and_then(Value::as_bool),
        Some(true)
    );
    assert_eq!(new_block.get("score").and_then(Value::as_f64), Some(9.0));

    // A reload that fails to parse keeps serving the old generation.
    std::fs::write(&list, "complete garbage\n").expect("rewrite");
    let (status, _) = post(addr, "/reload", b"");
    assert_eq!(status, 500);
    let still = get_json(addr, "/lookup?ip=198.51.100.7");
    assert_eq!(still.get("blocked").and_then(Value::as_bool), Some(true));
    assert_eq!(still.get("generation").and_then(Value::as_u64), Some(2));
    assert_eq!(server.registry().counter_value("reload.errors"), 1);

    server.shutdown();
}

#[test]
fn watcher_hot_reloads_on_file_change() {
    let list = scratch_list("watch", "9.1.0.0/16\n");
    let mut config = ServeConfig::new(&list);
    config.watch = Some(Duration::from_millis(25));
    let server = Server::start(config, Registry::full()).expect("start");
    let addr = server.local_addr();
    assert_eq!(server.generation(), 1);

    // Rewrite with different contents *and* length so the (mtime, len)
    // fingerprint changes even on coarse-mtime filesystems.
    std::fs::write(&list, "10.0.0.0/8 # score=1.0\n172.16.0.0/12\n").expect("rewrite");

    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snap = get_json(addr, "/snapshot");
        if snap.get("generation").and_then(Value::as_u64) >= Some(2) {
            assert_eq!(snap.get("entries").and_then(Value::as_u64), Some(2));
            break;
        }
        assert!(Instant::now() < deadline, "watcher never picked up change");
        std::thread::sleep(Duration::from_millis(20));
    }

    let hit = get_json(addr, "/lookup?ip=10.9.9.9");
    assert_eq!(hit.get("blocked").and_then(Value::as_bool), Some(true));
    let gone = get_json(addr, "/lookup?ip=9.1.44.44");
    assert_eq!(gone.get("blocked").and_then(Value::as_bool), Some(false));

    server.shutdown();
}

/// Degraded-mode serving: with staleness thresholds set, `/healthz`
/// walks ok → stale (200) → degraded (503) as the generation ages, the
/// trie answers lookups throughout, and a reload snaps health back to ok.
#[test]
fn healthz_degrades_with_generation_age_and_recovers_on_reload() {
    let list = scratch_list("stale", "9.1.0.0/16 # score=2.5\n");
    let mut config = ServeConfig::new(&list);
    config.stale_after = Some(Duration::from_millis(400));
    config.degraded_after = Some(Duration::from_millis(1_200));
    let server = Server::start(config, Registry::full()).expect("start");
    let addr = server.local_addr();

    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    assert!(body.starts_with("ok "), "fresh boot: {body:?}");

    let wait_for = |prefix: &str, want_status: u16| {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let (status, body) = get(addr, "/healthz");
            if body.starts_with(prefix) {
                assert_eq!(status, want_status, "{body}");
                break;
            }
            assert!(
                Instant::now() < deadline,
                "never reached {prefix:?}: {body:?}"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    };
    wait_for("stale ", 200);
    wait_for("degraded ", 503);

    // Degraded ≠ down: lookups still answer from the last generation.
    let hit = get_json(addr, "/lookup?ip=9.1.44.44");
    assert_eq!(hit.get("blocked").and_then(Value::as_bool), Some(true));

    // The age gauge is exported and past the degraded threshold.
    let (status, text) = get(addr, "/metrics");
    assert_eq!(status, 200);
    let exposition = prom::parse(&text).expect("prometheus parse");
    let age: f64 = exposition
        .find("unclean_serve_generation_age_secs")
        .and_then(|s| s.raw_value.parse().ok())
        .expect("age gauge exported");
    assert!(age >= 1.2, "age gauge {age} tracks staleness");

    // A fresh generation restores health immediately.
    std::fs::write(&list, "9.1.0.0/16 # score=3.0\n10.0.0.0/8\n").expect("rewrite");
    let (status, _) = post(addr, "/reload", b"");
    assert_eq!(status, 200);
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    assert!(body.starts_with("ok generation=2 "), "recovered: {body:?}");

    server.shutdown();
}

/// The tentpole's zero-loss claim: clients hammering `/lookup` while the
/// snapshot is rebuilt repeatedly see only complete 200 responses, each
/// from a well-defined generation, and generations never move backwards
/// from any single client's point of view.
#[test]
fn hot_reload_under_load_loses_no_requests() {
    let texts = [
        "9.1.0.0/16 # score=1.0\n203.0.113.0/24\n",
        "9.1.0.0/16 # score=2.0\n198.51.100.0/24 # score=3.5\n",
    ];
    let list = scratch_list("underload", texts[0]);
    let mut config = ServeConfig::new(&list);
    config.threads = 4;
    config.max_conns = 512;
    let server = Server::start(config, Registry::full()).expect("start");
    let addr = server.local_addr();

    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut answered = 0u64;
                let mut last_generation = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let body = get_json(addr, "/lookup?ip=9.1.44.44");
                    assert_eq!(body.get("blocked").and_then(Value::as_bool), Some(true));
                    let generation = body
                        .get("generation")
                        .and_then(Value::as_u64)
                        .expect("generation");
                    assert!(generation >= last_generation, "generation went backwards");
                    last_generation = generation;
                    answered += 1;
                }
                answered
            })
        })
        .collect();

    // Ten full hot reloads while the clients run.
    for round in 0..10 {
        std::fs::write(&list, texts[(round + 1) % 2]).expect("rewrite");
        let (status, _) = post(addr, "/reload", b"");
        assert_eq!(status, 200);
        std::thread::sleep(Duration::from_millis(10));
    }
    stop.store(true, Ordering::Relaxed);
    let answered: u64 = clients.into_iter().map(|c| c.join().expect("client")).sum();
    assert!(answered > 0, "clients made no progress");

    assert_eq!(server.generation(), 11);
    let registry = server.registry().clone();
    server.shutdown();
    // Nothing was dropped or errored across the whole run.
    assert_eq!(registry.counter_value("conns.dropped"), 0);
    assert_eq!(registry.counter_value("conns.read_errors"), 0);
    assert_eq!(registry.counter_value("reload.errors"), 0);
    assert_eq!(registry.counter_value("reload.count"), 10);
}
