//! # unclean-serve — online blocklist query daemon
//!
//! The paper's punchline (Collins et al., IMC 2007) is *operational*:
//! uncleanliness is predictive enough that yesterday's unclean blocks are
//! a usable blocklist for tomorrow's traffic. This crate is the serving
//! side of that claim — a long-running daemon that loads a (scored)
//! blocklist produced by the analysis pipeline into an immutable
//! [`FrozenTrie`](unclean_core::frozen::FrozenTrie) and answers
//! longest-prefix-match queries over HTTP/1.1 (keep-alive and pipelining
//! first-class; HTTP/1.0 close-per-request still honored) plus a
//! length-prefixed binary batch protocol (`POST /batch-bin`) for
//! consumers that need millions of verdicts per second.
//!
//! Design in one paragraph: N shard threads each own a listening socket
//! (`SO_REUSEPORT` on Linux, so the kernel spreads accepts), a private
//! epoll/poll event loop ([`poll`]), and the nonblocking connections it
//! accepted — no async runtime, no cross-thread handoff on the hot
//! path. Requests parse incrementally off per-connection buffers
//! ([`http::parse_request`]); responses serialize into per-connection
//! output buffers flushed as sockets allow. Every shard answers from an
//! `Arc` clone of the current [`ServingSnapshot`](snapshot::ServingSnapshot).
//! Snapshots are generation-numbered; a watcher thread (or `POST
//! /reload`) rebuilds off the serving path and atomically swaps the
//! `Arc`, so a hot reload under load loses zero requests — in-flight
//! lookups keep answering from the generation they loaded. The source
//! can be a text blocklist *or* a frozen-trie snapshot file
//! (`unclean blocklist freeze`), which is memory-mapped: cold start is
//! O(1) and co-located daemons share one page-cache copy.
//!
//! | module | what lives there |
//! |---|---|
//! | [`http`] | incremental HTTP/1.x request parser + response serializer |
//! | [`poll`] | epoll/poll readiness wrapper, SO_REUSEPORT shard listeners (unix) |
//! | [`snapshot`] | generation-numbered builds (text or mmap), atomic swap store |
//! | [`server`] | shard event loops, watcher, routing, binary batch protocol, metrics |
//!
//! ```no_run
//! use unclean_serve::{ServeConfig, Server};
//! use unclean_telemetry::Registry;
//!
//! let config = ServeConfig::new("blocklist.txt");
//! let server = Server::start(config, Registry::full()).expect("start");
//! println!("serving on http://{}", server.local_addr());
//! server.wait(); // until POST /quit
//! ```

pub mod http;
#[cfg(unix)]
pub mod poll;
pub mod server;
pub mod snapshot;

pub use server::{Health, ServeConfig, Server};
pub use snapshot::{
    build_forecast_snapshot, build_snapshot, ForecastSnapshot, ForecastStore, ServeError,
    ServingSnapshot, SnapshotStore,
};
