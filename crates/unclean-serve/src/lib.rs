//! # unclean-serve — online blocklist query daemon
//!
//! The paper's punchline (Collins et al., IMC 2007) is *operational*:
//! uncleanliness is predictive enough that yesterday's unclean blocks are
//! a usable blocklist for tomorrow's traffic. This crate is the serving
//! side of that claim — a long-running daemon that loads a (scored)
//! blocklist produced by the analysis pipeline into an immutable
//! [`FrozenTrie`](unclean_core::frozen::FrozenTrie) and answers
//! longest-prefix-match queries over a minimal HTTP/1.0 text protocol.
//!
//! Design in one paragraph: an accept thread pushes connections into a
//! bounded crossbeam channel drained by a fixed pool of worker threads
//! (no async runtime); each worker answers from an `Arc` clone of the
//! current [`ServingSnapshot`](snapshot::ServingSnapshot). Snapshots are
//! generation-numbered; a watcher thread (or `POST /reload`) rebuilds
//! off the serving path and atomically swaps the `Arc`, so a hot reload
//! under load loses zero requests — in-flight lookups keep answering
//! from the generation they loaded.
//!
//! | module | what lives there |
//! |---|---|
//! | [`http`] | one-request-per-connection HTTP/1.0 parse + respond |
//! | [`snapshot`] | generation-numbered builds, atomic swap store |
//! | [`server`] | accept loop, worker pool, watcher, routing, metrics |
//!
//! ```no_run
//! use unclean_serve::{ServeConfig, Server};
//! use unclean_telemetry::Registry;
//!
//! let config = ServeConfig::new("blocklist.txt");
//! let server = Server::start(config, Registry::full()).expect("start");
//! println!("serving on http://{}", server.local_addr());
//! server.wait(); // until POST /quit
//! ```

pub mod http;
pub mod server;
pub mod snapshot;

pub use server::{Health, ServeConfig, Server};
pub use snapshot::{
    build_forecast_snapshot, build_snapshot, ForecastSnapshot, ForecastStore, ServeError,
    ServingSnapshot, SnapshotStore,
};
