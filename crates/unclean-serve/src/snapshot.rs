//! Generation-numbered frozen-trie snapshots and the store that swaps
//! them atomically.
//!
//! A [`ServingSnapshot`] is immutable: the frozen trie plus its build
//! provenance. The [`SnapshotStore`] hands out `Arc` clones to request
//! handlers; installing a new generation swaps the `Arc` under a lock
//! held for nanoseconds, so in-flight requests keep answering from the
//! generation they loaded — a hot reload under load loses nothing.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime, UNIX_EPOCH};
use unclean_core::frozen::FrozenTrie;
use unclean_telemetry::Registry;

/// One immutable generation of the serving state.
#[derive(Debug)]
pub struct ServingSnapshot {
    /// Monotone generation number (1 for the boot snapshot).
    pub generation: u64,
    /// The frozen longest-prefix-match trie requests are answered from.
    pub trie: FrozenTrie,
    /// The source file the snapshot was built from.
    pub source: String,
    /// Wall-clock time spent parsing + building + freezing, microseconds.
    pub build_micros: u64,
    /// Unix milliseconds at which the build finished.
    pub built_unix_ms: u64,
    /// The producer's generation number, parsed from the blocklist
    /// header's `generation=G` metadata (written by `unclean ingest`).
    /// This is the causal id that ties a served lookup back across the
    /// process boundary to the publish / rescore / WAL-segment events
    /// that produced its verdict. `None` for lists without metadata.
    pub source_generation: Option<u64>,
    /// The producer's publish timestamp (`published_unix_ms=T` header
    /// metadata), if present.
    pub source_published_unix_ms: Option<u64>,
}

/// Errors surfaced by snapshot building and daemon startup.
#[derive(Debug)]
pub enum ServeError {
    /// The blocklist source could not be read or parsed.
    Source(String),
    /// A socket operation failed.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Source(msg) => write!(f, "blocklist source: {msg}"),
            ServeError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

/// Build one snapshot from a scored (or plain) blocklist file — or,
/// when the file leads with the frozen-snapshot magic (`unclean
/// blocklist freeze`), memory-map it: O(1) regardless of entry count,
/// no parse, and co-located daemons share one page-cache copy. Runs off
/// the serving path; the old generation keeps serving while this parses
/// and freezes. Records a `build` span with `generation`/`entries`
/// fields on `registry`.
pub fn build_snapshot(
    source: &Path,
    generation: u64,
    registry: &Registry,
) -> Result<ServingSnapshot, ServeError> {
    let mut span = registry.span("build");
    span.field("generation", generation);
    let t0 = Instant::now();
    if unclean_core::snap::is_snapshot(source) {
        let trie = FrozenTrie::open_mmap(source)
            .map_err(|e| ServeError::Source(format!("cannot map {}: {e}", source.display())))?;
        let meta = trie.snapshot_meta();
        span.field("entries", trie.len());
        span.field("mmap", 1u64);
        let source_generation = meta.and_then(|m| m.source_generation);
        if let Some(source_generation) = source_generation {
            span.field("source_generation", source_generation);
        }
        return Ok(ServingSnapshot {
            generation,
            source: source.display().to_string(),
            build_micros: t0.elapsed().as_micros().min(u64::MAX as u128) as u64,
            built_unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
                .unwrap_or(0),
            source_generation,
            source_published_unix_ms: meta.map(|m| m.built_unix_ms),
            trie,
        });
    }
    let text = std::fs::read_to_string(source)
        .map_err(|e| ServeError::Source(format!("cannot read {}: {e}", source.display())))?;
    let scored = unclean_core::blocklist::parse_scored(&text)
        .map_err(|e| ServeError::Source(format!("cannot parse {}: {e}", source.display())))?;
    let meta = unclean_core::blocklist::parse_header_meta(&text)
        .map_err(|e| ServeError::Source(format!("corrupt header in {}: {e}", source.display())))?;
    let source_generation = meta.get("generation").and_then(|g| g.parse().ok());
    let source_published_unix_ms = meta.get("published_unix_ms").and_then(|t| t.parse().ok());
    let trie = FrozenTrie::from_scored(scored);
    span.field("entries", trie.len());
    if let Some(source_generation) = source_generation {
        span.field("source_generation", source_generation);
    }
    Ok(ServingSnapshot {
        generation,
        trie,
        source: source.display().to_string(),
        build_micros: t0.elapsed().as_micros().min(u64::MAX as u128) as u64,
        built_unix_ms: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
            .unwrap_or(0),
        source_generation,
        source_published_unix_ms,
    })
}

/// One immutable generation of the forecast serving state: a parsed
/// [`unclean_forecast::ForecastArtifact`] plus build provenance, the
/// same shape [`ServingSnapshot`] gives the blocklist.
#[derive(Debug)]
pub struct ForecastSnapshot {
    /// Monotone generation number (1 for the boot snapshot).
    pub generation: u64,
    /// The parsed forecast artifact requests are answered from.
    pub artifact: unclean_forecast::ForecastArtifact,
    /// The source file the snapshot was built from.
    pub source: String,
    /// Unix milliseconds at which the build finished.
    pub built_unix_ms: u64,
    /// The publisher's generation stamp from the artifact header.
    pub source_generation: Option<u64>,
    /// The publisher's timestamp from the artifact header.
    pub source_published_unix_ms: Option<u64>,
}

/// Build one forecast snapshot from a published artifact. Runs off the
/// serving path, like [`build_snapshot`]; records a `forecast_build`
/// span with `generation`/`entries` fields on `registry`.
pub fn build_forecast_snapshot(
    source: &Path,
    generation: u64,
    registry: &Registry,
) -> Result<ForecastSnapshot, ServeError> {
    let mut span = registry.span("forecast_build");
    span.field("generation", generation);
    let text = std::fs::read_to_string(source)
        .map_err(|e| ServeError::Source(format!("cannot read {}: {e}", source.display())))?;
    let artifact = unclean_forecast::ForecastArtifact::parse(&text)
        .map_err(|e| ServeError::Source(format!("cannot parse {}: {e}", source.display())))?;
    span.field("entries", artifact.entries.len() as u64);
    Ok(ForecastSnapshot {
        generation,
        source: source.display().to_string(),
        built_unix_ms: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
            .unwrap_or(0),
        source_generation: artifact.generation,
        source_published_unix_ms: artifact.published_unix_ms,
        artifact,
    })
}

/// [`SnapshotStore`]'s twin for forecast generations: `Arc` clones out,
/// forward-only installs in.
#[derive(Debug)]
pub struct ForecastStore {
    current: Mutex<Arc<ForecastSnapshot>>,
    next_generation: AtomicU64,
}

impl ForecastStore {
    /// A store serving `boot` as generation `boot.generation`.
    pub fn new(boot: ForecastSnapshot) -> ForecastStore {
        let next = boot.generation + 1;
        ForecastStore {
            current: Mutex::new(Arc::new(boot)),
            next_generation: AtomicU64::new(next),
        }
    }

    /// The current generation, shared.
    pub fn load(&self) -> Arc<ForecastSnapshot> {
        Arc::clone(&self.current.lock().expect("forecast store"))
    }

    /// Claim the next generation number (for a build about to start).
    pub fn claim_generation(&self) -> u64 {
        self.next_generation.fetch_add(1, Ordering::SeqCst)
    }

    /// Install a newly built generation; refuses to go backwards.
    pub fn install(&self, snapshot: ForecastSnapshot) -> bool {
        let mut current = self.current.lock().expect("forecast store");
        if snapshot.generation <= current.generation {
            return false;
        }
        *current = Arc::new(snapshot);
        true
    }
}

/// Holds the current generation; hands out `Arc` clones and swaps in new
/// generations atomically.
#[derive(Debug)]
pub struct SnapshotStore {
    current: Mutex<Arc<ServingSnapshot>>,
    next_generation: AtomicU64,
}

impl SnapshotStore {
    /// A store serving `boot` as generation `boot.generation`.
    pub fn new(boot: ServingSnapshot) -> SnapshotStore {
        let next = boot.generation + 1;
        SnapshotStore {
            current: Mutex::new(Arc::new(boot)),
            next_generation: AtomicU64::new(next),
        }
    }

    /// The current generation, shared. Callers keep answering from their
    /// clone even if a newer generation is installed mid-request.
    pub fn load(&self) -> Arc<ServingSnapshot> {
        Arc::clone(&self.current.lock().expect("snapshot store"))
    }

    /// Claim the next generation number (for a build about to start).
    pub fn claim_generation(&self) -> u64 {
        self.next_generation.fetch_add(1, Ordering::SeqCst)
    }

    /// Install a newly built generation. Refuses to go backwards: if a
    /// newer generation was installed while this one built, it is dropped
    /// and `false` is returned.
    pub fn install(&self, snapshot: ServingSnapshot) -> bool {
        let mut current = self.current.lock().expect("snapshot store");
        if snapshot.generation <= current.generation {
            return false;
        }
        *current = Arc::new(snapshot);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unclean_core::prelude::Ip;

    fn snapshot(generation: u64, text: &str) -> ServingSnapshot {
        let dir = std::env::temp_dir().join("unclean-serve-snapshot");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(format!(
            "list-{generation}-{:?}.txt",
            std::thread::current().id()
        ));
        std::fs::write(&path, text).expect("write");
        build_snapshot(&path, generation, &Registry::full()).expect("build")
    }

    #[test]
    fn build_parses_scores_and_records_provenance() {
        let snap = snapshot(1, "9.1.0.0/16 # score=2.5\n203.0.113.0/24\n");
        assert_eq!(snap.generation, 1);
        assert_eq!(snap.trie.len(), 2);
        let m = snap.trie.lookup("9.1.44.44".parse::<Ip>().expect("ip"));
        assert_eq!(m.expect("blocked").score, 2.5);
        assert!(snap.built_unix_ms > 0);
        assert!(snap.source.contains("list-1"));
    }

    #[test]
    fn build_errors_on_missing_or_garbage_source() {
        let registry = Registry::off();
        let missing = Path::new("/nonexistent/unclean/blocklist.txt");
        assert!(matches!(
            build_snapshot(missing, 1, &registry),
            Err(ServeError::Source(_))
        ));
        let dir = std::env::temp_dir().join("unclean-serve-snapshot");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let bad = dir.join("garbage.txt");
        std::fs::write(&bad, "not-a-cidr\n").expect("write");
        let err = build_snapshot(&bad, 1, &registry).expect_err("garbage");
        assert!(err.to_string().contains("garbage.txt"), "{err}");
    }

    #[test]
    fn build_reads_source_generation_from_header_meta() {
        let entries = vec![("9.1.0.0/16".parse().expect("cidr"), 2.5)];
        let text = unclean_core::blocklist::render_scored_with_meta(
            &entries,
            "unclean-ingest",
            &[
                ("generation", "41".to_string()),
                ("published_unix_ms", "1754700000123".to_string()),
            ],
        );
        let snap = snapshot(1, &text);
        assert_eq!(snap.source_generation, Some(41));
        assert_eq!(snap.source_published_unix_ms, Some(1754700000123));
        // A list without metadata builds with no source generation.
        let bare = snapshot(2, "9.1.0.0/16 # score=2.5\n");
        assert_eq!(bare.source_generation, None);
    }

    #[test]
    fn build_maps_frozen_snapshot_sources() {
        let dir = std::env::temp_dir().join("unclean-serve-snapshot");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(format!("frozen-{:?}.snap", std::thread::current().id()));
        let text = "9.1.0.0/16 # score=2.5\n203.0.113.0/24 # score=1.0\n";
        let scored = unclean_core::blocklist::parse_scored(text).expect("parse");
        let trie = unclean_core::frozen::FrozenTrie::from_scored(scored);
        trie.freeze_to_file(
            &path,
            unclean_core::snap::SnapshotMeta {
                built_unix_ms: 123,
                source_generation: Some(41),
            },
        )
        .expect("freeze");

        let snap = build_snapshot(&path, 7, &Registry::full()).expect("build");
        assert!(snap.trie.is_mapped(), "snapshot sources are mmapped");
        assert_eq!(snap.generation, 7);
        assert_eq!(snap.trie.len(), 2);
        assert_eq!(snap.source_generation, Some(41));
        assert_eq!(snap.source_published_unix_ms, Some(123));
        let m = snap
            .trie
            .lookup("9.1.44.44".parse::<Ip>().expect("ip"))
            .expect("blocked");
        assert_eq!(m.score, 2.5);
    }

    #[test]
    fn store_swaps_forward_only() {
        let store = SnapshotStore::new(snapshot(1, "9.1.0.0/16\n"));
        let held = store.load();
        assert_eq!(held.generation, 1);

        let gen2 = store.claim_generation();
        let gen3 = store.claim_generation();
        assert_eq!((gen2, gen3), (2, 3));

        // Generation 3 finishes building first; 2 must then be refused.
        assert!(store.install(snapshot(gen3, "10.0.0.0/8\n")));
        assert!(!store.install(snapshot(gen2, "11.0.0.0/8\n")), "stale");
        assert_eq!(store.load().generation, 3);

        // The earlier load still answers from its own generation.
        assert_eq!(held.generation, 1);
        assert!(held.trie.contains("9.1.0.0".parse::<Ip>().expect("ip")));
    }
}
