//! A minimal readiness-polling wrapper and SO_REUSEPORT listener
//! factory — the few dozen lines of an event library the keep-alive
//! serve loop actually needs, bound directly against the platform libc
//! the process already links (the workspace is offline/vendored; no
//! `libc` crate, no async runtime).
//!
//! * On Linux, [`Poller`] is an `epoll(7)` instance (level-triggered; at
//!   the daemon's connection counts the edge/level distinction buys
//!   nothing and level is far harder to misuse).
//! * On other unix, the same API is backed by `poll(2)` over a
//!   maintained fd array.
//! * On non-unix platforms this module is absent; the server falls back
//!   to a blocking per-shard accept loop (see `server.rs`).
//!
//! [`shard_listeners`] produces one listening socket per shard: on
//! Linux, N independent SO_REUSEPORT sockets bound to the same address,
//! so the kernel load-balances accepts and the shards never contend on
//! one accept queue; elsewhere, clones of a single listener (accepts
//! then serialize in the kernel, which is still correct — just not
//! zero-contention).

#![allow(unsafe_code)]

use std::io;
use std::net::{SocketAddr, TcpListener};

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable (or peer-closed / errored — reads will resolve it).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    //! epoll(7) backend.
    use super::Event;
    use std::io;
    use std::os::raw::c_int;
    use std::os::unix::io::RawFd;

    const EPOLL_CLOEXEC: c_int = 0x8_0000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;

    /// `struct epoll_event`; packed on x86-64 (only there — the kernel
    /// ABI quirk), natural layout on other architectures.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// A level-triggered epoll instance.
    pub struct Poller {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscall; the result is checked.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn ctl(
            &mut self,
            op: c_int,
            fd: RawFd,
            token: u64,
            read: bool,
            write: bool,
        ) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: if read { EPOLLIN } else { 0 } | if write { EPOLLOUT } else { 0 },
                data: token,
            };
            // SAFETY: `ev` outlives the call; fd validity is the caller's
            // contract and errors surface as EBADF.
            if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(
            &mut self,
            fd: RawFd,
            token: u64,
            read: bool,
            write: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, read, write)
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, read, write)
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, false, false)
        }

        pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            events.clear();
            // SAFETY: the buffer pointer/capacity pair is valid for the
            // call; the kernel writes at most `len` entries and the
            // return value bounds how many we read back.
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as c_int,
                    timeout_ms,
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for ev in &self.buf[..n as usize] {
                // Copy out of the (possibly packed) struct before use.
                let (bits, data) = (ev.events, ev.data);
                events.push(Event {
                    token: data,
                    readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: closing the fd this type owns.
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    //! poll(2) backend for non-Linux unix.
    use super::Event;
    use std::io;
    use std::os::raw::{c_int, c_short, c_uint};
    use std::os::unix::io::RawFd;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_uint, timeout: c_int) -> c_int;
    }

    /// A maintained pollfd array with parallel tokens.
    pub struct Poller {
        fds: Vec<PollFd>,
        tokens: Vec<u64>,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                fds: Vec::new(),
                tokens: Vec::new(),
            })
        }

        fn events_bits(read: bool, write: bool) -> c_short {
            (if read { POLLIN } else { 0 }) | (if write { POLLOUT } else { 0 })
        }

        pub fn register(
            &mut self,
            fd: RawFd,
            token: u64,
            read: bool,
            write: bool,
        ) -> io::Result<()> {
            self.fds.push(PollFd {
                fd,
                events: Self::events_bits(read, write),
                revents: 0,
            });
            self.tokens.push(token);
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            for (slot, t) in self.fds.iter_mut().zip(&mut self.tokens) {
                if slot.fd == fd {
                    slot.events = Self::events_bits(read, write);
                    *t = token;
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            if let Some(i) = self.fds.iter().position(|s| s.fd == fd) {
                self.fds.swap_remove(i);
                self.tokens.swap_remove(i);
            }
            Ok(())
        }

        pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            events.clear();
            if self.fds.is_empty() {
                std::thread::sleep(std::time::Duration::from_millis(timeout_ms.max(0) as u64));
                return Ok(());
            }
            // SAFETY: the fd array is valid for the call and nfds matches
            // its length.
            let n = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as c_uint, timeout_ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for (slot, &token) in self.fds.iter().zip(&self.tokens) {
                let bits = slot.revents;
                if bits != 0 {
                    events.push(Event {
                        token,
                        readable: bits & (POLLIN | POLLERR | POLLHUP) != 0,
                        writable: bits & (POLLOUT | POLLERR | POLLHUP) != 0,
                    });
                }
            }
            Ok(())
        }
    }
}

pub use sys::Poller;

/// Build one listening socket per shard for `addr`.
///
/// Linux: N independent SO_REUSEPORT sockets (IPv4) — the kernel hashes
/// incoming connections across them, so each shard owns a private accept
/// queue. Port 0 is resolved by the first socket; the rest bind the
/// resolved port. Non-Linux (or IPv6, where this toy binder doesn't
/// reach): one socket cloned per shard.
pub fn shard_listeners(addr: &str, shards: usize) -> io::Result<(Vec<TcpListener>, SocketAddr)> {
    let shards = shards.max(1);
    let parsed: SocketAddr = addr
        .parse()
        .or_else(|_| {
            // Fall back to std's resolving bind for names like
            // "localhost:7000", then rebind by numeric address.
            TcpListener::bind(addr).and_then(|l| l.local_addr())
        })
        .map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("bad addr {addr:?}: {e}"),
            )
        })?;

    #[cfg(target_os = "linux")]
    if let SocketAddr::V4(v4) = parsed {
        let first = reuseport::bind(v4)?;
        let resolved = first.local_addr()?;
        let SocketAddr::V4(resolved_v4) = resolved else {
            unreachable!("bound v4 socket reports v4 addr");
        };
        let mut listeners = vec![first];
        for _ in 1..shards {
            listeners.push(reuseport::bind(resolved_v4)?);
        }
        return Ok((listeners, resolved));
    }

    let first = TcpListener::bind(parsed)?;
    let resolved = first.local_addr()?;
    let mut listeners = vec![first];
    for _ in 1..shards {
        listeners.push(listeners[0].try_clone()?);
    }
    Ok((listeners, resolved))
}

#[cfg(target_os = "linux")]
mod reuseport {
    //! Raw IPv4 SO_REUSEPORT socket construction.
    use std::io;
    use std::net::{SocketAddrV4, TcpListener};
    use std::os::raw::{c_int, c_void};
    use std::os::unix::io::FromRawFd;

    const AF_INET: c_int = 2;
    const SOCK_STREAM: c_int = 1;
    const SOCK_CLOEXEC: c_int = 0x8_0000;
    const SOL_SOCKET: c_int = 1;
    const SO_REUSEADDR: c_int = 2;
    const SO_REUSEPORT: c_int = 15;
    const BACKLOG: c_int = 1024;

    #[repr(C)]
    pub struct SockaddrIn {
        sin_family: u16,
        sin_port: u16, // network byte order
        sin_addr: u32, // network byte order
        sin_zero: [u8; 8],
    }

    mod c {
        use super::SockaddrIn;
        use std::os::raw::{c_int, c_void};

        extern "C" {
            pub fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
            pub fn setsockopt(
                fd: c_int,
                level: c_int,
                name: c_int,
                value: *const c_void,
                len: u32,
            ) -> c_int;
            pub fn bind(fd: c_int, addr: *const SockaddrIn, len: u32) -> c_int;
            pub fn listen(fd: c_int, backlog: c_int) -> c_int;
            pub fn close(fd: c_int) -> c_int;
        }
    }

    fn check(fd: c_int, ret: c_int) -> io::Result<()> {
        if ret < 0 {
            let e = io::Error::last_os_error();
            // SAFETY: fd came from socket() below and is still ours.
            unsafe {
                c::close(fd);
            }
            return Err(e);
        }
        Ok(())
    }

    pub fn bind(addr: SocketAddrV4) -> io::Result<TcpListener> {
        // SAFETY: each call is a plain syscall on a fd this function
        // owns; every return value is checked and the fd is closed on
        // any failure path.
        unsafe {
            let fd = c::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            let one: c_int = 1;
            let one_ptr = &one as *const c_int as *const c_void;
            let one_len = std::mem::size_of::<c_int>() as u32;
            check(
                fd,
                c::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, one_ptr, one_len),
            )?;
            check(
                fd,
                c::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, one_ptr, one_len),
            )?;
            let sa = SockaddrIn {
                sin_family: AF_INET as u16,
                sin_port: addr.port().to_be(),
                sin_addr: u32::from_be_bytes(addr.ip().octets()).to_be(),
                sin_zero: [0; 8],
            };
            check(
                fd,
                c::bind(fd, &sa, std::mem::size_of::<SockaddrIn>() as u32),
            )?;
            check(fd, c::listen(fd, BACKLOG))?;
            Ok(TcpListener::from_raw_fd(fd))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::os::unix::io::AsRawFd;

    #[test]
    fn poller_reports_listener_and_stream_readiness() {
        let (listeners, addr) = shard_listeners("127.0.0.1:0", 1).expect("bind");
        let listener = &listeners[0];
        listener.set_nonblocking(true).expect("nonblocking");
        let mut poller = Poller::new().expect("poller");
        poller
            .register(listener.as_raw_fd(), 7, true, false)
            .expect("register");

        let mut events = Vec::new();
        poller.wait(&mut events, 0).expect("wait");
        assert!(events.is_empty(), "nothing pending yet");

        let mut client = TcpStream::connect(addr).expect("connect");
        poller.wait(&mut events, 2000).expect("wait");
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "listener readable after connect: {events:?}"
        );

        let (mut server_side, _) = listener.accept().expect("accept");
        server_side.set_nonblocking(true).expect("nonblocking");
        poller
            .register(server_side.as_raw_fd(), 9, true, true)
            .expect("register conn");
        client.write_all(b"ping").expect("write");
        // Wait until the data is visible to the server socket.
        let mut saw_readable = false;
        for _ in 0..50 {
            poller.wait(&mut events, 100).expect("wait");
            if events.iter().any(|e| e.token == 9 && e.readable) {
                saw_readable = true;
                break;
            }
        }
        assert!(saw_readable, "conn readable after client write");
        let mut buf = [0u8; 8];
        let n = server_side.read(&mut buf).expect("read");
        assert_eq!(&buf[..n], b"ping");

        // Narrow interest to write-only: the poller must report writable.
        poller
            .modify(server_side.as_raw_fd(), 9, false, true)
            .expect("modify");
        poller.wait(&mut events, 2000).expect("wait");
        assert!(
            events.iter().any(|e| e.token == 9 && e.writable),
            "idle conn is writable: {events:?}"
        );
        poller.deregister(server_side.as_raw_fd()).expect("dereg");
    }

    #[test]
    fn reuseport_shards_share_one_port() {
        let (listeners, addr) = shard_listeners("127.0.0.1:0", 4).expect("bind");
        assert_eq!(listeners.len(), 4);
        for l in &listeners {
            assert_eq!(l.local_addr().expect("addr").port(), addr.port());
        }
        // A client connecting reaches exactly one of the shards.
        let client = TcpStream::connect(addr).expect("connect");
        let mut accepted = None;
        for l in &listeners {
            l.set_nonblocking(true).expect("nonblocking");
            if let Ok((s, _)) = l.accept() {
                accepted = Some(s);
                break;
            }
        }
        assert!(accepted.is_some(), "one shard accepted the connection");
        drop(client);
    }
}
