//! The daemon: N shard threads, each owning a listening socket
//! (SO_REUSEPORT on Linux — see [`crate::poll`]), a private epoll/poll
//! event loop, and the nonblocking keep-alive connections it accepted.
//! Lookups are answered from the current [`SnapshotStore`] generation.
//!
//! There is no async runtime: the workspace is offline/vendored and a
//! frozen-trie lookup is sub-microsecond, so the hot path is parse →
//! lookup → serialize on the shard's own thread, with no cross-thread
//! handoff. Requests parse incrementally off per-connection input
//! buffers ([`crate::http::parse_request`]), so HTTP/1.1 keep-alive and
//! pipelining cost nothing extra; responses accumulate in per-connection
//! output buffers flushed as the socket allows. Backpressure is
//! explicit at both ends: a shard past its connection share answers
//! `503` immediately (counted on `conns.dropped`) instead of queueing
//! unboundedly, and a connection whose output buffer passes the high
//! water mark stops being read until it drains.
//!
//! Endpoints (HTTP/1.0 close-per-request and HTTP/1.1 keep-alive both
//! honored):
//!
//! | endpoint | answer |
//! |---|---|
//! | `GET /lookup?ip=a.b.c.d` | JSON: blocked?, matched CIDR, prefix length, score, generation |
//! | `POST /batch` | newline-delimited IPs in, one text verdict per line out |
//! | `POST /batch-bin` | length-prefixed binary IPs in, one verdict byte each out (see below) |
//! | `GET /forecast?net=a.b.0.0/16&horizon=N` | JSON: predicted rate, CI, score half-life (404 unless `--forecast` artifact configured) |
//! | `GET /healthz` | `ok\|stale\|degraded generation=G age_secs=A` |
//! | `GET /snapshot` | JSON: generation, block count, build time, source |
//! | `GET /metrics` | Prometheus text exposition (`unclean_serve_*`) |
//! | `POST /reload` | rebuild the snapshot now; JSON: new generation |
//! | `POST /quit` | graceful shutdown: drain in-flight requests, then exit |
//!
//! **The binary batch protocol.** `POST /batch-bin` is the bulk path
//! for consumers that need millions of verdicts per second and do not
//! want to pay text formatting: the body is a `u32` big-endian count
//! followed by that many `u32` big-endian IPv4 addresses; the response
//! body is a `u32` BE serving generation, a `u32` BE count, then one
//! verdict byte per address (`0` = clean, else matched prefix length
//! plus one). With `?detail=1` the response appends one `u32` BE
//! matched CIDR base per address (`0` for clean) so clients can
//! reconstruct the full match without a text round-trip.
//!
//! **Degraded-mode serving.** A live deployment is fed by the ingest
//! daemon's rescore loop; if that loop stalls, the trie keeps answering
//! from the last good generation — availability is never sacrificed to
//! freshness. What changes is *honesty about staleness*: a watchdog
//! thread tracks the serving generation's age as the
//! `generation_age_secs` gauge, and `/healthz` reports `stale`
//! (200 — a warning) past `stale_after` and `degraded` (503 — take me
//! out of rotation) past `degraded_after`, while `/lookup` and `/batch`
//! answer normally throughout. With no thresholds configured the
//! daemon's health is always `ok`, as before.

use crate::http::{respond, write_response, Request, Version};
use crate::snapshot::{
    build_forecast_snapshot, build_snapshot, ForecastSnapshot, ForecastStore, ServeError,
    ServingSnapshot, SnapshotStore,
};
use serde::Serialize;
use std::fmt::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use unclean_core::prelude::Ip;
use unclean_telemetry::{
    chrome_trace_json, prom, Counter, Gauge, Histogram, MetricsHistory, Registry, TraceEvent,
    TraceKind, TraceRing,
};

#[cfg(unix)]
use crate::http::{parse_request, HttpError, Parse};
#[cfg(unix)]
use crate::poll;
#[cfg(unix)]
use std::collections::HashMap;
#[cfg(unix)]
use std::io::{Read as _, Write as _};
#[cfg(unix)]
use std::os::unix::io::AsRawFd;

/// Non-unix fallback for [`poll::shard_listeners`]: clones of one
/// blocking listener (the blocking per-shard accept loop uses them).
#[cfg(not(unix))]
mod poll {
    use std::io;
    use std::net::{SocketAddr, TcpListener};

    pub fn shard_listeners(
        addr: &str,
        shards: usize,
    ) -> io::Result<(Vec<TcpListener>, SocketAddr)> {
        let first = TcpListener::bind(addr)?;
        let resolved = first.local_addr()?;
        let mut listeners = vec![first];
        for _ in 1..shards.max(1) {
            listeners.push(listeners[0].try_clone()?);
        }
        Ok((listeners, resolved))
    }
}

/// Compile-time build identity for `unclean_serve_build_info` (the CI
/// build exports `UNCLEAN_GIT_SHA`; local builds say "unreleased").
const GIT_SHA: &str = match option_env!("UNCLEAN_GIT_SHA") {
    Some(sha) => sha,
    None => "unreleased",
};

fn unix_ms_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

/// Daemon configuration (the CLI's `unclean serve` flags map onto this).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The blocklist file to serve: plain or scored text, or a frozen
    /// snapshot written by `unclean blocklist freeze` (detected by
    /// magic), which is memory-mapped for O(1) start.
    pub source: PathBuf,
    /// An optional forecast artifact (written by `unclean forecast
    /// fit`); enables `GET /forecast`, hot-reloaded through the same
    /// watch/reload paths as the blocklist.
    pub forecast: Option<PathBuf>,
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Shard threads; each owns a listening socket and an event loop.
    pub threads: usize,
    /// Total concurrent-connection budget, split evenly across shards;
    /// connections beyond a shard's share get `503`.
    pub max_conns: usize,
    /// Per-connection idle timeout (keep-alive connections quiet for
    /// longer are closed; also the blocking-path socket read timeout).
    pub read_timeout: Duration,
    /// Poll interval for source-file changes (`None`: no watcher; reloads
    /// only via `POST /reload`).
    pub watch: Option<Duration>,
    /// Generation age past which `/healthz` answers `stale` (still 200).
    /// `None` disables staleness tracking in the health answer.
    pub stale_after: Option<Duration>,
    /// Generation age past which `/healthz` answers `degraded` with 503
    /// (lookups keep working from the last good generation).
    pub degraded_after: Option<Duration>,
    /// Head-sample one request in N for stage tracing (`0` disables
    /// request sampling entirely; unsampled requests pay one branch).
    pub trace_sample: u64,
    /// Trace-event ring capacity (`0`: no ring — `/trace` serves span
    /// aggregates only and reloads go unrecorded).
    pub trace_events: usize,
    /// Flight-recorder scrape cadence for `/metrics/history` (`None`
    /// disables the scraper thread and the endpoint answers 404).
    pub history_interval: Option<Duration>,
    /// Close a keep-alive connection after this many requests, so churn
    /// (and its metrics) cannot be starved by immortal connections.
    pub max_requests_per_conn: u64,
}

impl ServeConfig {
    /// Defaults: ephemeral localhost port, 4 shards, 1024 connections,
    /// 5 s idle timeout, no watcher; tracing ring installed (4096
    /// events) but request sampling off; flight recorder every 2 s.
    pub fn new(source: impl Into<PathBuf>) -> ServeConfig {
        ServeConfig {
            source: source.into(),
            forecast: None,
            addr: "127.0.0.1:0".to_string(),
            threads: 4,
            max_conns: 1024,
            read_timeout: Duration::from_secs(5),
            watch: None,
            stale_after: None,
            degraded_after: None,
            trace_sample: 0,
            trace_events: 4096,
            history_interval: Some(Duration::from_secs(2)),
            max_requests_per_conn: 100_000,
        }
    }
}

/// How many flight-recorder samples `/metrics/history` retains (at the
/// default 2 s cadence: ten minutes of rate history).
const HISTORY_SAMPLES: usize = 300;

/// The shard event loop's poll timeout: also the worst-case delay for a
/// shard to observe the shutdown flag without being woken.
#[cfg(unix)]
const POLL_TIMEOUT_MS: i32 = 100;

/// Event-loop token reserved for the shard's listener.
#[cfg(unix)]
const TOKEN_LISTENER: u64 = 0;

/// Stop reading a connection whose unflushed output passes this mark;
/// reads resume when the socket drains.
#[cfg(unix)]
const OUT_HIGH_WATER: usize = 1 << 20;

/// The three health states `/healthz` can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Generation fresh (or staleness tracking disabled).
    Ok,
    /// Generation older than `stale_after`; still serving, still 200.
    Stale,
    /// Generation older than `degraded_after`; serving continues but
    /// `/healthz` answers 503 so balancers rotate the instance out.
    Degraded,
}

impl Health {
    /// Classify a generation age against the configured thresholds.
    pub fn of(age: Duration, stale: Option<Duration>, degraded: Option<Duration>) -> Health {
        if degraded.is_some_and(|d| age >= d) {
            Health::Degraded
        } else if stale.is_some_and(|s| age >= s) {
            Health::Stale
        } else {
            Health::Ok
        }
    }

    /// The `/healthz` status word.
    pub fn as_str(self) -> &'static str {
        match self {
            Health::Ok => "ok",
            Health::Stale => "stale",
            Health::Degraded => "degraded",
        }
    }
}

/// Cached instrument handles — resolved once, recorded lock-free on the
/// hot path. All series are declared at startup so a clean run exports
/// explicit zeros (the CI gate asserts `conns.dropped == 0`).
#[derive(Clone)]
struct Metrics {
    requests: Counter,
    lookup: Counter,
    batch: Counter,
    batch_ips: Counter,
    batch_bin: Counter,
    batch_bin_ips: Counter,
    healthz: Counter,
    snapshot_req: Counter,
    metrics_req: Counter,
    reload_req: Counter,
    quit: Counter,
    blocked: Counter,
    clean: Counter,
    bad_request: Counter,
    not_found: Counter,
    accepted: Counter,
    dropped: Counter,
    read_errors: Counter,
    reloads: Counter,
    reload_errors: Counter,
    trace_req: Counter,
    history_req: Counter,
    sampled: Counter,
    forecast_req: Counter,
    forecast_hits: Counter,
    forecast_misses: Counter,
    forecast_bad_request: Counter,
    forecast_reloads: Counter,
    forecast_reload_errors: Counter,
    latency_micros: Histogram,
    stage_parse_ns: Histogram,
    stage_lookup_ns: Histogram,
    stage_write_ns: Histogram,
    generation: Gauge,
    entries: Gauge,
    generation_age_secs: Gauge,
    forecast_generation: Gauge,
    forecast_entries: Gauge,
    forecast_generation_age_secs: Gauge,
}

impl Metrics {
    fn new(registry: &Registry) -> Metrics {
        Metrics {
            requests: registry.counter("requests"),
            lookup: registry.counter("requests.lookup"),
            batch: registry.counter("requests.batch"),
            batch_ips: registry.counter("batch.ips"),
            batch_bin: registry.counter("requests.batch_bin"),
            batch_bin_ips: registry.counter("batch_bin.ips"),
            healthz: registry.counter("requests.healthz"),
            snapshot_req: registry.counter("requests.snapshot"),
            metrics_req: registry.counter("requests.metrics"),
            reload_req: registry.counter("requests.reload"),
            quit: registry.counter("requests.quit"),
            blocked: registry.counter("answers.blocked"),
            clean: registry.counter("answers.clean"),
            bad_request: registry.counter("responses.bad_request"),
            not_found: registry.counter("responses.not_found"),
            accepted: registry.counter("conns.accepted"),
            dropped: registry.counter("conns.dropped"),
            read_errors: registry.counter("conns.read_errors"),
            reloads: registry.counter("reload.count"),
            reload_errors: registry.counter("reload.errors"),
            trace_req: registry.counter("requests.trace"),
            history_req: registry.counter("requests.history"),
            sampled: registry.counter("trace.sampled_requests"),
            forecast_req: registry.counter("requests.forecast"),
            forecast_hits: registry.counter("forecast.hits"),
            forecast_misses: registry.counter("forecast.misses"),
            forecast_bad_request: registry.counter("forecast.bad_request"),
            forecast_reloads: registry.counter("forecast.reload.count"),
            forecast_reload_errors: registry.counter("forecast.reload.errors"),
            latency_micros: registry.histogram("request_micros"),
            stage_parse_ns: registry.histogram("stage_ns.parse"),
            stage_lookup_ns: registry.histogram("stage_ns.lookup"),
            stage_write_ns: registry.histogram("stage_ns.write"),
            generation: registry.gauge("snapshot.generation"),
            entries: registry.gauge("snapshot.entries"),
            generation_age_secs: registry.gauge("generation_age_secs"),
            forecast_generation: registry.gauge("forecast.generation"),
            forecast_entries: registry.gauge("forecast.entries"),
            forecast_generation_age_secs: registry.gauge("forecast_generation_age_secs"),
        }
    }
}

/// Forecast serving state, present only when `--forecast` points at an
/// artifact. The blocklist trio (store, watched source, rebuild lock) is
/// mirrored here so the forecast hot-reloads through exactly the same
/// generation discipline without perturbing blocklist serving.
struct ForecastShared {
    store: ForecastStore,
    source: PathBuf,
    rebuild_lock: Mutex<()>,
}

struct Shared {
    store: SnapshotStore,
    forecast: Option<ForecastShared>,
    registry: Registry,
    metrics: Metrics,
    shutdown: AtomicBool,
    source: PathBuf,
    addr: SocketAddr,
    read_timeout: Duration,
    rebuild_lock: Mutex<()>,
    stale_after: Option<Duration>,
    degraded_after: Option<Duration>,
    // Tracing: the ring Arc is cached here so sampled requests never pay
    // the registry's trace-slot mutex.
    trace: Option<Arc<TraceRing>>,
    sample_every: u64,
    sample_counter: AtomicU64,
    history: Option<Arc<MetricsHistory>>,
    history_interval: Duration,
    start_unix_secs: f64,
    max_requests_per_conn: u64,
}

impl Shared {
    /// The serving generation's age. Wall clocks can step backwards;
    /// a future-dated build reads as age zero rather than underflowing.
    fn generation_age(&self) -> Duration {
        let built_ms = self.store.load().built_unix_ms;
        let now_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        Duration::from_millis(now_ms.saturating_sub(built_ms))
    }

    /// Refresh the age gauge and classify against the thresholds.
    fn observe_health(&self) -> (Health, Duration) {
        let age = self.generation_age();
        self.metrics.generation_age_secs.set(age.as_secs_f64());
        if let Some(forecast) = &self.forecast {
            let built_ms = forecast.store.load().built_unix_ms;
            let forecast_age = Duration::from_millis(unix_ms_now().saturating_sub(built_ms));
            self.metrics
                .forecast_generation_age_secs
                .set(forecast_age.as_secs_f64());
        }
        (Health::of(age, self.stale_after, self.degraded_after), age)
    }
}

impl Shared {
    /// Rebuild from the source file and install. Serialized so concurrent
    /// `/reload`s and the watcher cannot install out of order; the build
    /// itself runs here, off every *other* shard's serving path.
    fn rebuild(&self) -> Result<Arc<ServingSnapshot>, ServeError> {
        let _guard = self.rebuild_lock.lock().expect("rebuild lock");
        let generation = self.store.claim_generation();
        match build_snapshot(&self.source, generation, &self.registry) {
            Ok(snapshot) => {
                self.metrics.reloads.inc();
                self.metrics.generation.set(snapshot.generation as f64);
                self.metrics.entries.set(snapshot.trie.len() as f64);
                self.record_reload_event(&snapshot);
                self.store.install(snapshot);
                Ok(self.store.load())
            }
            Err(e) => {
                self.metrics.reload_errors.inc();
                Err(e)
            }
        }
    }

    /// Record a [`TraceKind::Reload`] event carrying the serving
    /// generation and — when the source was published by `unclean
    /// ingest` — the upstream generation that links this reload into the
    /// producer's lineage.
    fn record_reload_event(&self, snapshot: &ServingSnapshot) {
        let Some(ring) = &self.trace else { return };
        let mut event = TraceEvent::now(TraceKind::Reload)
            .generation(snapshot.generation)
            .dur_ns(snapshot.build_micros.saturating_mul(1000))
            .field("entries", snapshot.trie.len())
            .field("source", &snapshot.source);
        if let Some(source_generation) = snapshot.source_generation {
            event = event.source_generation(source_generation);
        }
        ring.record(event);
    }

    /// Rebuild the forecast snapshot from its artifact and install, the
    /// forecast twin of [`Shared::rebuild`]. Returns `Ok(None)` when no
    /// forecast artifact is configured.
    fn rebuild_forecast(&self) -> Result<Option<Arc<ForecastSnapshot>>, ServeError> {
        let Some(forecast) = &self.forecast else {
            return Ok(None);
        };
        let _guard = forecast.rebuild_lock.lock().expect("forecast rebuild lock");
        let generation = forecast.store.claim_generation();
        match build_forecast_snapshot(&forecast.source, generation, &self.registry) {
            Ok(snapshot) => {
                self.metrics.forecast_reloads.inc();
                self.metrics
                    .forecast_generation
                    .set(snapshot.generation as f64);
                self.metrics
                    .forecast_entries
                    .set(snapshot.artifact.entries.len() as f64);
                self.record_forecast_reload_event(&snapshot);
                forecast.store.install(snapshot);
                Ok(Some(forecast.store.load()))
            }
            Err(e) => {
                self.metrics.forecast_reload_errors.inc();
                Err(e)
            }
        }
    }

    /// Record a [`TraceKind::Reload`] event for a forecast generation,
    /// tagged `artifact=forecast` so lineage walks can tell the two
    /// reload streams apart.
    fn record_forecast_reload_event(&self, snapshot: &ForecastSnapshot) {
        let Some(ring) = &self.trace else { return };
        let mut event = TraceEvent::now(TraceKind::Reload)
            .generation(snapshot.generation)
            .field("artifact", "forecast")
            .field("entries", snapshot.artifact.entries.len() as u64)
            .field("source", &snapshot.source);
        if let Some(source_generation) = snapshot.source_generation {
            event = event.source_generation(source_generation);
        }
        ring.record(event);
    }

    fn initiate_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Shards notice the flag within one poll timeout; a throwaway
        // connection wakes at least one immediately (with SO_REUSEPORT
        // the kernel picks which).
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(250));
    }
}

/// A running daemon. Dropping the handle does **not** stop it — call
/// [`Server::shutdown`] (or send `POST /quit` and [`Server::wait`]).
pub struct Server {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Build the boot snapshot, bind the shard listeners, and spawn the
    /// shard event loops and (optionally) the source-file watcher.
    pub fn start(config: ServeConfig, registry: Registry) -> Result<Server, ServeError> {
        let metrics = Metrics::new(&registry);
        let trace = if config.trace_events > 0 {
            registry.install_trace(config.trace_events)
        } else {
            None
        };
        let history = config
            .history_interval
            .map(|_| Arc::new(MetricsHistory::new(HISTORY_SAMPLES)));
        let boot = build_snapshot(&config.source, 1, &registry)?;
        metrics.generation.set(boot.generation as f64);
        metrics.entries.set(boot.trie.len() as f64);
        // Fail fast on a bad forecast artifact: a daemon started with
        // `--forecast` should not come up silently forecast-less.
        let forecast = match &config.forecast {
            Some(source) => {
                let boot_forecast = build_forecast_snapshot(source, 1, &registry)?;
                metrics.forecast_generation.set(1.0);
                metrics
                    .forecast_entries
                    .set(boot_forecast.artifact.entries.len() as f64);
                Some(ForecastShared {
                    store: ForecastStore::new(boot_forecast),
                    source: source.clone(),
                    rebuild_lock: Mutex::new(()),
                })
            }
            None => None,
        };
        let shards = config.threads.max(1);
        let (listeners, addr) = poll::shard_listeners(&config.addr, shards)?;
        let conn_limit = (config.max_conns.max(1) / listeners.len()).max(1);
        let shared = Arc::new(Shared {
            store: SnapshotStore::new(boot),
            forecast,
            registry,
            metrics,
            shutdown: AtomicBool::new(false),
            source: config.source.clone(),
            addr,
            read_timeout: config.read_timeout,
            rebuild_lock: Mutex::new(()),
            stale_after: config.stale_after,
            degraded_after: config.degraded_after,
            trace,
            sample_every: config.trace_sample,
            sample_counter: AtomicU64::new(0),
            history,
            history_interval: config.history_interval.unwrap_or(Duration::from_secs(2)),
            start_unix_secs: unix_ms_now() as f64 / 1000.0,
            max_requests_per_conn: config.max_requests_per_conn.max(1),
        });
        // The boot build is generation 1's "reload": record it so a
        // lookup served before any watcher/reload fires still has a
        // reload event to chain through.
        shared.record_reload_event(&shared.store.load());
        if let Some(forecast) = &shared.forecast {
            shared.record_forecast_reload_event(&forecast.store.load());
        }

        let mut threads = Vec::with_capacity(listeners.len() + 3);
        for (i, listener) in listeners.into_iter().enumerate() {
            let shared_n = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-shard-{i}"))
                    .spawn(move || shard_loop(&shared_n, listener, conn_limit))
                    .map_err(ServeError::Io)?,
            );
        }
        {
            // The staleness watchdog: keeps `generation_age_secs` fresh in
            // `/metrics` even when nobody polls `/healthz`.
            let shared_h = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-health".to_string())
                    .spawn(move || watchdog_loop(&shared_h))
                    .map_err(ServeError::Io)?,
            );
        }
        if shared.history.is_some() {
            // The flight recorder: periodic snapshot deltas for
            // `/metrics/history` and `unclean top`.
            let shared_f = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-history".to_string())
                    .spawn(move || history_loop(&shared_f))
                    .map_err(ServeError::Io)?,
            );
        }
        if let Some(interval) = config.watch {
            let shared_w = Arc::clone(&shared);
            // Fingerprint the source *before* returning, so an edit made
            // the instant the server is up is still seen as a change.
            let baseline = std::fs::metadata(&config.source)
                .ok()
                .map(|m| fingerprint(&m));
            let source = config.source.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("serve-watch".to_string())
                    .spawn(move || {
                        watcher_loop(&shared_w, interval, baseline, &source, |s| {
                            let _ = s.rebuild();
                        })
                    })
                    .map_err(ServeError::Io)?,
            );
            if let Some(forecast_source) = config.forecast.clone() {
                let shared_fw = Arc::clone(&shared);
                let baseline = std::fs::metadata(&forecast_source)
                    .ok()
                    .map(|m| fingerprint(&m));
                threads.push(
                    std::thread::Builder::new()
                        .name("serve-watch-forecast".to_string())
                        .spawn(move || {
                            watcher_loop(&shared_fw, interval, baseline, &forecast_source, |s| {
                                let _ = s.rebuild_forecast();
                            })
                        })
                        .map_err(ServeError::Io)?,
                );
            }
        }
        Ok(Server { shared, threads })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The telemetry registry the daemon records into.
    pub fn registry(&self) -> &Registry {
        &self.shared.registry
    }

    /// The currently served generation number.
    pub fn generation(&self) -> u64 {
        self.shared.store.load().generation
    }

    /// The currently served forecast generation, when a forecast artifact
    /// is configured.
    pub fn forecast_generation(&self) -> Option<u64> {
        self.shared
            .forecast
            .as_ref()
            .map(|f| f.store.load().generation)
    }

    /// Force a rebuild from the source file; returns the new generation.
    pub fn reload(&self) -> Result<u64, ServeError> {
        self.shared.rebuild().map(|s| s.generation)
    }

    /// Initiate graceful shutdown and wait: stop accepting, flush
    /// buffered responses, join every thread.
    pub fn shutdown(self) {
        self.shared.initiate_shutdown();
        self.wait();
    }

    /// Wait for the daemon to stop (e.g. a client sent `POST /quit`).
    /// In-flight requests finish before this returns.
    pub fn wait(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Per-request stage timings collected only on head-sampled requests.
/// The unsampled hot path never constructs one — it pays a single
/// `sample_every > 0` branch plus one relaxed counter increment.
struct StageTrace {
    parse_ns: u64,
    lookup_ns: u64,
    write_ns: u64,
    generation: u64,
    source_generation: Option<u64>,
}

fn elapsed_ns(t0: Instant) -> u64 {
    t0.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// One routed response, produced by [`route`] and serialized by
/// [`dispatch`] into the connection's output buffer.
struct Response {
    status: u16,
    reason: &'static str,
    content_type: &'static str,
    body: Vec<u8>,
    /// `POST /quit` sets this: serialize the ack, then shut down.
    quit: bool,
}

impl Response {
    fn text(status: u16, reason: &'static str, body: impl Into<Vec<u8>>) -> Response {
        Response {
            status,
            reason,
            content_type: "text/plain",
            body: body.into(),
            quit: false,
        }
    }

    fn ok_with(content_type: &'static str, body: Vec<u8>) -> Response {
        Response {
            status: 200,
            reason: "OK",
            content_type,
            body,
            quit: false,
        }
    }

    fn json<T: Serialize>(value: &T) -> Response {
        match serde_json::to_string(value) {
            Ok(body) => Response::ok_with("application/json", body.into_bytes()),
            Err(e) => Response::text(500, "Internal Server Error", format!("serialize: {e}\n")),
        }
    }
}

/// What [`dispatch`] tells the connection driver.
struct DispatchOutcome {
    /// Keep the connection open for the next request.
    keep_alive: bool,
    /// The request was `POST /quit`; shutdown has been initiated.
    quit: bool,
}

/// Route one parsed request and serialize its response into `out`.
/// This is the whole per-request hot path: metrics, optional stage
/// sampling, routing, serialization, latency accounting.
fn dispatch(
    shared: &Shared,
    request: &Request,
    parse_ns: u64,
    out: &mut Vec<u8>,
) -> DispatchOutcome {
    shared.metrics.requests.inc();
    let t0 = Instant::now();
    // Head-sampling: 1 request in N, decided on a relaxed shared
    // counter, whatever the request turns out to ask for.
    let sampled = shared.sample_every > 0
        && shared
            .sample_counter
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(shared.sample_every);
    let (response, keep_alive);
    if sampled {
        let mut stages = StageTrace {
            parse_ns,
            lookup_ns: 0,
            write_ns: 0,
            generation: 0,
            source_generation: None,
        };
        let r = route(shared, request, Some(&mut stages));
        keep_alive = request.keep_alive && !r.quit;
        let t_write = Instant::now();
        write_response(
            out,
            request.version,
            r.status,
            r.reason,
            r.content_type,
            keep_alive,
            &r.body,
        );
        stages.write_ns = elapsed_ns(t_write);
        record_sampled_request(shared, request, &stages, parse_ns + elapsed_ns(t0));
        response = r;
    } else {
        let r = route(shared, request, None);
        keep_alive = request.keep_alive && !r.quit;
        write_response(
            out,
            request.version,
            r.status,
            r.reason,
            r.content_type,
            keep_alive,
            &r.body,
        );
        response = r;
    }
    shared
        .metrics
        .latency_micros
        .record((parse_ns + elapsed_ns(t0)) / 1000);
    if response.quit {
        shared.initiate_shutdown();
    }
    DispatchOutcome {
        keep_alive,
        quit: response.quit,
    }
}

/// Book a sampled request into the per-stage histograms and the trace
/// ring (a [`TraceKind::Lookup`] event whose generation ids chain the
/// request back to the ingest lineage).
fn record_sampled_request(shared: &Shared, request: &Request, stages: &StageTrace, total_ns: u64) {
    shared.metrics.sampled.inc();
    shared.metrics.stage_parse_ns.record(stages.parse_ns);
    shared.metrics.stage_lookup_ns.record(stages.lookup_ns);
    shared.metrics.stage_write_ns.record(stages.write_ns);
    let Some(ring) = &shared.trace else { return };
    let mut event = TraceEvent::now(TraceKind::Lookup)
        .dur_ns(total_ns)
        .field("path", &request.path)
        .field("parse_ns", stages.parse_ns)
        .field("lookup_ns", stages.lookup_ns)
        .field("write_ns", stages.write_ns);
    if stages.generation > 0 {
        event = event.generation(stages.generation);
    }
    if let Some(source_generation) = stages.source_generation {
        event = event.source_generation(source_generation);
    }
    ring.record(event);
}

#[derive(Serialize)]
struct LookupAnswer {
    ip: String,
    blocked: bool,
    cidr: Option<String>,
    n: Option<u8>,
    score: Option<f64>,
    generation: u64,
}

#[derive(Serialize)]
struct SnapshotAnswer {
    generation: u64,
    entries: usize,
    source: String,
    build_micros: u64,
    built_unix_ms: u64,
    memory_bytes: usize,
    source_generation: Option<u64>,
    source_published_unix_ms: Option<u64>,
    forecast_generation: Option<u64>,
    forecast_entries: Option<usize>,
    forecast_source: Option<String>,
    forecast_source_generation: Option<u64>,
}

#[derive(Serialize)]
struct ReloadAnswer {
    generation: u64,
    entries: usize,
    forecast_generation: Option<u64>,
    forecast_entries: Option<usize>,
}

#[derive(Serialize)]
struct ForecastAnswer {
    net: String,
    known: bool,
    horizon_days: u32,
    predicted_rate: f64,
    ci_low: f64,
    ci_high: f64,
    score_half_life: f64,
    generation: u64,
    source_generation: Option<u64>,
}

#[derive(Serialize)]
struct TraceAnswer {
    events: Vec<TraceEvent>,
}

#[derive(Serialize)]
struct HistoryAnswer {
    interval_secs: f64,
    samples: Vec<unclean_telemetry::HistorySample>,
}

fn route(shared: &Shared, request: &Request, trace: Option<&mut StageTrace>) -> Response {
    let metrics = &shared.metrics;
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            metrics.healthz.inc();
            let (health, age) = shared.observe_health();
            let generation = shared.store.load().generation;
            let body = format!(
                "{} generation={generation} age_secs={}\n",
                health.as_str(),
                age.as_secs()
            );
            let (code, reason) = match health {
                Health::Ok | Health::Stale => (200, "OK"),
                Health::Degraded => (503, "Service Unavailable"),
            };
            Response::text(code, reason, body)
        }
        ("GET", "/lookup") => {
            metrics.lookup.inc();
            let Some(raw_ip) = request.query_param("ip") else {
                metrics.bad_request.inc();
                return Response::text(400, "Bad Request", "missing ip= query parameter\n");
            };
            let Ok(ip) = raw_ip.parse::<Ip>() else {
                metrics.bad_request.inc();
                return Response::text(400, "Bad Request", format!("unparseable ip {raw_ip:?}\n"));
            };
            let t_lookup = trace.as_ref().map(|_| Instant::now());
            let snapshot = shared.store.load();
            let answer = match snapshot.trie.lookup(ip) {
                Some(m) => {
                    metrics.blocked.inc();
                    LookupAnswer {
                        ip: ip.to_string(),
                        blocked: true,
                        cidr: Some(m.cidr.to_string()),
                        n: Some(m.cidr.len()),
                        score: Some(m.score),
                        generation: snapshot.generation,
                    }
                }
                None => {
                    metrics.clean.inc();
                    LookupAnswer {
                        ip: ip.to_string(),
                        blocked: false,
                        cidr: None,
                        n: None,
                        score: None,
                        generation: snapshot.generation,
                    }
                }
            };
            if let (Some(stages), Some(t_lookup)) = (trace, t_lookup) {
                stages.lookup_ns = elapsed_ns(t_lookup);
                stages.generation = snapshot.generation;
                stages.source_generation = snapshot.source_generation;
            }
            Response::json(&answer)
        }
        ("GET", "/forecast") => {
            metrics.forecast_req.inc();
            let Some(forecast) = &shared.forecast else {
                metrics.not_found.inc();
                return Response::text(
                    404,
                    "Not Found",
                    "no forecast artifact configured (start with --forecast)\n",
                );
            };
            // `net=` takes a /16 CIDR or a bare address; `ip=` is an
            // alias so loadgen can reuse its lookup address stream.
            let raw_net = request
                .query_param("net")
                .or_else(|| request.query_param("ip"));
            let Some(raw_net) = raw_net else {
                metrics.forecast_bad_request.inc();
                metrics.bad_request.inc();
                return Response::text(
                    400,
                    "Bad Request",
                    "missing net= (a.b.0.0/16 or bare address) query parameter\n",
                );
            };
            let prefix16 = if raw_net.contains('/') {
                match raw_net.parse::<unclean_core::Cidr>() {
                    Ok(cidr) if cidr.len() == 16 => Some(cidr.base().raw() >> 16),
                    _ => None,
                }
            } else {
                raw_net.parse::<Ip>().ok().map(|ip| ip.raw() >> 16)
            };
            let Some(prefix16) = prefix16 else {
                metrics.forecast_bad_request.inc();
                metrics.bad_request.inc();
                return Response::text(
                    400,
                    "Bad Request",
                    format!("net {raw_net:?} is not a /16 or an address\n"),
                );
            };
            let snapshot = forecast.store.load();
            let horizon = match request.query_param("horizon") {
                None => snapshot.artifact.horizon_days,
                Some(h) => match h.parse::<u32>() {
                    Ok(h) if (1..=365).contains(&h) => h,
                    _ => {
                        metrics.forecast_bad_request.inc();
                        metrics.bad_request.inc();
                        return Response::text(
                            400,
                            "Bad Request",
                            format!("horizon {h:?} is not in 1..=365\n"),
                        );
                    }
                },
            };
            let net = format!("{}.{}.0.0/16", prefix16 >> 8, prefix16 & 0xFF);
            let answer = match snapshot.artifact.lookup(prefix16) {
                Some(e) => {
                    metrics.forecast_hits.inc();
                    let (ci_low, ci_high) = e.ci_at(horizon, snapshot.artifact.ci_z);
                    ForecastAnswer {
                        net,
                        known: true,
                        horizon_days: horizon,
                        predicted_rate: e.rate_at(horizon),
                        ci_low,
                        ci_high,
                        score_half_life: e.score_half_life,
                        generation: snapshot.generation,
                        source_generation: snapshot.source_generation,
                    }
                }
                None => {
                    metrics.forecast_misses.inc();
                    ForecastAnswer {
                        net,
                        known: false,
                        horizon_days: horizon,
                        predicted_rate: 0.0,
                        ci_low: 0.0,
                        ci_high: 0.0,
                        score_half_life: 0.0,
                        generation: snapshot.generation,
                        source_generation: snapshot.source_generation,
                    }
                }
            };
            Response::json(&answer)
        }
        ("POST", "/batch") => {
            metrics.batch.inc();
            let body = String::from_utf8_lossy(&request.body);
            let t_lookup = trace.as_ref().map(|_| Instant::now());
            let snapshot = shared.store.load();
            let mut out = String::new();
            let mut ips = 0u64;
            for line in body.lines() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                ips += 1;
                match line.parse::<Ip>() {
                    Ok(ip) => match snapshot.trie.lookup(ip) {
                        Some(m) => {
                            metrics.blocked.inc();
                            let _ = writeln!(
                                out,
                                "{ip} blocked {} {} {}",
                                m.cidr,
                                m.cidr.len(),
                                m.score
                            );
                        }
                        None => {
                            metrics.clean.inc();
                            let _ = writeln!(out, "{ip} clean");
                        }
                    },
                    Err(_) => {
                        let _ = writeln!(out, "{line} error");
                    }
                }
            }
            metrics.batch_ips.add(ips);
            if let (Some(stages), Some(t_lookup)) = (trace, t_lookup) {
                stages.lookup_ns = elapsed_ns(t_lookup);
                stages.generation = snapshot.generation;
                stages.source_generation = snapshot.source_generation;
            }
            Response::text(200, "OK", out.into_bytes())
        }
        ("POST", "/batch-bin") => {
            metrics.batch_bin.inc();
            let body = &request.body;
            if body.len() < 4 {
                metrics.bad_request.inc();
                return Response::text(
                    400,
                    "Bad Request",
                    "binary batch body shorter than its count prefix\n",
                );
            }
            let count = u32::from_be_bytes([body[0], body[1], body[2], body[3]]) as usize;
            if body.len() != 4 + count * 4 {
                metrics.bad_request.inc();
                return Response::text(
                    400,
                    "Bad Request",
                    format!(
                        "binary batch length mismatch: count={count} wants {} body bytes, got {}\n",
                        4 + count * 4,
                        body.len()
                    ),
                );
            }
            let detail = request.query_param("detail") == Some("1");
            let t_lookup = trace.as_ref().map(|_| Instant::now());
            let snapshot = shared.store.load();
            let mut out = Vec::with_capacity(8 + count + if detail { 4 * count } else { 0 });
            out.extend_from_slice(&(snapshot.generation.min(u32::MAX as u64) as u32).to_be_bytes());
            out.extend_from_slice(&(count as u32).to_be_bytes());
            let mut bases: Vec<u8> = if detail {
                Vec::with_capacity(4 * count)
            } else {
                Vec::new()
            };
            let (mut blocked, mut clean) = (0u64, 0u64);
            for i in 0..count {
                let off = 4 + i * 4;
                let raw =
                    u32::from_be_bytes([body[off], body[off + 1], body[off + 2], body[off + 3]]);
                match snapshot.trie.lookup(Ip(raw)) {
                    Some(m) => {
                        blocked += 1;
                        out.push(m.cidr.len() + 1);
                        if detail {
                            bases.extend_from_slice(&m.cidr.base().raw().to_be_bytes());
                        }
                    }
                    None => {
                        clean += 1;
                        out.push(0);
                        if detail {
                            bases.extend_from_slice(&0u32.to_be_bytes());
                        }
                    }
                }
            }
            out.extend_from_slice(&bases);
            metrics.batch_bin_ips.add(count as u64);
            metrics.blocked.add(blocked);
            metrics.clean.add(clean);
            if let (Some(stages), Some(t_lookup)) = (trace, t_lookup) {
                stages.lookup_ns = elapsed_ns(t_lookup);
                stages.generation = snapshot.generation;
                stages.source_generation = snapshot.source_generation;
            }
            Response::ok_with("application/octet-stream", out)
        }
        ("GET", "/snapshot") => {
            metrics.snapshot_req.inc();
            let snapshot = shared.store.load();
            let forecast = shared.forecast.as_ref().map(|f| f.store.load());
            Response::json(&SnapshotAnswer {
                generation: snapshot.generation,
                entries: snapshot.trie.len(),
                source: snapshot.source.clone(),
                build_micros: snapshot.build_micros,
                built_unix_ms: snapshot.built_unix_ms,
                memory_bytes: snapshot.trie.memory_bytes(),
                source_generation: snapshot.source_generation,
                source_published_unix_ms: snapshot.source_published_unix_ms,
                forecast_generation: forecast.as_ref().map(|f| f.generation),
                forecast_entries: forecast.as_ref().map(|f| f.artifact.entries.len()),
                forecast_source: forecast.as_ref().map(|f| f.source.clone()),
                forecast_source_generation: forecast.as_ref().and_then(|f| f.source_generation),
            })
        }
        ("GET", "/metrics") => {
            metrics.metrics_req.inc();
            let mut text = prom::render(&shared.registry.snapshot(), "unclean_serve");
            text.push_str(&prom::build_info(
                "unclean_serve",
                env!("CARGO_PKG_VERSION"),
                GIT_SHA,
                shared.start_unix_secs,
            ));
            Response {
                status: 200,
                reason: "OK",
                content_type: "text/plain; version=0.0.4",
                body: text.into_bytes(),
                quit: false,
            }
        }
        ("GET", "/trace") => {
            metrics.trace_req.inc();
            let events = shared
                .trace
                .as_ref()
                .map(|ring| ring.events())
                .unwrap_or_default();
            if request.query_param("format") == Some("events") {
                // Machine-readable raw events (the e2e lineage walkers
                // deserialize these directly).
                Response::json(&TraceAnswer { events })
            } else {
                let body = chrome_trace_json(&shared.registry.snapshot(), &events, "unclean-serve");
                Response::ok_with("application/json", body.into_bytes())
            }
        }
        ("GET", "/metrics/history") => {
            metrics.history_req.inc();
            match &shared.history {
                Some(history) => Response::json(&HistoryAnswer {
                    interval_secs: shared.history_interval.as_secs_f64(),
                    samples: history.samples(),
                }),
                None => Response::text(404, "Not Found", "flight recorder disabled\n"),
            }
        }
        ("POST", "/reload") => {
            metrics.reload_req.inc();
            match shared.rebuild() {
                Ok(snapshot) => {
                    // The forecast rebuild rides along; a failure keeps
                    // serving the old forecast generation (counted on
                    // forecast.reload.errors) and reports null here.
                    let forecast = shared.rebuild_forecast().ok().flatten();
                    Response::json(&ReloadAnswer {
                        generation: snapshot.generation,
                        entries: snapshot.trie.len(),
                        forecast_generation: forecast.as_ref().map(|f| f.generation),
                        forecast_entries: forecast.as_ref().map(|f| f.artifact.entries.len()),
                    })
                }
                Err(e) => Response::text(
                    500,
                    "Internal Server Error",
                    format!("reload failed: {e}\n"),
                ),
            }
        }
        ("POST", "/quit") => {
            metrics.quit.inc();
            let mut response = Response::text(200, "OK", "shutting down\n");
            response.quit = true;
            response
        }
        _ => {
            metrics.not_found.inc();
            Response::text(
                404,
                "Not Found",
                format!("no such endpoint: {} {}\n", request.method, request.path),
            )
        }
    }
}

/// One nonblocking keep-alive connection owned by a shard event loop.
#[cfg(unix)]
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet parsed into requests.
    in_buf: Vec<u8>,
    /// Serialized responses not yet accepted by the socket.
    out: Vec<u8>,
    /// How much of `out` has been written already.
    out_pos: usize,
    /// Requests answered on this connection.
    served: u64,
    last_active: Instant,
    /// Stop parsing; close once `out` drains (HTTP/1.0, `Connection:
    /// close`, per-conn request cap, parse error, or shutdown).
    close_after_flush: bool,
    /// Peer sent EOF (or the socket errored); no more reads.
    peer_closed: bool,
    /// Registered (read, write) interest, to skip no-op `modify` calls.
    interest: (bool, bool),
}

#[cfg(unix)]
impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            in_buf: Vec::new(),
            out: Vec::with_capacity(1024),
            out_pos: 0,
            served: 0,
            last_active: Instant::now(),
            close_after_flush: false,
            peer_closed: false,
            interest: (true, false),
        }
    }

    fn pending_out(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// Drain the socket's receive buffer into `in_buf` (level-triggered
    /// readiness: read until `WouldBlock` or EOF).
    fn read_some(&mut self, shared: &Shared) {
        let mut chunk = [0u8; 16 << 10];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    self.in_buf.extend_from_slice(&chunk[..n]);
                    self.last_active = Instant::now();
                    if n < chunk.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    shared.metrics.read_errors.inc();
                    self.peer_closed = true;
                    self.close_after_flush = true;
                    break;
                }
            }
        }
    }

    /// Parse and dispatch every complete request buffered so far,
    /// stopping at the output high-water mark. Returns whether anything
    /// was dispatched (callers loop process→flush until quiescent, so a
    /// drained socket can unblock further pipelined parsing).
    fn process(&mut self, shared: &Shared) -> bool {
        let mut consumed = 0usize;
        let mut progressed = false;
        while !self.close_after_flush && self.pending_out() < OUT_HIGH_WATER {
            let t0 = Instant::now();
            match parse_request(&self.in_buf[consumed..]) {
                Ok(Parse::Complete(request, used)) => {
                    consumed += used;
                    let parse_ns = elapsed_ns(t0);
                    let outcome = dispatch(shared, &request, parse_ns, &mut self.out);
                    self.served += 1;
                    self.last_active = Instant::now();
                    progressed = true;
                    if !outcome.keep_alive
                        || outcome.quit
                        || self.served >= shared.max_requests_per_conn
                    {
                        self.close_after_flush = true;
                    }
                }
                Ok(Parse::Partial) => {
                    if self.peer_closed && self.in_buf.len() > consumed {
                        // EOF mid-request: the blocking reader called this
                        // a read error; keep the accounting. (EOF on an
                        // *empty* buffer is just a clean close.)
                        shared.metrics.read_errors.inc();
                        self.close_after_flush = true;
                    }
                    break;
                }
                Err(e) => {
                    // Byte boundaries are lost; answer and close. 505
                    // only for a well-formed line naming a version we
                    // genuinely do not speak.
                    shared.metrics.read_errors.inc();
                    let (status, reason) = match &e {
                        HttpError::UnsupportedVersion(_) => (505, "HTTP Version Not Supported"),
                        _ => (400, "Bad Request"),
                    };
                    write_response(
                        &mut self.out,
                        Version::Http10,
                        status,
                        reason,
                        "text/plain",
                        false,
                        format!("bad request: {e}\n").as_bytes(),
                    );
                    self.close_after_flush = true;
                    progressed = true;
                    break;
                }
            }
        }
        if consumed > 0 {
            self.in_buf.drain(..consumed);
        }
        progressed
    }

    /// Push buffered output at the socket until it blocks or drains.
    fn flush(&mut self) {
        while self.pending_out() > 0 {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    self.peer_closed = true;
                    self.out_pos = self.out.len();
                    break;
                }
                Ok(n) => {
                    self.out_pos += n;
                    self.last_active = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.peer_closed = true;
                    self.out_pos = self.out.len();
                    break;
                }
            }
        }
        if self.pending_out() == 0 && !self.out.is_empty() {
            self.out.clear();
            self.out_pos = 0;
        }
    }

    /// Loop process→flush until quiescent: flushing can free output
    /// space that unblocks parsing of further pipelined requests.
    fn drive(&mut self, shared: &Shared) {
        loop {
            let progressed = self.process(shared);
            self.flush();
            if !progressed {
                break;
            }
        }
    }

    /// Whether the event loop should retire this connection.
    fn finished(&self) -> bool {
        (self.close_after_flush || self.peer_closed) && self.pending_out() == 0
    }

    /// The (read, write) interest matching the current buffer state.
    fn wanted_interest(&self) -> (bool, bool) {
        (
            !self.close_after_flush && !self.peer_closed && self.pending_out() < OUT_HIGH_WATER,
            self.pending_out() > 0,
        )
    }
}

/// One shard: a nonblocking listener plus every connection it accepted,
/// multiplexed on a private [`poll::Poller`].
#[cfg(unix)]
fn shard_loop(shared: &Shared, listener: TcpListener, conn_limit: usize) {
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    let Ok(mut poller) = poll::Poller::new() else {
        return;
    };
    if poller
        .register(listener.as_raw_fd(), TOKEN_LISTENER, true, false)
        .is_err()
    {
        return;
    }
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = TOKEN_LISTENER + 1;
    let mut events = Vec::new();
    let mut last_sweep = Instant::now();
    while !shared.shutdown.load(Ordering::SeqCst) {
        if poller.wait(&mut events, POLL_TIMEOUT_MS).is_err() {
            break;
        }
        for &event in &events {
            if event.token == TOKEN_LISTENER {
                accept_new(
                    shared,
                    &listener,
                    &mut poller,
                    &mut conns,
                    &mut next_token,
                    conn_limit,
                );
                continue;
            }
            let Some(conn) = conns.get_mut(&event.token) else {
                continue;
            };
            if event.readable {
                conn.read_some(shared);
            }
            conn.drive(shared);
            if conn.finished() {
                let fd = conn.stream.as_raw_fd();
                let _ = poller.deregister(fd);
                conns.remove(&event.token);
            } else {
                let wanted = conn.wanted_interest();
                if wanted != conn.interest {
                    conn.interest = wanted;
                    let fd = conn.stream.as_raw_fd();
                    let _ = poller.modify(fd, event.token, wanted.0, wanted.1);
                }
            }
        }
        // Idle sweep: retire keep-alive connections quiet past the
        // configured timeout.
        if last_sweep.elapsed() >= Duration::from_millis(500) {
            last_sweep = Instant::now();
            let now = Instant::now();
            let idle: Vec<u64> = conns
                .iter()
                .filter(|(_, c)| now.duration_since(c.last_active) > shared.read_timeout)
                .map(|(t, _)| *t)
                .collect();
            for token in idle {
                if let Some(conn) = conns.remove(&token) {
                    let _ = poller.deregister(conn.stream.as_raw_fd());
                }
            }
        }
    }
    // Graceful exit: deliver whatever is already serialized (notably the
    // `POST /quit` ack) with a short blocking flush, then drop.
    for (_, mut conn) in conns {
        let _ = poller.deregister(conn.stream.as_raw_fd());
        if conn.pending_out() > 0 {
            let _ = conn.stream.set_nonblocking(false);
            let _ = conn
                .stream
                .set_write_timeout(Some(Duration::from_millis(250)));
            let _ = conn.stream.write_all(&conn.out[conn.out_pos..]);
        }
    }
}

/// Accept everything pending on the shard's listener. Beyond the
/// shard's connection share, answer `503` immediately (explicit
/// backpressure, counted on `conns.dropped`) instead of queueing.
#[cfg(unix)]
fn accept_new(
    shared: &Shared,
    listener: &TcpListener,
    poller: &mut poll::Poller,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    conn_limit: usize,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.metrics.accepted.inc();
                if conns.len() >= conn_limit {
                    shared.metrics.dropped.inc();
                    let mut stream = stream;
                    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
                    let _ = respond(
                        &mut stream,
                        503,
                        "Service Unavailable",
                        "text/plain",
                        b"overloaded\n",
                    );
                    continue;
                }
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let token = *next_token;
                *next_token += 1;
                if poller
                    .register(stream.as_raw_fd(), token, true, false)
                    .is_err()
                {
                    continue;
                }
                conns.insert(token, Conn::new(stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Non-unix fallback: a blocking accept loop per shard, one connection
/// served at a time (keep-alive still honored on that connection).
#[cfg(not(unix))]
fn shard_loop(shared: &Shared, listener: TcpListener, _conn_limit: usize) {
    let _ = listener.set_nonblocking(true);
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                shared.metrics.accepted.inc();
                let _ = stream.set_nonblocking(false);
                serve_conn_blocking(shared, &mut stream);
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

#[cfg(not(unix))]
fn serve_conn_blocking(shared: &Shared, stream: &mut TcpStream) {
    use std::io::Write as _;
    let _ = stream.set_read_timeout(Some(shared.read_timeout));
    let _ = stream.set_write_timeout(Some(shared.read_timeout));
    let mut served = 0u64;
    loop {
        let t0 = Instant::now();
        match crate::http::read_request(stream) {
            Ok(request) => {
                let mut out = Vec::with_capacity(256);
                let outcome = dispatch(shared, &request, elapsed_ns(t0), &mut out);
                if stream.write_all(&out).is_err() {
                    break;
                }
                served += 1;
                if !outcome.keep_alive || outcome.quit || served >= shared.max_requests_per_conn {
                    break;
                }
            }
            Err(e) => {
                // EOF before any bytes of a follow-up request is a clean
                // keep-alive close, not an error.
                if e.kind() != std::io::ErrorKind::UnexpectedEof {
                    shared.metrics.read_errors.inc();
                }
                break;
            }
        }
    }
}

/// The flight-recorder scraper: fold a registry snapshot into the
/// history ring on the configured cadence (sleeping in short slices so
/// shutdown joins promptly).
fn history_loop(shared: &Shared) {
    let Some(history) = &shared.history else {
        return;
    };
    history.observe(unix_ms_now(), &shared.registry.snapshot());
    while !shared.shutdown.load(Ordering::SeqCst) {
        let mut slept = Duration::ZERO;
        while slept < shared.history_interval && !shared.shutdown.load(Ordering::SeqCst) {
            let slice = (shared.history_interval - slept).min(Duration::from_millis(50));
            std::thread::sleep(slice);
            slept += slice;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        history.observe(unix_ms_now(), &shared.registry.snapshot());
    }
}

/// Refresh the generation-age gauge twice a second until shutdown.
fn watchdog_loop(shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        let _ = shared.observe_health();
        std::thread::sleep(Duration::from_millis(500));
    }
}

/// A change fingerprint for the watched source file. The inode matters:
/// atomic publishers (tmp + fsync + rename) produce a fresh inode per
/// generation, which catches a republish that lands with an unchanged
/// length inside the filesystem's mtime granularity.
fn fingerprint(meta: &std::fs::Metadata) -> (Option<std::time::SystemTime>, u64, u64) {
    #[cfg(unix)]
    let ino = std::os::unix::fs::MetadataExt::ino(meta);
    #[cfg(not(unix))]
    let ino = 0u64;
    (meta.modified().ok(), meta.len(), ino)
}

/// Poll `source` for fingerprint changes and invoke `rebuild` on each.
/// One instance runs per watched file — the blocklist, and the forecast
/// artifact when configured — so a slow forecast refit can never delay a
/// blocklist reload.
fn watcher_loop(
    shared: &Shared,
    interval: Duration,
    baseline: Option<(Option<std::time::SystemTime>, u64, u64)>,
    source: &std::path::Path,
    rebuild: impl Fn(&Shared),
) {
    let mut last = baseline;
    while !shared.shutdown.load(Ordering::SeqCst) {
        // Sleep in short slices so shutdown joins promptly even with a
        // long poll interval.
        let mut slept = Duration::ZERO;
        while slept < interval && !shared.shutdown.load(Ordering::SeqCst) {
            let slice = (interval - slept).min(Duration::from_millis(50));
            std::thread::sleep(slice);
            slept += slice;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let current = std::fs::metadata(source).ok().map(|m| fingerprint(&m));
        if current.is_some() && current != last {
            // A failed build keeps serving the old generation (the error
            // is counted on reload.errors); either way this fingerprint
            // has been dealt with.
            rebuild(shared);
            last = current;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_are_sane() {
        let config = ServeConfig::new("/tmp/list.txt");
        assert_eq!(config.addr, "127.0.0.1:0");
        assert!(config.threads >= 1);
        assert!(config.max_conns >= 1);
        assert!(config.max_requests_per_conn >= 1);
        assert!(config.watch.is_none());
        assert_eq!(config.source, PathBuf::from("/tmp/list.txt"));
    }

    #[test]
    fn health_classification_thresholds() {
        let s = Duration::from_secs;
        // No thresholds: always ok, whatever the age.
        assert_eq!(Health::of(s(1_000_000), None, None), Health::Ok);
        // Stale only.
        assert_eq!(Health::of(s(5), Some(s(10)), None), Health::Ok);
        assert_eq!(Health::of(s(10), Some(s(10)), None), Health::Stale);
        // Both: degraded wins past its threshold.
        assert_eq!(Health::of(s(15), Some(s(10)), Some(s(30))), Health::Stale);
        assert_eq!(
            Health::of(s(30), Some(s(10)), Some(s(30))),
            Health::Degraded
        );
        // Degraded without stale still works.
        assert_eq!(Health::of(s(31), None, Some(s(30))), Health::Degraded);
        assert_eq!(Health::Ok.as_str(), "ok");
        assert_eq!(Health::Stale.as_str(), "stale");
        assert_eq!(Health::Degraded.as_str(), "degraded");
    }

    #[test]
    fn start_fails_cleanly_on_missing_source() {
        let config = ServeConfig::new("/nonexistent/unclean/blocklist.txt");
        match Server::start(config, Registry::off()) {
            Err(ServeError::Source(msg)) => assert!(msg.contains("nonexistent"), "{msg}"),
            other => panic!("expected Source error, got {other:?}"),
        }
    }

    impl std::fmt::Debug for Server {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Server")
                .field("addr", &self.shared.addr)
                .finish()
        }
    }
}
