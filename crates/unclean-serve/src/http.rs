//! A deliberately minimal HTTP/1.0 text protocol: parse one request off a
//! stream, write one response, close. No keep-alive, no chunked encoding,
//! no async — the daemon's concurrency model is a fixed worker pool, and
//! a blocklist lookup's work is microseconds, so one short-lived
//! connection per request (or per batch) is the whole protocol.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Cap on `Content-Length`; batches beyond this are a client error.
pub const MAX_BODY_BYTES: usize = 4 << 20;

/// Cap on the request line + headers, against slow-loris style garbage.
const MAX_HEAD_BYTES: usize = 16 << 10;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased as received).
    pub method: String,
    /// The path component of the target, e.g. `/lookup`.
    pub path: String,
    /// The raw query string (without `?`), empty when absent.
    pub query: String,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The value of a `key=value` query parameter, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .split('&')
            .filter_map(|pair| pair.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }
}

fn bad(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Read and parse one request. Honors the stream's read timeout; enforces
/// the head and body caps.
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Request> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    (&mut reader)
        .take(MAX_HEAD_BYTES as u64)
        .read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| bad("empty request line"))?
        .to_ascii_uppercase();
    let target = parts.next().ok_or_else(|| bad("missing request target"))?;
    if !target.starts_with('/') {
        return Err(bad(format!("bad request target {target:?}")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut content_length = 0usize;
    let mut head_bytes = line.len();
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(bad("request head too large"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| bad(format!("bad content-length {value:?}")))?;
                if content_length > MAX_BODY_BYTES {
                    return Err(bad(format!("body of {content_length} bytes exceeds cap")));
                }
            }
        }
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request {
        method,
        path,
        query,
        body,
    })
}

/// Write one HTTP/1.0 response and flush. The connection is then done.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trip helper: write `raw` into a socket, parse it server-side.
    fn parse_raw(raw: &[u8]) -> std::io::Result<Request> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).expect("connect");
            c.write_all(&raw).expect("write");
        });
        let (mut stream, _) = listener.accept().expect("accept");
        let req = read_request(&mut stream);
        writer.join().expect("writer");
        req
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse_raw(b"GET /lookup?ip=9.1.1.7&x=2 HTTP/1.0\r\nHost: h\r\n\r\n").expect("ok");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/lookup");
        assert_eq!(req.query_param("ip"), Some("9.1.1.7"));
        assert_eq!(req.query_param("x"), Some("2"));
        assert_eq!(req.query_param("missing"), None);
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            parse_raw(b"POST /batch HTTP/1.0\r\nContent-Length: 8\r\n\r\n9.1.1.7\n").expect("ok");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/batch");
        assert_eq!(req.body, b"9.1.1.7\n");
    }

    #[test]
    fn rejects_malformed_heads() {
        assert!(parse_raw(b"\r\n\r\n").is_err(), "empty request line");
        assert!(parse_raw(b"GET\r\n\r\n").is_err(), "missing target");
        assert!(
            parse_raw(b"GET lookup HTTP/1.0\r\n\r\n").is_err(),
            "relative target"
        );
        assert!(
            parse_raw(b"POST /b HTTP/1.0\r\nContent-Length: oops\r\n\r\n").is_err(),
            "bad content-length"
        );
        assert!(
            parse_raw(
                format!("POST /b HTTP/1.0\r\nContent-Length: {}\r\n\r\n", 5 << 20).as_bytes()
            )
            .is_err(),
            "body cap"
        );
    }

    #[test]
    fn response_is_well_formed() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let reader = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).expect("connect");
            let mut text = String::new();
            c.read_to_string(&mut text).expect("read");
            text
        });
        let (mut stream, _) = listener.accept().expect("accept");
        respond(&mut stream, 200, "OK", "text/plain", b"ok\n").expect("respond");
        drop(stream);
        let text = reader.join().expect("reader");
        assert!(text.starts_with("HTTP/1.0 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));
    }
}
