//! A deliberately minimal HTTP/1.x layer: an incremental, buffer-based
//! request parser and a response serializer. No chunked encoding, no
//! async — but unlike the v1 close-per-request protocol, HTTP/1.1
//! keep-alive and pipelining are first-class: [`parse_request`] consumes
//! complete requests off a growing byte buffer (returning how many bytes
//! each used, so several pipelined requests parse out of one read), and
//! [`write_response`] serializes into an output buffer that a
//! nonblocking event loop flushes when the socket allows.
//!
//! Version handling follows the satellite contract: HTTP/1.0 and
//! HTTP/1.1 are both accepted and echoed back; a request line with *no*
//! version token is treated as HTTP/1.0 (the old parser's behavior);
//! anything else (HTTP/0.9, HTTP/2, garbage) is
//! [`HttpError::UnsupportedVersion`], which the server answers with 505.
//! Header names *and* the `Connection` token values are matched
//! case-insensitively (`connection: Keep-Alive` works).
//!
//! The blocking one-shot helpers [`read_request`] / [`respond`] remain
//! for simple consumers (the ingest daemon, tests) that want the old
//! read-one-answer-one-close discipline.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Cap on `Content-Length`; batches beyond this are a client error.
pub const MAX_BODY_BYTES: usize = 4 << 20;

/// Cap on the request line + headers, against slow-loris style garbage.
pub const MAX_HEAD_BYTES: usize = 16 << 10;

/// The HTTP versions the daemon speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    /// HTTP/1.0 — close by default, keep-alive opt-in.
    Http10,
    /// HTTP/1.1 — keep-alive by default, close opt-in.
    Http11,
}

impl Version {
    /// The protocol token echoed in the status line.
    pub fn token(self) -> &'static str {
        match self {
            Version::Http10 => "HTTP/1.0",
            Version::Http11 => "HTTP/1.1",
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, … (uppercased as received).
    pub method: String,
    /// The path component of the target, e.g. `/lookup`.
    pub path: String,
    /// The raw query string (without `?`), empty when absent.
    pub query: String,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
    /// The request's HTTP version (no token on the request line parses
    /// as 1.0).
    pub version: Version,
    /// Whether the connection should stay open after the response:
    /// HTTP/1.1 unless `Connection: close`; HTTP/1.0 only with
    /// `Connection: keep-alive`.
    pub keep_alive: bool,
}

impl Request {
    /// The value of a `key=value` query parameter, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .split('&')
            .filter_map(|pair| pair.split_once('='))
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }
}

/// Why a buffer failed to parse as a request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Syntactically broken head — the connection is unrecoverable
    /// (byte boundaries are lost), answer 400 and close.
    Malformed(String),
    /// A well-formed request line naming a version the daemon does not
    /// speak — answer 505 and close.
    UnsupportedVersion(String),
    /// Head or declared body beyond the caps — answer 431/413-ish (the
    /// server uses 400) and close.
    TooLarge(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::UnsupportedVersion(v) => write!(f, "unsupported http version {v:?}"),
            HttpError::TooLarge(m) => write!(f, "request too large: {m}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Outcome of one [`parse_request`] call over the buffered bytes.
#[derive(Debug)]
pub enum Parse {
    /// No complete request in the buffer yet — read more.
    Partial,
    /// One request parsed; `.1` is how many buffer bytes it consumed
    /// (drain them, then try again: pipelined requests queue behind).
    Complete(Request, usize),
}

/// Byte index just past the `\r\n\r\n` (or bare `\n\n`) head terminator.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            match buf.get(i + 1) {
                Some(b'\n') => return Some(i + 2),
                Some(b'\r') if buf.get(i + 2) == Some(&b'\n') => return Some(i + 3),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// Try to parse one complete request from the front of `buf`.
///
/// Returns [`Parse::Partial`] until the head terminator *and* the full
/// declared body are buffered; errors are terminal for the connection.
/// Tolerates bare-`\n` line endings (the old reader did).
pub fn parse_request(buf: &[u8]) -> Result<Parse, HttpError> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge("request head exceeds cap".into()));
        }
        return Ok(Parse::Partial);
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(HttpError::TooLarge("request head exceeds cap".into()));
    }
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("head is not utf-8".into()))?;
    let mut lines = head.split('\n').map(|l| l.trim_end_matches('\r'));

    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
    if !target.starts_with('/') {
        return Err(HttpError::Malformed(format!(
            "bad request target {target:?}"
        )));
    }
    let version = match parts.next() {
        // The old parser never required a version token; keep treating
        // its absence as 1.0.
        None => Version::Http10,
        Some(tok) if tok.eq_ignore_ascii_case("HTTP/1.0") => Version::Http10,
        Some(tok) if tok.eq_ignore_ascii_case("HTTP/1.1") => Version::Http11,
        Some(tok) => return Err(HttpError::UnsupportedVersion(tok.to_string())),
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut content_length = 0usize;
    let mut keep_alive = version == Version::Http11;
    for line in lines {
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad content-length {value:?}")))?;
            if content_length > MAX_BODY_BYTES {
                return Err(HttpError::TooLarge(format!(
                    "body of {content_length} bytes exceeds cap"
                )));
            }
        } else if name.eq_ignore_ascii_case("connection") {
            // Token list, each token case-insensitive: "Keep-Alive",
            // "close", "close, TE", ...
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        }
    }

    let total = head_end + content_length;
    if buf.len() < total {
        return Ok(Parse::Partial);
    }
    Ok(Parse::Complete(
        Request {
            method,
            path,
            query,
            body: buf[head_end..total].to_vec(),
            version,
            keep_alive,
        },
        total,
    ))
}

/// Serialize one response into `out`. The status line echoes `version`;
/// the `Connection` header states whether the server will keep the
/// connection open (the event loop must act accordingly).
pub fn write_response(
    out: &mut Vec<u8>,
    version: Version,
    status: u16,
    reason: &str,
    content_type: &str,
    keep_alive: bool,
    body: &[u8],
) {
    use std::io::Write as _;
    let connection = if keep_alive { "keep-alive" } else { "close" };
    // Writing into a Vec cannot fail.
    let _ = write!(
        out,
        "{} {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: {connection}\r\n\r\n",
        version.token(),
        body.len()
    );
    out.extend_from_slice(body);
}

fn io_invalid(e: HttpError) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
}

/// Read and parse one request, blocking. Honors the stream's read
/// timeout; enforces the head and body caps. The one-shot sibling of
/// [`parse_request`] for close-per-request consumers (the ingest
/// daemon); the serve event loop parses its own buffers.
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Request> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    loop {
        match parse_request(&buf).map_err(io_invalid)? {
            Parse::Complete(req, _) => return Ok(req),
            Parse::Partial => {}
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-request",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Write one HTTP/1.0 `Connection: close` response and flush — the
/// close-per-request sibling of [`write_response`], for consumers of
/// [`read_request`]. The connection is then done.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let mut out = Vec::with_capacity(128 + body.len());
    write_response(
        &mut out,
        Version::Http10,
        status,
        reason,
        content_type,
        false,
        body,
    );
    stream.write_all(&out)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trip helper: write `raw` into a socket, parse it server-side.
    fn parse_raw(raw: &[u8]) -> std::io::Result<Request> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).expect("connect");
            c.write_all(&raw).expect("write");
        });
        let (mut stream, _) = listener.accept().expect("accept");
        let req = read_request(&mut stream);
        writer.join().expect("writer");
        req
    }

    /// Parse from a buffer, expecting completion.
    fn parse_buf(raw: &[u8]) -> Result<(Request, usize), HttpError> {
        match parse_request(raw)? {
            Parse::Complete(req, used) => Ok((req, used)),
            Parse::Partial => panic!("unexpectedly partial"),
        }
    }

    #[test]
    fn parses_get_with_query() {
        let req = parse_raw(b"GET /lookup?ip=9.1.1.7&x=2 HTTP/1.0\r\nHost: h\r\n\r\n").expect("ok");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/lookup");
        assert_eq!(req.query_param("ip"), Some("9.1.1.7"));
        assert_eq!(req.query_param("x"), Some("2"));
        assert_eq!(req.query_param("missing"), None);
        assert!(req.body.is_empty());
        assert_eq!(req.version, Version::Http10);
        assert!(!req.keep_alive, "1.0 defaults to close");
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            parse_raw(b"POST /batch HTTP/1.0\r\nContent-Length: 8\r\n\r\n9.1.1.7\n").expect("ok");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/batch");
        assert_eq!(req.body, b"9.1.1.7\n");
    }

    #[test]
    fn http11_defaults_to_keep_alive_and_echoes_version() {
        let (req, _) =
            parse_buf(b"GET /lookup?ip=1.2.3.4 HTTP/1.1\r\nHost: h\r\n\r\n").expect("ok");
        assert_eq!(req.version, Version::Http11);
        assert!(req.keep_alive, "1.1 defaults to keep-alive");

        let (req, _) =
            parse_buf(b"GET / HTTP/1.1\r\nConnection: CLOSE\r\n\r\n").expect("close variant");
        assert!(!req.keep_alive, "explicit close wins on 1.1");
    }

    #[test]
    fn header_case_variance_is_tolerated() {
        // The satellite case verbatim: lowercase name, mixed-case token.
        let (req, _) = parse_buf(b"GET / HTTP/1.0\r\nconnection: Keep-Alive\r\n\r\n").expect("ok");
        assert_eq!(req.version, Version::Http10);
        assert!(req.keep_alive, "1.0 + keep-alive token stays open");

        let (req, _) = parse_buf(b"POST /b HTTP/1.1\r\nCONTENT-LENGTH: 2\r\n\r\nhi").expect("ok");
        assert_eq!(req.body, b"hi");
    }

    #[test]
    fn missing_version_token_parses_as_http10() {
        let (req, _) = parse_buf(b"GET /healthz\r\n\r\n").expect("ok");
        assert_eq!(req.version, Version::Http10);
        assert!(!req.keep_alive);
    }

    #[test]
    fn genuinely_unsupported_versions_error() {
        for raw in [
            b"GET / HTTP/2.0\r\n\r\n".as_slice(),
            b"GET / HTTP/0.9\r\n\r\n".as_slice(),
        ] {
            assert!(
                matches!(parse_request(raw), Err(HttpError::UnsupportedVersion(_))),
                "{raw:?}"
            );
        }
        // ... but case variance on a supported token is fine.
        let (req, _) = parse_buf(b"GET / http/1.1\r\n\r\n").expect("ok");
        assert_eq!(req.version, Version::Http11);
    }

    #[test]
    fn pipelined_requests_parse_sequentially() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyzGET /c HTTP/1.1\r\nConnection: close\r\n\r\n";
        let (first, used1) = parse_buf(raw).expect("first");
        assert_eq!(first.path, "/a");
        let (second, used2) = parse_buf(&raw[used1..]).expect("second");
        assert_eq!(second.path, "/b");
        assert_eq!(second.body, b"xyz");
        let (third, used3) = parse_buf(&raw[used1 + used2..]).expect("third");
        assert_eq!(third.path, "/c");
        assert!(!third.keep_alive);
        assert_eq!(used1 + used2 + used3, raw.len(), "all bytes consumed");
    }

    #[test]
    fn partial_heads_and_bodies_ask_for_more() {
        assert!(matches!(parse_request(b""), Ok(Parse::Partial)));
        assert!(matches!(
            parse_request(b"GET /lookup HTTP/1.1\r\nHos"),
            Ok(Parse::Partial)
        ));
        assert!(matches!(
            parse_request(b"POST /b HTTP/1.1\r\nContent-Length: 10\r\n\r\n12345"),
            Ok(Parse::Partial),
        ));
    }

    #[test]
    fn rejects_malformed_heads() {
        assert!(parse_raw(b"\r\n\r\n").is_err(), "empty request line");
        assert!(parse_raw(b"GET\r\n\r\n").is_err(), "missing target");
        assert!(
            parse_raw(b"GET lookup HTTP/1.0\r\n\r\n").is_err(),
            "relative target"
        );
        assert!(
            parse_raw(b"POST /b HTTP/1.0\r\nContent-Length: oops\r\n\r\n").is_err(),
            "bad content-length"
        );
        assert!(
            parse_raw(
                format!("POST /b HTTP/1.0\r\nContent-Length: {}\r\n\r\n", 5 << 20).as_bytes()
            )
            .is_err(),
            "body cap"
        );
    }

    #[test]
    fn response_is_well_formed() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let reader = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).expect("connect");
            let mut text = String::new();
            c.read_to_string(&mut text).expect("read");
            text
        });
        let (mut stream, _) = listener.accept().expect("accept");
        respond(&mut stream, 200, "OK", "text/plain", b"ok\n").expect("respond");
        drop(stream);
        let text = reader.join().expect("reader");
        assert!(text.starts_with("HTTP/1.0 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));
    }

    #[test]
    fn serializer_echoes_version_and_connection() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            Version::Http11,
            200,
            "OK",
            "application/octet-stream",
            true,
            b"\x01\x02",
        );
        let text = String::from_utf8_lossy(&out);
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
    }
}
