//! World diagnostics: summary statistics of a generated scenario, for
//! sanity-checking the synthetic substrate against the properties the
//! substitution argument (DESIGN.md §2) promises — multifractal address
//! clustering, a clean majority with an unclean tail, narrow audience
//! locality, heavy-tailed exposure, and hygiene-dependent infection
//! durations.

use crate::compromise::Infection;
use crate::world::World;
use serde::{Deserialize, Serialize};
use unclean_core::blocks::BlockCounts;
use unclean_stats::{FiveNumber, Histogram};

/// Summary statistics of a generated world (population + profiles).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldDiagnostics {
    /// Total active hosts.
    pub hosts: usize,
    /// Active /24 blocks.
    pub blocks24: usize,
    /// Distinct /16 networks.
    pub networks16: usize,
    /// Distinct populated /8s.
    pub slash8s: usize,
    /// Five-number summary of hosts per active /24.
    pub hosts_per_block: FiveNumber,
    /// Block counts at /8, /16, /24 (multifractality check: growth far
    /// below 256× per octet).
    pub block_counts: [u64; 3],
    /// Fraction of /16s with hygiene below 0.3 (the unclean tail).
    pub unclean_fraction: f64,
    /// Fraction of /16s in the observed network's audience.
    pub audience_fraction: f64,
    /// Fraction of /16s flagged datacenter.
    pub datacenter_fraction: f64,
    /// Five-number summary of the per-/24 attack-exposure multiplier.
    pub exposure: FiveNumber,
}

impl WorldDiagnostics {
    /// Compute diagnostics for a world.
    pub fn of(world: &World) -> WorldDiagnostics {
        let set = world.population.to_ipset();
        let counts = BlockCounts::of(&set);
        let per_block: Vec<f64> = world
            .population
            .blocks()
            .map(|b| b.hosts.len() as f64)
            .collect();
        let n16 = world.network_count();
        let mut unclean = 0usize;
        let mut audience = 0usize;
        let mut datacenter = 0usize;
        for i in 0..n16 {
            let p = world.profile(i);
            if p.hygiene < 0.3 {
                unclean += 1;
            }
            if p.is_audience() {
                audience += 1;
            }
            if p.datacenter {
                datacenter += 1;
            }
        }
        let exposures: Vec<f64> = (0..world.population.block_count())
            .map(|i| world.block_exposure(i) as f64)
            .collect();
        let mut slash8s: Vec<u8> = set.iter().map(|ip| ip.slash8()).collect();
        slash8s.dedup();
        WorldDiagnostics {
            hosts: world.population.total_hosts(),
            blocks24: world.population.block_count(),
            networks16: n16,
            slash8s: slash8s.len(),
            hosts_per_block: FiveNumber::of(&per_block).expect("worlds are non-empty"),
            block_counts: [counts.at(8), counts.at(16), counts.at(24)],
            unclean_fraction: unclean as f64 / n16 as f64,
            audience_fraction: audience as f64 / n16 as f64,
            datacenter_fraction: datacenter as f64 / n16 as f64,
            exposure: FiveNumber::of(&exposures).expect("non-empty"),
        }
    }

    /// Render as a human-readable report.
    pub fn render(&self) -> String {
        format!(
            "hosts              : {}\n\
             /24 blocks         : {} (hosts/block median {:.0}, max {:.0})\n\
             /16 networks       : {} across {} /8s\n\
             block growth       : /8 {} → /16 {} → /24 {} (multifractal: ≪256× per octet)\n\
             unclean /16s       : {:.1}%\n\
             audience /16s      : {:.1}%\n\
             datacenter /16s    : {:.1}%\n\
             exposure (per /24) : median {:.2}, max {:.1} (heavy tail)",
            self.hosts,
            self.blocks24,
            self.hosts_per_block.median,
            self.hosts_per_block.max,
            self.networks16,
            self.slash8s,
            self.block_counts[0],
            self.block_counts[1],
            self.block_counts[2],
            self.unclean_fraction * 100.0,
            self.audience_fraction * 100.0,
            self.datacenter_fraction * 100.0,
            self.exposure.median,
            self.exposure.max,
        )
    }
}

/// Summary statistics of an infection history.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpidemicDiagnostics {
    /// Total infection intervals.
    pub infections: usize,
    /// Fraction recruited into botnets.
    pub recruited_fraction: f64,
    /// Five-number summary of infection durations (days).
    pub duration_days: FiveNumber,
    /// Mean hygiene of infected hosts' /16s (should sit far below the
    /// world's mean — the concentration check).
    pub mean_infected_hygiene: f64,
    /// Distinct /24s ever infected.
    pub infected_blocks24: usize,
    /// Histogram of infections per infected /24 (burstiness check).
    pub per_block_histogram: Vec<(String, u64)>,
}

impl EpidemicDiagnostics {
    /// Compute diagnostics for an infection history within a world.
    pub fn of(world: &World, infections: &[Infection]) -> EpidemicDiagnostics {
        assert!(!infections.is_empty(), "no infections to summarize");
        let durations: Vec<f64> = infections
            .iter()
            .map(|i| (i.end - i.start + 1) as f64)
            .collect();
        let recruited = infections.iter().filter(|i| i.recruited).count();
        let mut hygiene_sum = 0.0;
        let mut hygiene_n = 0usize;
        let mut per_block: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        for inf in infections {
            if let Some(p) = world.profile_of(inf.ip()) {
                hygiene_sum += p.hygiene as f64;
                hygiene_n += 1;
            }
            *per_block.entry(inf.addr >> 8).or_default() += 1;
        }
        let mut hist = Histogram::new(1.0, 33.0, 8);
        for &c in per_block.values() {
            hist.record(c as f64);
        }
        let per_block_histogram = (0..hist.counts().len())
            .map(|i| {
                let (lo, hi) = hist.bin_edges(i);
                (format!("[{lo:.0},{hi:.0})"), hist.counts()[i])
            })
            .chain(std::iter::once(("≥33".to_string(), hist.overflow())))
            .collect();
        EpidemicDiagnostics {
            infections: infections.len(),
            recruited_fraction: recruited as f64 / infections.len() as f64,
            duration_days: FiveNumber::of(&durations).expect("non-empty"),
            mean_infected_hygiene: hygiene_sum / hygiene_n.max(1) as f64,
            infected_blocks24: per_block.len(),
            per_block_histogram,
        }
    }

    /// Render as a human-readable report.
    pub fn render(&self) -> String {
        let hist: String = self
            .per_block_histogram
            .iter()
            .map(|(label, count)| format!("    {label:>8}  {count}\n"))
            .collect();
        format!(
            "infections         : {} over {} /24s\n\
             recruited          : {:.0}%\n\
             duration (days)    : median {:.0}, q3 {:.0}, max {:.0}\n\
             infected hygiene   : mean {:.2} (world networks skew far cleaner)\n\
             infections per /24 :\n{hist}",
            self.infections,
            self.infected_blocks24,
            self.recruited_fraction * 100.0,
            self.duration_days.median,
            self.duration_days.q3,
            self.duration_days.max,
            self.mean_infected_hygiene,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Scenario, ScenarioConfig};

    fn scenario() -> Scenario {
        Scenario::generate(ScenarioConfig::at_scale(0.001, 3))
    }

    #[test]
    fn world_diagnostics_report_the_promised_properties() {
        let s = scenario();
        let d = WorldDiagnostics::of(&s.world);
        assert_eq!(d.hosts, s.world.population.total_hosts());
        assert_eq!(d.blocks24, s.world.population.block_count());
        // Multifractality: /16→/24 growth well below 256×.
        assert!(d.block_counts[2] < d.block_counts[1] * 64);
        assert!(d.block_counts[0] < d.block_counts[1]);
        // The unclean tail exists but is a minority.
        assert!(
            d.unclean_fraction > 0.01 && d.unclean_fraction < 0.25,
            "{}",
            d.unclean_fraction
        );
        // Audience is narrow.
        assert!(d.audience_fraction < 0.25);
        // Exposure is heavy-tailed around mean 1.
        assert!(d.exposure.median < 1.0);
        assert!(d.exposure.max > 3.0);
        let text = d.render();
        assert!(text.contains("multifractal"));
        assert!(text.contains(&format!("{}", d.hosts)));
    }

    #[test]
    fn epidemic_diagnostics_show_concentration_and_persistence() {
        let s = scenario();
        let d = EpidemicDiagnostics::of(&s.world, &s.infections);
        assert_eq!(d.infections, s.infections.len());
        assert!((d.recruited_fraction - s.config.compromise.recruit_prob).abs() < 0.05);
        // Durations skew long (unclean networks keep hosts compromised).
        assert!(d.duration_days.median >= 2.0);
        assert!(d.duration_days.max > 60.0);
        // Concentration: infected networks are much dirtier than average.
        assert!(
            d.mean_infected_hygiene < 0.45,
            "{}",
            d.mean_infected_hygiene
        );
        // Burstiness: some /24s carry many infections.
        let multi: u64 = d.per_block_histogram.iter().skip(1).map(|(_, c)| *c).sum();
        assert!(multi > 0, "some blocks are hit repeatedly");
        let text = d.render();
        assert!(text.contains("infections per /24"));
    }

    #[test]
    #[should_panic(expected = "no infections")]
    fn empty_epidemic_rejected() {
        let s = scenario();
        let _ = EpidemicDiagnostics::of(&s.world, &[]);
    }
}
