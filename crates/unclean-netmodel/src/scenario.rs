//! The canonical paper-shaped scenario.
//!
//! Table 1 of the paper pins down an exact calendar and report inventory:
//!
//! | tag | period | size |
//! |---|---|---|
//! | bot | 2006/10/01–10/14 | 621,861 |
//! | phish | 2006/05/01–11/01 | 53,789 |
//! | scan | 2006/10/01–10/14 | 151,908 |
//! | spam | 2006/10/01–10/14 | 397,306 |
//! | bot-test | 2006/05/10 | 186 |
//! | control | 2006/09/25–10/02 | 46,899,928 |
//!
//! [`ScenarioConfig::at_scale`] reproduces that inventory at a chosen
//! scale factor (sizes × scale), deriving the epidemic and traffic rates
//! by analytic calibration rather than hand-tuning. [`Scenario::generate`]
//! then builds the world, infection history, phishing history, and scan
//! campaigns; the detector crate turns those into the actual reports.

use crate::activity::{ActivityModel, BenignConfig};
use crate::actors::{Campaign, Campaigns, TaskingConfig};
use crate::compromise::{
    calibrate_base_hazard, generate_infections_with, ChannelDirectory, CompromiseConfig, Infection,
};
use crate::observed::ObservedNetwork;
use crate::phish::{generate_phish, PhishConfig, PhishSite};
use crate::world::{World, WorldConfig};
use crossbeam::executor::Executor;
use serde::{Deserialize, Serialize};
use unclean_core::{DateRange, Day, IpSet};
use unclean_stats::SeedTree;
use unclean_telemetry::Registry;

/// The paper's full-scale report sizes.
pub mod paper_sizes {
    /// |R_bot| (Table 1).
    pub const BOT: usize = 621_861;
    /// |R_phish| (Table 1).
    pub const PHISH: usize = 53_789;
    /// |R_scan| (Table 1).
    pub const SCAN: usize = 151_908;
    /// |R_spam| (Table 1).
    pub const SPAM: usize = 397_306;
    /// |R_bot-test| (Table 1).
    pub const BOT_TEST: usize = 186;
    /// |R_control| (Table 1).
    pub const CONTROL: usize = 46_899_928;
}

/// The paper's calendar, as [`Day`] offsets from 2006-01-01.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioDates {
    /// Figure 1's scan time series: January–April 2006.
    pub fig1_span: DateRange,
    /// The bot report within Figure 1 ("first week of March").
    pub fig1_report_day: Day,
    /// The bot-test snapshot: 2006-05-10.
    pub bot_test_day: Day,
    /// The phishing report span: 2006-05-01 – 2006-11-01.
    pub phish_span: DateRange,
    /// The control week: 2006-09-25 – 2006-10-02.
    pub control_week: DateRange,
    /// The unclean-report window: 2006-10-01 – 2006-10-14.
    pub unclean_window: DateRange,
    /// Everything simulated: covers all of the above.
    pub full_span: DateRange,
}

impl ScenarioDates {
    /// The paper's calendar.
    pub fn paper() -> ScenarioDates {
        let d = |s: &str| s.parse::<Day>().expect("valid scenario date");
        ScenarioDates {
            fig1_span: DateRange::new(d("2006-01-01"), d("2006-04-30")),
            fig1_report_day: d("2006-03-05"),
            bot_test_day: d("2006-05-10"),
            phish_span: DateRange::new(d("2006-05-01"), d("2006-11-01")),
            control_week: DateRange::new(d("2006-09-25"), d("2006-10-02")),
            unclean_window: DateRange::new(d("2006-10-01"), d("2006-10-14")),
            full_span: DateRange::new(d("2006-01-01"), d("2006-11-01")),
        }
    }
}

/// Scenario configuration: target sizes plus all sub-model tunables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// Master seed.
    pub seed: u64,
    /// Scale factor applied to the paper's report sizes.
    pub scale: f64,
    /// Target control-report size (paper size × scale).
    pub control_target: usize,
    /// Target bot-report size.
    pub bot_target: usize,
    /// Target phishing-report size.
    pub phish_target: usize,
    /// World/population tunables (cascade target derived during generate).
    pub world: WorldConfig,
    /// Epidemic tunables (base hazard derived during generate).
    pub compromise: CompromiseConfig,
    /// Attacker tasking tunables.
    pub tasking: TaskingConfig,
    /// Phishing tunables (rate derived during generate).
    pub phish: PhishConfig,
    /// Benign-traffic tunables.
    pub benign: BenignConfig,
    /// Fraction of active compromised hosts expected to land in the
    /// provided bot report (recruitment × channel coverage × check-in
    /// visibility); used to back out the epidemic size from `bot_target`.
    pub bot_report_coverage: f64,
    /// Worker threads for generation (0 = one per core, 1 = serial).
    /// Runtime tuning only: the generated scenario is byte-identical at
    /// any value, so it is excluded from run fingerprints.
    pub threads: usize,
}

impl ScenarioConfig {
    /// The paper's inventory at a given scale. `scale = 1.0` is the full
    /// 47M-address control; `scale = 0.01` runs in seconds.
    pub fn at_scale(scale: f64, seed: u64) -> ScenarioConfig {
        assert!(
            scale > 0.0 && scale <= 1.0,
            "scale must be in (0, 1], got {scale}"
        );
        let s = |v: usize| ((v as f64 * scale).round() as usize).max(32);
        ScenarioConfig {
            seed,
            scale,
            control_target: s(paper_sizes::CONTROL),
            bot_target: s(paper_sizes::BOT),
            phish_target: s(paper_sizes::PHISH),
            world: WorldConfig::default(),
            compromise: CompromiseConfig::default(),
            tasking: TaskingConfig::default(),
            phish: PhishConfig::default(),
            benign: BenignConfig::default(),
            // recruit_prob (0.4) × member-weighted monitor coverage
            // (top-35% channels by popularity carry ≈90% of members):
            // the fraction of window-active compromised hosts expected to
            // appear in the provided bot report.
            bot_report_coverage: 0.36,
            threads: 0,
        }
    }
}

/// A fully generated scenario: the raw material every experiment consumes.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The configuration that produced this scenario.
    pub config: ScenarioConfig,
    /// The calendar.
    pub dates: ScenarioDates,
    /// Master seed tree.
    pub seeds: SeedTree,
    /// The observed edge network.
    pub observed: ObservedNetwork,
    /// Population + network profiles.
    pub world: World,
    /// C&C channel directory.
    pub channels: ChannelDirectory,
    /// Full infection history.
    pub infections: Vec<Infection>,
    /// Full phishing-site history.
    pub phish_sites: Vec<PhishSite>,
    /// Scheduled scan campaigns (Figure 1's botnet among them).
    pub campaigns: Campaigns,
    /// The channel whose botnet is reported in Figure 1.
    pub fig1_channel: u16,
    /// The channel behind the bot-test report.
    pub bot_test_channel: u16,
}

impl Scenario {
    /// Generate the scenario: world, calibrated epidemic, phishing,
    /// campaigns.
    pub fn generate(config: ScenarioConfig) -> Scenario {
        Scenario::generate_recorded(config, &Registry::off())
    }

    /// [`Scenario::generate`] with telemetry: the phases run as children
    /// of a `scenario` span (`world`, `epidemic`, `phish`, `casting`) and
    /// the generated inventory is counted (`netmodel.hosts`,
    /// `netmodel.blocks`, `netmodel.channels`, `netmodel.infections`,
    /// `netmodel.phish_sites`).
    pub fn generate_recorded(mut config: ScenarioConfig, registry: &Registry) -> Scenario {
        let mut scenario_span = registry.span("scenario");
        scenario_span.field("scale", config.scale);
        let seeds = SeedTree::new(config.seed);
        let dates = ScenarioDates::paper();
        let observed = ObservedNetwork::paper_default();
        // One worker pool for the whole generation: population, per-/24
        // profile work, and the epidemic all fan /8-shaped shards across
        // it. Results are byte-identical at any thread count.
        let pool = Executor::new(config.threads);

        // Population sized so the weekly control observation approximates
        // the control target. Weekly coverage for a block with daily visit
        // probability p is 1 − (1 − p)^7; we aim with a prior coverage
        // estimate, then measure the real expectation afterwards (reported
        // by `expected_control_coverage`).
        let prior_coverage = 0.15;
        config.world.cascade.target_hosts =
            ((config.control_target as f64 / prior_coverage) as usize).max(64);
        config.world.cascade.exclude_slash8s = observed.slash8s();
        let world_span = scenario_span.child("world");
        let world = World::generate_with(&config.world, &seeds, &pool);
        drop(world_span);
        registry
            .counter("netmodel.hosts")
            .add(world.population.total_hosts() as u64);
        registry
            .counter("netmodel.blocks")
            .add(world.population.block_count() as u64);

        // Epidemic sized so the unclean window holds enough active bots to
        // fill the bot report at the configured coverage.
        let epidemic_span = scenario_span.child("epidemic");
        let window_days = dates.unclean_window.len_days() as f64;
        let active_target = config.bot_target as f64 / config.bot_report_coverage;
        config.compromise.base_hazard =
            calibrate_base_hazard(&world, &config.compromise, active_target, window_days);
        let channels = ChannelDirectory::generate(&world, &config.compromise, &seeds);
        let infections = generate_infections_with(
            &world,
            &channels,
            dates.full_span,
            &config.compromise,
            &seeds,
            &pool,
        );
        drop(epidemic_span);
        registry
            .counter("netmodel.channels")
            .add(channels.len() as u64);
        registry
            .counter("netmodel.infections")
            .add(infections.len() as u64);

        // Phishing sized to the target over its span (dedup across sites on
        // the same address loses a few percent; acceptable).
        let phish_span = scenario_span.child("phish");
        let phish_days = dates.phish_span.len_days() as f64;
        config.phish.sites_per_day =
            config.phish_target as f64 / (config.phish.report_prob * phish_days);
        let phish_sites = generate_phish(&world, dates.phish_span, &config.phish, &seeds);
        drop(phish_span);
        registry
            .counter("netmodel.phish_sites")
            .add(phish_sites.len() as u64);

        let casting_span = scenario_span.child("casting");
        // Figure 1's reported botnet: the channel with the most recruits
        // active at the report date.
        let fig1_channel = busiest_channel(&infections, dates.fig1_report_day, None);
        // The bot-test botnet: the channel (≠ fig1) whose active roster at
        // the bot-test date is closest to the paper's 186 while overlapping
        // the observed network's audience as little as possible. This is
        // the paper's own §6.2 demographics: its bot-test botnet was 70%
        // Turkish, essentially disjoint from the (American) observed
        // network's legitimate audience — which is what makes blocking its
        // /24s nearly free of collateral.
        let bot_test_channel = closest_remote_channel(
            &world,
            &infections,
            dates.bot_test_day,
            paper_sizes::BOT_TEST,
            Some(fig1_channel),
        );

        let campaigns = Campaigns {
            scan: vec![Campaign {
                channel: fig1_channel,
                start: dates.fig1_span.start + 20,
                peak: dates.fig1_report_day,
                end: dates.fig1_report_day + 55,
                peak_intensity: 0.65,
                decay: 0.10,
            }],
        };
        drop(casting_span);

        Scenario {
            config,
            dates,
            seeds,
            observed,
            world,
            channels,
            infections,
            phish_sites,
            campaigns,
            fig1_channel,
            bot_test_channel,
        }
    }

    /// The activity model over this scenario.
    pub fn activity(&self) -> ActivityModel<'_> {
        ActivityModel {
            world: &self.world,
            infections: &self.infections,
            tasking: self.config.tasking.clone(),
            campaigns: self.campaigns.clone(),
            benign: self.config.benign.clone(),
            seeds: self.seeds.child("activity"),
        }
    }

    /// Recruited members of `channel` active on `day`, as an address set.
    pub fn channel_members_on(&self, channel: u16, day: Day) -> IpSet {
        IpSet::from_raw(
            self.infections
                .iter()
                .filter(|i| i.recruited && i.channel == channel && i.active_on(day))
                .map(|i| i.addr)
                .collect(),
        )
    }

    /// The bot-test address set: the bot-test channel's roster on the
    /// bot-test day, truncated to the paper's 186 when larger (the report
    /// was a single IRC-channel observation; any 186-member view of it is
    /// equally valid).
    pub fn bot_test_addrs(&self) -> IpSet {
        let full = self.channel_members_on(self.bot_test_channel, self.dates.bot_test_day);
        if full.len() <= paper_sizes::BOT_TEST {
            return full;
        }
        let mut rng = self.seeds.stream("bot-test-sample");
        full.sample(&mut rng, paper_sizes::BOT_TEST)
            .expect("sample smaller than set")
    }

    /// Analytically expected control-week coverage of the population
    /// (fraction of hosts seen at least once), for diagnostics.
    pub fn expected_control_coverage(&self) -> f64 {
        let model = self.activity();
        let days = self.dates.control_week.len_days() as i32;
        let mut seen = 0.0;
        let mut total = 0.0;
        for i in 0..self.world.population.block_count() {
            let hosts = self.world.population.block(i).hosts.len() as f64;
            let p = model.benign_daily_prob(i);
            seen += hosts * (1.0 - (1.0 - p).powi(days));
            total += hosts;
        }
        seen / total
    }
}

/// The channel with the most active recruits on `day`.
fn busiest_channel(infections: &[Infection], day: Day, exclude: Option<u16>) -> u16 {
    channel_counts(infections, day)
        .into_iter()
        .enumerate()
        .filter(|(c, _)| Some(*c as u16) != exclude)
        .max_by_key(|(_, n)| *n)
        .map(|(c, _)| c as u16)
        .unwrap_or(0)
}

/// The channel whose active roster on `day` is closest to `target` (prefer
/// ≥ target so truncation can hit it exactly) with minimal membership in
/// audience /16s — §6.2's demographics, encoded as a selection rule.
fn closest_remote_channel(
    world: &World,
    infections: &[Infection],
    day: Day,
    target: usize,
    exclude: Option<u16>,
) -> u16 {
    let max_channel = infections.iter().map(|i| i.channel).max().unwrap_or(0) as usize;
    let mut counts = vec![0usize; max_channel + 1];
    let mut audience = vec![0usize; max_channel + 1];
    for inf in infections
        .iter()
        .filter(|i| i.recruited && i.active_on(day))
    {
        counts[inf.channel as usize] += 1;
        if world.profile_of(inf.ip()).is_some_and(|p| p.is_audience()) {
            audience[inf.channel as usize] += 1;
        }
    }
    let mut best: Option<(u16, usize)> = None;
    for (c, &n) in counts.iter().enumerate() {
        if Some(c as u16) == exclude || n == 0 {
            continue;
        }
        // Audience members dominate the score outright — a channel with
        // any business-partner presence is the wrong analogue for the
        // paper's Turkish botnet; size closeness only breaks ties.
        let size_score = if n >= target {
            n - target
        } else {
            (target - n) * 4
        };
        let score = audience[c] * 100_000 + size_score;
        if best.is_none() || score < best.expect("checked").1 {
            best = Some((c as u16, score));
        }
    }
    best.map(|(c, _)| c).unwrap_or(0)
}

fn channel_counts(infections: &[Infection], day: Day) -> Vec<usize> {
    let max_channel = infections.iter().map(|i| i.channel).max().unwrap_or(0) as usize;
    let mut counts = vec![0usize; max_channel + 1];
    for i in infections
        .iter()
        .filter(|i| i.recruited && i.active_on(day))
    {
        counts[i.channel as usize] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scenario {
        Scenario::generate(ScenarioConfig::at_scale(0.002, 7))
    }

    #[test]
    fn dates_match_the_paper() {
        let d = ScenarioDates::paper();
        assert_eq!(d.fig1_span.start.to_string(), "2006-01-01");
        assert_eq!(d.fig1_span.end.to_string(), "2006-04-30");
        assert_eq!(d.fig1_report_day.to_string(), "2006-03-05");
        assert_eq!(d.bot_test_day.to_string(), "2006-05-10");
        assert_eq!(d.unclean_window.start.to_string(), "2006-10-01");
        assert_eq!(d.unclean_window.end.to_string(), "2006-10-14");
        assert_eq!(d.unclean_window.len_days(), 14);
        assert_eq!(d.control_week.start.to_string(), "2006-09-25");
        assert!(d.full_span.contains(d.bot_test_day));
        assert!(d.phish_span.contains(d.unclean_window.start));
    }

    #[test]
    fn config_scaling() {
        let c = ScenarioConfig::at_scale(0.01, 1);
        assert_eq!(
            c.control_target,
            (paper_sizes::CONTROL as f64 * 0.01).round() as usize
        );
        assert_eq!(
            c.bot_target,
            (paper_sizes::BOT as f64 * 0.01).round() as usize
        );
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn zero_scale_rejected() {
        let _ = ScenarioConfig::at_scale(0.0, 1);
    }

    #[test]
    fn generation_produces_coherent_scenario() {
        let s = tiny();
        assert!(s.world.population.total_hosts() > 50_000);
        assert!(!s.infections.is_empty());
        assert!(!s.phish_sites.is_empty());
        // The observed network's /8s never appear in the population.
        for b in s.world.population.blocks().take(500) {
            let s8 = (b.prefix >> 16) as u8;
            assert!(s8 != 30 && s8 != 55, "observed space excluded");
        }
        // Campaign channel differs from bot-test channel.
        assert_ne!(s.fig1_channel, s.bot_test_channel);
        assert_eq!(s.campaigns.scan.len(), 1);
        assert_eq!(s.campaigns.scan[0].channel, s.fig1_channel);
    }

    #[test]
    fn epidemic_size_tracks_bot_target() {
        let s = tiny();
        let active: usize = s
            .infections
            .iter()
            .filter(|i| i.overlaps(&s.dates.unclean_window))
            .count();
        let target = s.config.bot_target as f64 / s.config.bot_report_coverage;
        assert!(
            (target * 0.5..target * 2.0).contains(&(active as f64)),
            "active {active} vs calibration target {target}"
        );
    }

    #[test]
    fn bot_test_size_near_paper() {
        let s = tiny();
        let bt = s.bot_test_addrs();
        assert!(!bt.is_empty());
        assert!(bt.len() <= paper_sizes::BOT_TEST);
        // With dozens of channels there should be one near the target.
        assert!(bt.len() >= 25, "bot-test size {} too small", bt.len());
    }

    #[test]
    fn expected_coverage_is_sane() {
        let s = tiny();
        let cov = s.expected_control_coverage();
        assert!((0.05..0.5).contains(&cov), "coverage {cov}");
    }

    #[test]
    fn deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.infections, b.infections);
        assert_eq!(a.phish_sites, b.phish_sites);
        assert_eq!(a.bot_test_channel, b.bot_test_channel);
        assert_eq!(a.bot_test_addrs(), b.bot_test_addrs());
    }

    #[test]
    fn recorded_generation_matches_and_books_inventory() {
        let registry = Registry::full();
        let recorded = Scenario::generate_recorded(ScenarioConfig::at_scale(0.002, 7), &registry);
        let plain = tiny();
        assert_eq!(
            recorded.infections, plain.infections,
            "telemetry changes nothing"
        );
        let snap = registry.snapshot();
        assert_eq!(
            snap.counters["netmodel.hosts"],
            recorded.world.population.total_hosts() as u64
        );
        assert_eq!(
            snap.counters["netmodel.infections"],
            recorded.infections.len() as u64
        );
        assert_eq!(
            snap.counters["netmodel.phish_sites"],
            recorded.phish_sites.len() as u64
        );
        for stage in [
            "scenario",
            "scenario/world",
            "scenario/epidemic",
            "scenario/phish",
        ] {
            assert_eq!(snap.spans[stage].count, 1, "{stage} recorded once");
        }
        assert_eq!(snap.spans["scenario"].fields["scale"], "0.002");
    }
}
