//! The compromise epidemic: who gets infected, when, and for how long.
//!
//! The paper's model of attack is *opportunistic*: "the probability that a
//! machine will be compromised during some period is not a function of that
//! host's attacker … it is instead a property of the host's defenders"
//! (§1). The epidemic therefore needs no contact network: each host faces a
//! steady hazard of compromise proportional to its network's
//! (un)cleanliness, and once compromised stays so until its administrators
//! notice — which also takes longer on unclean networks. Both effects
//! concentrate infections in unclean networks (spatial uncleanliness) and
//! keep the same networks infected across months (temporal uncleanliness).

use crate::randutil::{geometric_days, pareto, poisson};
use crate::world::World;
use crossbeam::executor::Executor;
use rand::Rng;
use serde::{Deserialize, Serialize};
use unclean_core::{DateRange, Day, Ip};
use unclean_stats::SeedTree;

/// One host-compromise interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Infection {
    /// The compromised host.
    pub addr: u32,
    /// First day compromised (Day.0 value).
    pub start: i32,
    /// Last day compromised, inclusive.
    pub end: i32,
    /// Whether a botnet herder recruited this host.
    pub recruited: bool,
    /// The C&C channel the recruited host joined (meaningless when
    /// `recruited` is false).
    pub channel: u16,
}

impl Infection {
    /// Whether the host is compromised on `day`.
    pub fn active_on(&self, day: Day) -> bool {
        self.start <= day.0 && day.0 <= self.end
    }

    /// Whether the compromise interval overlaps a date range.
    pub fn overlaps(&self, range: &DateRange) -> bool {
        self.start <= range.end.0 && range.start.0 <= self.end
    }

    /// The host address.
    pub fn ip(&self) -> Ip {
        Ip(self.addr)
    }
}

/// Epidemic tunables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompromiseConfig {
    /// Per host-day compromise hazard for a fully unclean (hygiene → 0)
    /// network. Use [`calibrate_base_hazard`] to derive it from a target
    /// count instead of guessing.
    pub base_hazard: f64,
    /// Hazard scales as `(1 - hygiene)^exponent`.
    pub hygiene_exponent: f64,
    /// Mean infection lifetime on the cleanest networks (days).
    pub min_duration_mean: f64,
    /// Additional mean lifetime for unclean networks: total mean is
    /// `min + extra * (1 - hygiene)^2`.
    pub extra_duration_mean: f64,
    /// Probability a compromised host is recruited into a botnet.
    pub recruit_prob: f64,
    /// Number of C&C channels in the ecosystem.
    pub channels: u16,
    /// Pareto shape of channel popularity (some botnets are huge).
    pub channel_alpha: f64,
    /// Probability a recruited host joins a channel *homed* in its own /8
    /// (botnet geographic concentration; the paper's bot-test was 70%
    /// Turkish).
    pub channel_locality: f64,
    /// Days of burn-in simulated before the span of interest so the epidemic
    /// is in steady state by day 0.
    pub burn_in_days: u32,
}

impl Default for CompromiseConfig {
    fn default() -> CompromiseConfig {
        CompromiseConfig {
            base_hazard: 2e-3,
            // Steep: institution-B networks carry nearly all compromises,
            // matching the per-/24 infection densities the paper's §6
            // candidate analysis implies (~6 suspicious hosts per /24).
            hygiene_exponent: 4.0,
            min_duration_mean: 4.0,
            extra_duration_mean: 55.0,
            recruit_prob: 0.4,
            channels: 96,
            channel_alpha: 1.1,
            channel_locality: 0.7,
            burn_in_days: 90,
        }
    }
}

impl CompromiseConfig {
    /// Per host-day hazard in a network of the given hygiene.
    pub fn hazard(&self, hygiene: f32) -> f64 {
        self.base_hazard * (1.0 - hygiene as f64).powf(self.hygiene_exponent)
    }

    /// Mean infection lifetime in a network of the given hygiene.
    pub fn duration_mean(&self, hygiene: f32) -> f64 {
        self.min_duration_mean + self.extra_duration_mean * (1.0 - hygiene as f64).powi(2)
    }
}

/// Expected number of *distinct infection events active at some point in a
/// window* of `window_days`, for the given world and config.
///
/// For a Poisson process with rate r per host-day and mean duration D, the
/// expected number of intervals overlapping a window of length W is
/// `hosts · r · (D + W)`. Summed over blocks, this is linear in
/// `base_hazard`, which makes calibration a one-liner.
pub fn expected_active_in_window(world: &World, cfg: &CompromiseConfig, window_days: f64) -> f64 {
    let mut total = 0.0;
    for (i, (block, hygiene)) in world.blocks_with_hygiene().enumerate() {
        let r = block_rate(world, cfg, i, hygiene);
        let d = cfg.duration_mean(hygiene);
        total += block.hosts.len() as f64 * r * (d + window_days);
    }
    total
}

/// Per host-day compromise rate of one block: the hygiene hazard times the
/// block's attack exposure, with the exposure's bite damped by hygiene —
/// a worm sweeping a well-defended subnet compromises nothing, so hot
/// blocks only exist inside unclean networks.
fn block_rate(world: &World, cfg: &CompromiseConfig, block_idx: usize, hygiene: f32) -> f64 {
    let exposure = world.block_exposure(block_idx) as f64;
    cfg.hazard(hygiene) * exposure.powf(1.0 - hygiene as f64)
}

/// Scale `base_hazard` so that the expected number of infections active in
/// a `window_days` window equals `target`.
pub fn calibrate_base_hazard(
    world: &World,
    cfg: &CompromiseConfig,
    target: f64,
    window_days: f64,
) -> f64 {
    let expected = expected_active_in_window(world, cfg, window_days);
    assert!(expected > 0.0, "world has no infectable mass");
    cfg.base_hazard * target / expected
}

/// Channel metadata: popularity weights and home /8s.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChannelDirectory {
    /// Cumulative popularity weights (for weighted sampling).
    cum_weights: Vec<f64>,
    /// Home /8 of each channel.
    homes: Vec<u8>,
}

impl ChannelDirectory {
    /// Build the directory: Pareto popularity, homes spread over the /8s
    /// that actually contain population.
    pub fn generate(world: &World, cfg: &CompromiseConfig, seeds: &SeedTree) -> ChannelDirectory {
        let mut rng = seeds.stream("channels");
        let mut slash8s: Vec<u8> = world.slash16s().iter().map(|&p| (p >> 8) as u8).collect();
        slash8s.dedup();
        let mut cum = Vec::with_capacity(cfg.channels as usize);
        let mut homes = Vec::with_capacity(cfg.channels as usize);
        let mut acc = 0.0;
        for _ in 0..cfg.channels {
            acc += pareto(&mut rng, cfg.channel_alpha);
            cum.push(acc);
            homes.push(slash8s[rng.gen_range(0..slash8s.len())]);
        }
        ChannelDirectory {
            cum_weights: cum,
            homes,
        }
    }

    /// Number of channels.
    pub fn len(&self) -> usize {
        self.homes.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.homes.is_empty()
    }

    /// Home /8 of a channel.
    pub fn home(&self, channel: u16) -> u8 {
        self.homes[channel as usize]
    }

    /// Popularity weight of a channel.
    pub fn weight(&self, channel: u16) -> f64 {
        let i = channel as usize;
        if i == 0 {
            self.cum_weights[0]
        } else {
            self.cum_weights[i] - self.cum_weights[i - 1]
        }
    }

    /// Channels sorted by popularity, most popular first.
    pub fn by_popularity(&self) -> Vec<u16> {
        let mut order: Vec<u16> = (0..self.homes.len() as u16).collect();
        order.sort_by(|&a, &b| {
            self.weight(b)
                .partial_cmp(&self.weight(a))
                .expect("finite weights")
        });
        order
    }

    /// Channels homed in the given /8.
    pub fn homed_in(&self, slash8: u8) -> Vec<u16> {
        (0..self.homes.len() as u16)
            .filter(|&c| self.homes[c as usize] == slash8)
            .collect()
    }

    /// Pick a channel for a new recruit at `addr`.
    pub fn recruit_channel(&self, addr: u32, cfg: &CompromiseConfig, rng: &mut impl Rng) -> u16 {
        let s8 = (addr >> 24) as u8;
        if rng.gen_range(0.0..1.0f64) < cfg.channel_locality {
            let local = self.homed_in(s8);
            if !local.is_empty() {
                return local[rng.gen_range(0..local.len())];
            }
        }
        // Global popularity-weighted pick.
        let total = *self.cum_weights.last().expect("non-empty directory");
        let x = rng.gen_range(0.0..total);
        self.cum_weights.partition_point(|&w| w <= x) as u16
    }
}

/// Generate the full infection history for `span` (burn-in included
/// automatically: intervals may begin before `span.start`). Serial
/// convenience wrapper around [`generate_infections_with`].
pub fn generate_infections(
    world: &World,
    channels: &ChannelDirectory,
    span: DateRange,
    cfg: &CompromiseConfig,
    seeds: &SeedTree,
) -> Vec<Infection> {
    generate_infections_with(world, channels, span, cfg, seeds, &Executor::new(1))
}

/// Generate the infection history, fanning /8 shards of blocks across
/// `pool`. Every /24 draws from its own prefix-keyed stream and shard
/// outputs concatenate in block order before the final chronological
/// sort, so the result is byte-identical at any thread count.
pub fn generate_infections_with(
    world: &World,
    channels: &ChannelDirectory,
    span: DateRange,
    cfg: &CompromiseConfig,
    seeds: &SeedTree,
    pool: &Executor,
) -> Vec<Infection> {
    let gen_start = span.start.0 - cfg.burn_in_days as i32;
    let gen_days = (span.end.0 - gen_start + 1) as f64;
    let infection_seeds = seeds.child("infections");
    let shards = crate::world::slash8_block_ranges(&world.population);
    let parts = pool.run_indexed(shards.len(), |si| {
        let (lo, hi) = shards[si];
        let mut infections = Vec::new();
        for i in lo..hi {
            let block = world.population.block(i);
            let hygiene = world.block_hygiene(i);
            let rate = block_rate(world, cfg, i, hygiene);
            let lambda = block.hosts.len() as f64 * rate * gen_days;
            if lambda <= 0.0 {
                continue;
            }
            let mut rng = infection_seeds.stream_idx(block.prefix as u64);
            let n = poisson(&mut rng, lambda);
            for _ in 0..n {
                let host = block.hosts[rng.gen_range(0..block.hosts.len())];
                let addr = (block.prefix << 8) | host as u32;
                let start = gen_start + rng.gen_range(0..gen_days as i32);
                let dur = geometric_days(&mut rng, cfg.duration_mean(hygiene));
                let end = start + dur as i32 - 1;
                if end < span.start.0 {
                    continue; // cleaned up before the span of interest
                }
                let recruited = rng.gen_range(0.0..1.0f64) < cfg.recruit_prob;
                let channel = if recruited {
                    channels.recruit_channel(addr, cfg, &mut rng)
                } else {
                    0
                };
                infections.push(Infection {
                    addr,
                    start,
                    end,
                    recruited,
                    channel,
                });
            }
        }
        infections
    });
    let mut infections: Vec<Infection> = parts.into_iter().flatten().collect();
    infections.sort_by_key(|inf| (inf.start, inf.addr));
    infections
}

/// The set of infections active on a given day.
pub fn active_on(infections: &[Infection], day: Day) -> impl Iterator<Item = &Infection> {
    infections.iter().filter(move |i| i.active_on(day))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::CascadeConfig;
    use crate::world::WorldConfig;

    fn world(seed: u64) -> World {
        let cfg = WorldConfig {
            cascade: CascadeConfig {
                target_hosts: 30_000,
                ..CascadeConfig::default()
            },
            ..WorldConfig::default()
        };
        World::generate(&cfg, &SeedTree::new(seed))
    }

    fn span() -> DateRange {
        DateRange::new(Day(0), Day(120))
    }

    #[test]
    fn hazard_and_duration_scale_with_hygiene() {
        let cfg = CompromiseConfig::default();
        assert!(cfg.hazard(0.1) > cfg.hazard(0.9) * 10.0);
        assert!(cfg.duration_mean(0.05) > cfg.duration_mean(0.95) * 5.0);
        assert!(cfg.duration_mean(0.99) >= cfg.min_duration_mean);
    }

    #[test]
    fn calibration_hits_target() {
        let w = world(1);
        let mut cfg = CompromiseConfig::default();
        let target = 1500.0;
        cfg.base_hazard = calibrate_base_hazard(&w, &cfg, target, 14.0);
        let expected = expected_active_in_window(&w, &cfg, 14.0);
        assert!(
            (expected - target).abs() < 1e-6,
            "calibrated expectation {expected}"
        );

        // And the realized count is in the right ballpark.
        let channels = ChannelDirectory::generate(&w, &cfg, &SeedTree::new(1));
        let infections = generate_infections(&w, &channels, span(), &cfg, &SeedTree::new(1));
        let window = DateRange::new(Day(50), Day(63));
        let active: usize = infections.iter().filter(|i| i.overlaps(&window)).count();
        assert!(
            (target * 0.6..target * 1.5).contains(&(active as f64)),
            "realized {active} vs target {target}"
        );
    }

    #[test]
    fn infections_cluster_in_unclean_networks() {
        let w = world(2);
        let mut cfg = CompromiseConfig::default();
        cfg.base_hazard = calibrate_base_hazard(&w, &cfg, 3000.0, 14.0);
        let channels = ChannelDirectory::generate(&w, &cfg, &SeedTree::new(2));
        let infections = generate_infections(&w, &channels, span(), &cfg, &SeedTree::new(2));
        assert!(!infections.is_empty());
        // Mean hygiene of infected hosts' networks is far below the world
        // mean.
        let mut infected_h = 0.0;
        for inf in &infections {
            let p = w
                .profile_of(inf.ip())
                .expect("infected hosts are in population");
            infected_h += p.hygiene as f64;
        }
        infected_h /= infections.len() as f64;
        let world_h: f64 = (0..w.network_count())
            .map(|i| w.profile(i).hygiene as f64)
            .sum::<f64>()
            / w.network_count() as f64;
        assert!(
            infected_h < world_h - 0.15,
            "infected {infected_h:.3} vs world {world_h:.3}"
        );
    }

    #[test]
    fn durations_are_longer_in_unclean_networks() {
        let w = world(3);
        let mut cfg = CompromiseConfig::default();
        cfg.base_hazard = calibrate_base_hazard(&w, &cfg, 4000.0, 14.0);
        let channels = ChannelDirectory::generate(&w, &cfg, &SeedTree::new(3));
        let infections = generate_infections(&w, &channels, span(), &cfg, &SeedTree::new(3));
        let (mut clean_d, mut clean_n, mut dirty_d, mut dirty_n) = (0.0, 0, 0.0, 0);
        for inf in &infections {
            let h = w.profile_of(inf.ip()).expect("in population").hygiene;
            let dur = (inf.end - inf.start + 1) as f64;
            if h > 0.7 {
                clean_d += dur;
                clean_n += 1;
            } else if h < 0.3 {
                dirty_d += dur;
                dirty_n += 1;
            }
        }
        assert!(clean_n > 0 && dirty_n > 0);
        let clean_mean = clean_d / clean_n as f64;
        let dirty_mean = dirty_d / dirty_n as f64;
        assert!(
            dirty_mean > clean_mean * 2.0,
            "dirty {dirty_mean:.1}d vs clean {clean_mean:.1}d"
        );
    }

    #[test]
    fn active_on_filters_correctly() {
        let inf = Infection {
            addr: 1,
            start: 10,
            end: 20,
            recruited: false,
            channel: 0,
        };
        assert!(inf.active_on(Day(10)));
        assert!(inf.active_on(Day(20)));
        assert!(!inf.active_on(Day(9)));
        assert!(!inf.active_on(Day(21)));
        assert!(inf.overlaps(&DateRange::new(Day(20), Day(30))));
        assert!(!inf.overlaps(&DateRange::new(Day(21), Day(30))));
        let list = vec![
            inf,
            Infection {
                addr: 2,
                start: 15,
                end: 16,
                recruited: false,
                channel: 0,
            },
        ];
        assert_eq!(active_on(&list, Day(15)).count(), 2);
        assert_eq!(active_on(&list, Day(18)).count(), 1);
    }

    #[test]
    fn burn_in_produces_steady_state_at_day_zero() {
        let w = world(4);
        let mut cfg = CompromiseConfig::default();
        cfg.base_hazard = calibrate_base_hazard(&w, &cfg, 3000.0, 14.0);
        let channels = ChannelDirectory::generate(&w, &cfg, &SeedTree::new(4));
        let infections = generate_infections(&w, &channels, span(), &cfg, &SeedTree::new(4));
        let at_zero = active_on(&infections, Day(0)).count();
        let at_sixty = active_on(&infections, Day(60)).count();
        assert!(at_zero > 0, "prevalence should be non-zero at day 0");
        // Steady state: prevalence at day 0 within 3x of day 60.
        let ratio = at_zero as f64 / at_sixty.max(1) as f64;
        assert!((0.33..3.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn recruitment_and_channels() {
        let w = world(5);
        let mut cfg = CompromiseConfig::default();
        cfg.base_hazard = calibrate_base_hazard(&w, &cfg, 5000.0, 14.0);
        let channels = ChannelDirectory::generate(&w, &cfg, &SeedTree::new(5));
        assert_eq!(channels.len(), cfg.channels as usize);
        let infections = generate_infections(&w, &channels, span(), &cfg, &SeedTree::new(5));
        let recruited = infections.iter().filter(|i| i.recruited).count();
        let frac = recruited as f64 / infections.len() as f64;
        assert!(
            (frac - cfg.recruit_prob).abs() < 0.05,
            "recruit fraction {frac}"
        );
        // Channel locality: most recruits join a channel homed in their /8
        // when one exists.
        let mut local = 0;
        let mut with_local_channel = 0;
        for inf in infections.iter().filter(|i| i.recruited) {
            let s8 = (inf.addr >> 24) as u8;
            if !channels.homed_in(s8).is_empty() {
                with_local_channel += 1;
                if channels.home(inf.channel) == s8 {
                    local += 1;
                }
            }
        }
        if with_local_channel > 100 {
            let lfrac = local as f64 / with_local_channel as f64;
            assert!(lfrac > 0.5, "local recruitment fraction {lfrac}");
        }
    }

    #[test]
    fn deterministic() {
        let w = world(6);
        let cfg = CompromiseConfig::default();
        let channels = ChannelDirectory::generate(&w, &cfg, &SeedTree::new(6));
        let a = generate_infections(&w, &channels, span(), &cfg, &SeedTree::new(6));
        let b = generate_infections(&w, &channels, span(), &cfg, &SeedTree::new(6));
        assert_eq!(a, b);
    }
}
