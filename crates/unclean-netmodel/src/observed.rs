//! The observed network and its control report.
//!
//! §3.2: the observed network "is composed of over 20 million distinct IPv4
//! addresses and contains several servers that are heavily used by clients
//! across the Internet"; the control report is "47 million unique IP
//! addresses observed during the week of September 25th" in payload-bearing
//! TCP, treated as "a representative sample of active IP addresses on the
//! Internet".
//!
//! In the synthetic world the observed network occupies address space of
//! its own (outside the modeled external population), and the control
//! report is derived exactly as the paper describes: the set of external
//! hosts that engaged in payload-bearing activity with the observed network
//! during the control week — benign clients (affinity-weighted) plus
//! spammers (SMTP carries payload).

use crate::activity::{ActivityKind, ActivityModel};
use crate::randutil::uniform_hash;
use serde::{Deserialize, Serialize};
use unclean_core::{Cidr, DateRange, Ip, IpSet, Provenance, Report, ReportClass};
use unclean_stats::SeedTree;

/// The observed edge network: a set of CIDR blocks the organization owns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObservedNetwork {
    blocks: Vec<Cidr>,
}

impl ObservedNetwork {
    /// The default observed network: 30.0.0.0/8 plus four /16s — about
    /// 17M + 260k addresses, matching the paper's "over 20 million" at the
    /// same order of magnitude. (30/8 is DoD space in the 2006 map; we
    /// repurpose it as the anonymous observed network, which the cascade
    /// excludes from the external population.)
    pub fn paper_default() -> ObservedNetwork {
        ObservedNetwork {
            blocks: vec![
                "30.0.0.0/8".parse().expect("valid"),
                "55.1.0.0/16".parse().expect("valid"),
                "55.2.0.0/16".parse().expect("valid"),
                "55.3.0.0/16".parse().expect("valid"),
                "55.4.0.0/16".parse().expect("valid"),
            ],
        }
    }

    /// A custom observed network.
    pub fn new(blocks: Vec<Cidr>) -> ObservedNetwork {
        assert!(
            !blocks.is_empty(),
            "observed network needs at least one block"
        );
        ObservedNetwork { blocks }
    }

    /// The owned blocks.
    pub fn blocks(&self) -> &[Cidr] {
        &self.blocks
    }

    /// Whether an address is inside the observed network.
    pub fn contains(&self, ip: Ip) -> bool {
        self.blocks.iter().any(|c| c.contains(ip))
    }

    /// Total addresses owned.
    pub fn size(&self) -> u64 {
        self.blocks.iter().map(|c| c.size()).sum()
    }

    /// The /8s the observed network occupies (for excluding them from the
    /// external population cascade).
    pub fn slash8s(&self) -> Vec<u8> {
        let mut v: Vec<u8> = self.blocks.iter().map(|c| c.base().slash8()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// A deterministic pseudo-random target address inside the observed
    /// network (used by the flow generator to spread scan targets).
    pub fn target_addr(&self, seeds: &SeedTree, entity: u32, day: i32, nonce: u32) -> Ip {
        let u = uniform_hash(seeds, entity ^ nonce.rotate_left(16), day, "target");
        let total = self.size();
        let mut pick = (u * total as f64) as u64;
        for c in &self.blocks {
            if pick < c.size() {
                return Ip(c.first().raw() + pick as u32);
            }
            pick -= c.size();
        }
        self.blocks[0].first()
    }
}

/// Build the control report: every external host that exchanged payload
/// with the observed network during `week`.
///
/// This walks the benign layer (affinity-weighted visits) plus the spam
/// layer (SMTP is payload-bearing) — precisely the paper's "payload-bearing
/// TCP activity" criterion, which excludes SYN scanners.
pub fn control_report(model: &ActivityModel<'_>, week: DateRange) -> Report {
    let mut raw: Vec<u32> = Vec::new();
    for day in week.days() {
        model.benign_events_on(day, |e| raw.push(e.src.raw()));
        model.hostile_events_on(day, |e| {
            if let ActivityKind::Spam { .. } = e.kind {
                raw.push(e.src.raw());
            }
        });
    }
    Report::new(
        "control",
        ReportClass::Control,
        Provenance::Observed,
        week,
        IpSet::from_raw(raw),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activity::BenignConfig;
    use crate::actors::{Campaigns, TaskingConfig};
    use crate::compromise::{
        calibrate_base_hazard, generate_infections, ChannelDirectory, CompromiseConfig,
    };
    use crate::population::CascadeConfig;
    use crate::world::{World, WorldConfig};
    use unclean_core::Day;

    #[test]
    fn paper_default_shape() {
        let net = ObservedNetwork::paper_default();
        assert!(net.size() > 16_000_000, "size {}", net.size());
        assert!(net.contains("30.1.2.3".parse().expect("ok")));
        assert!(net.contains("55.2.9.9".parse().expect("ok")));
        assert!(!net.contains("55.5.0.1".parse().expect("ok")));
        assert!(!net.contains("8.8.8.8".parse().expect("ok")));
        assert_eq!(net.slash8s(), vec![30, 55]);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn empty_network_panics() {
        let _ = ObservedNetwork::new(vec![]);
    }

    #[test]
    fn target_addr_stays_inside() {
        let net = ObservedNetwork::paper_default();
        let seeds = SeedTree::new(8);
        for i in 0..2_000u32 {
            let t = net.target_addr(&seeds, i, 40, i * 3);
            assert!(net.contains(t), "{t} inside the observed network");
        }
        // Deterministic.
        assert_eq!(
            net.target_addr(&seeds, 7, 1, 2),
            net.target_addr(&seeds, 7, 1, 2)
        );
    }

    #[test]
    fn target_addrs_spread_over_blocks() {
        let net = ObservedNetwork::paper_default();
        let seeds = SeedTree::new(9);
        let mut in_slash8 = 0;
        for i in 0..2_000u32 {
            if net.target_addr(&seeds, i, 3, i).slash8() == 30 {
                in_slash8 += 1;
            }
        }
        // 30/8 is ~98% of the space.
        assert!(in_slash8 > 1_850, "{in_slash8} of 2000 land in 30/8");
    }

    #[test]
    fn control_report_is_payload_only_and_excludes_observed() {
        let wcfg = WorldConfig {
            cascade: CascadeConfig {
                target_hosts: 20_000,
                exclude_slash8s: ObservedNetwork::paper_default().slash8s(),
                ..CascadeConfig::default()
            },
            ..WorldConfig::default()
        };
        let seeds = SeedTree::new(10);
        let world = World::generate(&wcfg, &seeds);
        let mut ccfg = CompromiseConfig::default();
        ccfg.base_hazard = calibrate_base_hazard(&world, &ccfg, 800.0, 7.0);
        let channels = ChannelDirectory::generate(&world, &ccfg, &seeds);
        let week = DateRange::new(Day(0), Day(6));
        let infections = generate_infections(&world, &channels, week, &ccfg, &seeds);
        let model = ActivityModel {
            world: &world,
            infections: &infections,
            tasking: TaskingConfig::default(),
            campaigns: Campaigns::default(),
            benign: BenignConfig::default(),
            seeds: SeedTree::new(11),
        };
        let control = control_report(&model, week);
        assert_eq!(control.class(), ReportClass::Control);
        assert_eq!(control.provenance(), Provenance::Observed);
        assert!(!control.is_empty());
        // Affinity is heavy-tailed, so a week captures a sizable minority
        // of hosts, never all of them.
        let frac = control.len() as f64 / world.population.total_hosts() as f64;
        assert!((0.04..0.6).contains(&frac), "weekly coverage {frac}");
        let net = ObservedNetwork::paper_default();
        assert!(control.addresses().iter().all(|ip| !net.contains(ip)));
    }
}
