//! The world: the host population plus per-network defensive posture.
//!
//! Uncleanliness is *defined* by the paper as a latent property of a
//! network's defenders (§1's institution A vs institution B). The synthetic
//! world makes that latent property explicit: every /16 receives a hygiene
//! score in `(0, 1)` (1 = institution A: aggressive firewalling, nightly
//! reimaging; 0 = institution B: no inventory, no firewall), each /24
//! inherits its /16's score with a little noise, and a small fraction of
//! /16s are flagged as *hosting/datacenter* networks — well-run but
//! attractive to phishers, which is the paper's proposed explanation for
//! why phishing does not co-locate with botnets (§5.2).
//!
//! Every /16 also carries an *affinity* to the observed network: the
//! heavy-tailed propensity of its hosts to legitimately communicate with
//! the observed edge network. This models the locality phenomenon
//! (McHugh & Gates, cited as \[17\]) that §6 leans on: normal audiences are
//! narrow, so blocking far-away unclean /24s barely touches legitimate
//! traffic.

use crate::population::{BlockView, CascadeConfig, Population};
use crossbeam::executor::Executor;
use rand::Rng;
use serde::{Deserialize, Serialize};
use unclean_stats::SeedTree;

/// Tunables for network profiles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Cascade settings for the population.
    pub cascade: CascadeConfig,
    /// Skew of the hygiene distribution: hygiene = u^(1/gamma) for uniform
    /// u, so larger gamma pushes mass toward 1 (mostly clean networks).
    pub hygiene_gamma: f64,
    /// Fraction of /16s that are catastrophically unclean (institution B).
    pub unclean_fraction: f64,
    /// Unclean networks' hygiene is scaled into `(0, unclean_ceiling)`.
    pub unclean_ceiling: f64,
    /// Per-/24 hygiene noise half-width around the /16 score.
    pub hygiene_noise: f64,
    /// Fraction of /16s that are hosting/datacenter networks.
    pub datacenter_fraction: f64,
    /// Fraction of /16s in the observed network's *audience*: networks
    /// with a real communication relationship (McHugh & Gates locality).
    pub audience_fraction: f64,
    /// Affinity range for audience networks (multiplies the base daily
    /// visit probability).
    pub audience_affinity: (f64, f64),
    /// Affinity ceiling for every other ("remote") network — most of the
    /// Internet essentially never initiates legitimate traffic to a given
    /// edge network. Scaled by hygiene: institution-B networks have even
    /// less business with the observed network.
    pub remote_affinity_max: f64,
    /// Pareto shape of the per-/24 attack-exposure multiplier (how heavily
    /// worms pound a block once they find it; smaller = more concentrated).
    pub exposure_alpha: f64,
}

impl Default for WorldConfig {
    fn default() -> WorldConfig {
        WorldConfig {
            cascade: CascadeConfig::default(),
            hygiene_gamma: 2.6,
            unclean_fraction: 0.03,
            unclean_ceiling: 0.25,
            hygiene_noise: 0.04,
            datacenter_fraction: 0.04,
            audience_fraction: 0.25,
            audience_affinity: (0.35, 1.5),
            remote_affinity_max: 0.025,
            exposure_alpha: 1.08,
        }
    }
}

/// The defensive profile of a /16 network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkProfile {
    /// Hygiene in `(0, 1)`; low = unclean.
    pub hygiene: f32,
    /// Whether this is a hosting/datacenter network.
    pub datacenter: bool,
    /// Multiplier on the base daily visit probability: ≳ 1 for audience
    /// networks, ≈ 0 for the remote majority.
    pub affinity: f32,
}

impl NetworkProfile {
    /// Whether the network belongs to the observed network's audience.
    pub fn is_audience(&self) -> bool {
        self.affinity >= 0.5
    }
}

/// The world: population + aligned per-/24 profiles + per-/16 profiles.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct World {
    /// The active-host population.
    pub population: Population,
    /// Sorted /16 prefixes (address >> 16) that contain active hosts.
    slash16s: Vec<u32>,
    /// Profile per /16, aligned with `slash16s`.
    profiles: Vec<NetworkProfile>,
    /// Per-/24 hygiene, aligned with `population` block order.
    block_hygiene: Vec<f32>,
    /// Interned /16 index per /24 block (index into `slash16s`/`profiles`),
    /// aligned with `population` block order. Replaces the per-call binary
    /// search the per-host hot paths (benign visit probability, datacenter
    /// tests) used to pay.
    block_slash16: Vec<u32>,
    /// Per-/24 attack-exposure multiplier (mean 1), aligned with
    /// `population` block order. Worm propagation is subnet-bursty: once a
    /// block is found, it is swept — so compromise hazard concentrates in
    /// "hot" blocks, and the same blocks stay hot for the whole simulated
    /// year (a key source of both spatial and temporal uncleanliness).
    block_exposure: Vec<f32>,
}

/// Contiguous runs of population blocks sharing a /8, as `lo..hi` block
/// index ranges. These are the generation shards: boundaries depend only
/// on the population (never on the worker count), so sharded generation
/// is byte-identical at any thread count.
pub(crate) fn slash8_block_ranges(population: &Population) -> Vec<(usize, usize)> {
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    for i in 0..population.block_count() {
        let s8 = population.block(i).prefix >> 16;
        match ranges.last_mut() {
            Some((lo, hi)) if population.block(*lo).prefix >> 16 == s8 => *hi = i + 1,
            _ => ranges.push((i, i + 1)),
        }
    }
    ranges
}

impl World {
    /// Generate population and profiles (serial convenience wrapper around
    /// [`World::generate_with`]).
    pub fn generate(cfg: &WorldConfig, seeds: &SeedTree) -> World {
        World::generate_with(cfg, seeds, &Executor::new(1))
    }

    /// Generate population and profiles, fanning the per-/24 work (hygiene
    /// noise, attack exposure, /16 interning) across `pool` in /8 shards.
    /// Every per-/24 draw comes from its own prefix-keyed RNG stream, so
    /// the result is byte-identical at any thread count.
    pub fn generate_with(cfg: &WorldConfig, seeds: &SeedTree, pool: &Executor) -> World {
        let population = Population::generate_with(&cfg.cascade, seeds, pool);

        // Distinct /16s in population order.
        let mut slash16s: Vec<u32> = population.blocks().map(|b| b.prefix >> 8).collect();
        slash16s.dedup();

        let mut rng = seeds.stream("world-profiles");
        let mut profiles = Vec::with_capacity(slash16s.len());
        for _ in &slash16s {
            let u: f64 = rng.gen_range(0.0..1.0);
            let mut hygiene = u.powf(1.0 / cfg.hygiene_gamma);
            let datacenter = rng.gen_range(0.0..1.0f64) < cfg.datacenter_fraction;
            if datacenter {
                // Hosting networks are professionally run.
                hygiene = hygiene.max(0.9);
            } else if rng.gen_range(0.0..1.0f64) < cfg.unclean_fraction {
                // Institution B: catastrophic posture.
                hygiene *= cfg.unclean_ceiling;
            }
            // Audience membership requires a working relationship with the
            // observed network — institution-B networks (no inventory, no
            // firewall) are not its business partners. This is the §6.2
            // demographics observation: the unclean networks' legitimate
            // traffic toward the observed network was negligible.
            let audience_draw = rng.gen_range(0.0..1.0f64);
            let audience_aff = rng.gen_range(cfg.audience_affinity.0..cfg.audience_affinity.1);
            let remote_u: f64 = rng.gen_range(0.0..1.0);
            let affinity = if hygiene >= 0.7 && audience_draw < cfg.audience_fraction {
                audience_aff
            } else {
                // Remote networks: vanishingly small, skewed toward zero,
                // and smaller still for poorly run networks.
                remote_u * remote_u * cfg.remote_affinity_max * hygiene
            } as f32;
            profiles.push(NetworkProfile {
                hygiene: hygiene.clamp(0.005, 0.995) as f32,
                datacenter,
                affinity,
            });
        }

        // Per-/24 hygiene noise, attack exposure, and the interned /16
        // index, one /8 shard per job. Each /24 draws from its own
        // prefix-keyed stream, so a shard regenerates its blocks without
        // consuming any other shard's randomness.
        let hygiene_seeds = seeds.child("world-block-hygiene");
        let exposure_seeds = seeds.child("world-exposure");
        let shards = slash8_block_ranges(&population);
        let parts = pool.run_indexed(shards.len(), |si| {
            let (lo, hi) = shards[si];
            let mut hygiene = Vec::with_capacity(hi - lo);
            let mut slash16_idx = Vec::with_capacity(hi - lo);
            let mut raw_exposure = Vec::with_capacity(hi - lo);
            let mut exposure_sum = 0.0f64;
            for i in lo..hi {
                let b = population.block(i);
                let idx = slash16s
                    .binary_search(&(b.prefix >> 8))
                    .expect("every block's /16 is registered");
                slash16_idx.push(idx as u32);
                let base = profiles[idx].hygiene;
                let mut rng24 = hygiene_seeds.stream_idx(b.prefix as u64);
                let noise = rng24.gen_range(-cfg.hygiene_noise..=cfg.hygiene_noise) as f32;
                hygiene.push((base + noise).clamp(0.005, 0.995));
                let mut rng_exp = exposure_seeds.stream_idx(b.prefix as u64);
                let e = crate::randutil::pareto(&mut rng_exp, cfg.exposure_alpha);
                exposure_sum += e;
                raw_exposure.push(e);
            }
            (hygiene, slash16_idx, raw_exposure, exposure_sum)
        });

        // Exposure is heavy-tailed but normalized to mean 1 so the
        // analytic hazard calibration stays exact. The mean folds partial
        // sums in shard order — deterministic at any thread count.
        let total_exposure: f64 = parts.iter().map(|(_, _, _, s)| s).sum();
        let mean_exp = total_exposure / population.block_count().max(1) as f64;
        let mut block_hygiene = Vec::with_capacity(population.block_count());
        let mut block_slash16 = Vec::with_capacity(population.block_count());
        let mut block_exposure = Vec::with_capacity(population.block_count());
        for (hygiene, slash16_idx, raw_exposure, _) in parts {
            block_hygiene.extend(hygiene);
            block_slash16.extend(slash16_idx);
            block_exposure.extend(raw_exposure.into_iter().map(|e| (e / mean_exp) as f32));
        }

        World {
            population,
            slash16s,
            profiles,
            block_hygiene,
            block_slash16,
            block_exposure,
        }
    }

    /// Number of distinct /16 networks.
    pub fn network_count(&self) -> usize {
        self.slash16s.len()
    }

    /// Profile of the /16 containing an address (None if no active hosts
    /// there).
    pub fn profile_of(&self, ip: unclean_core::Ip) -> Option<&NetworkProfile> {
        self.slash16s
            .binary_search(&(ip.raw() >> 16))
            .ok()
            .map(|i| &self.profiles[i])
    }

    /// Profile by /16 index.
    pub fn profile(&self, slash16_idx: usize) -> &NetworkProfile {
        &self.profiles[slash16_idx]
    }

    /// The /16 prefixes with profiles, aligned with indices.
    pub fn slash16s(&self) -> &[u32] {
        &self.slash16s
    }

    /// Hygiene of population block `i` (aligned with
    /// [`Population::block`]).
    pub fn block_hygiene(&self, i: usize) -> f32 {
        self.block_hygiene[i]
    }

    /// Attack-exposure multiplier of population block `i` (mean 1 across
    /// the world).
    pub fn block_exposure(&self, i: usize) -> f32 {
        self.block_exposure[i]
    }

    /// Whether population block `i` sits in a datacenter /16.
    pub fn block_datacenter(&self, i: usize) -> bool {
        self.profiles[self.block_slash16[i] as usize].datacenter
    }

    /// Audience affinity of block `i` (the /16's visit-probability
    /// multiplier).
    pub fn block_affinity(&self, i: usize) -> f64 {
        self.profiles[self.block_slash16[i] as usize].affinity as f64
    }

    /// Iterate blocks together with their hygiene.
    pub fn blocks_with_hygiene(&self) -> impl Iterator<Item = (BlockView<'_>, f32)> {
        (0..self.population.block_count())
            .map(move |i| (self.population.block(i), self.block_hygiene[i]))
    }

    /// Raise the latent hygiene of /16 `slash16_idx` toward 1 by `lift`
    /// (0 = no change, 1 = perfectly clean): `h' = h + (1 − h)·lift`.
    /// Member /24 blocks move by the same transform, so their relative
    /// noise around the /16 score shrinks but never inverts. Returns the
    /// new /16 hygiene. This is the mutation a notify-and-cleanup
    /// campaign applies (see [`crate::remediation`]).
    pub fn raise_hygiene(&mut self, slash16_idx: usize, lift: f64) -> f32 {
        let lift = lift.clamp(0.0, 1.0) as f32;
        let p = &mut self.profiles[slash16_idx];
        p.hygiene = (p.hygiene + (1.0 - p.hygiene) * lift).clamp(0.005, 0.995);
        let prefix16 = self.slash16s[slash16_idx];
        for i in 0..self.population.block_count() {
            if self.population.block(i).prefix >> 8 == prefix16 {
                let h = self.block_hygiene[i];
                self.block_hygiene[i] = (h + (1.0 - h) * lift).clamp(0.005, 0.995);
            }
        }
        self.profiles[slash16_idx].hygiene
    }

    /// Indices of datacenter blocks (phishing hosting candidates).
    pub fn datacenter_blocks(&self) -> Vec<usize> {
        (0..self.population.block_count())
            .filter(|&i| self.block_datacenter(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world(seed: u64) -> World {
        let cfg = WorldConfig {
            cascade: CascadeConfig {
                target_hosts: 40_000,
                ..CascadeConfig::default()
            },
            ..WorldConfig::default()
        };
        World::generate(&cfg, &SeedTree::new(seed))
    }

    #[test]
    fn deterministic() {
        let a = small_world(1);
        let b = small_world(1);
        assert_eq!(a.slash16s, b.slash16s);
        assert_eq!(a.block_hygiene, b.block_hygiene);
    }

    #[test]
    fn every_block_has_a_profile() {
        let w = small_world(2);
        assert_eq!(w.block_hygiene.len(), w.population.block_count());
        for i in 0..w.population.block_count() {
            let h = w.block_hygiene(i);
            assert!((0.0..=1.0).contains(&h));
            let ip = w.population.block(i).addr(0);
            assert!(w.profile_of(ip).is_some());
        }
    }

    #[test]
    fn hygiene_is_skewed_clean_with_unclean_tail() {
        let w = small_world(3);
        let hygienes: Vec<f32> = (0..w.network_count())
            .map(|i| w.profile(i).hygiene)
            .collect();
        let n = hygienes.len() as f64;
        let clean = hygienes.iter().filter(|&&h| h > 0.7).count() as f64 / n;
        let filthy = hygienes.iter().filter(|&&h| h < 0.25).count() as f64 / n;
        assert!(clean > 0.45, "most networks are clean-ish: {clean}");
        assert!(filthy > 0.03, "an unclean minority exists: {filthy}");
        assert!(filthy < 0.30, "unclean networks stay a minority: {filthy}");
    }

    #[test]
    fn slash24_hygiene_tracks_slash16() {
        let w = small_world(4);
        for i in (0..w.population.block_count()).step_by(7) {
            let ip = w.population.block(i).addr(0);
            let h16 = w.profile_of(ip).expect("registered").hygiene;
            let h24 = w.block_hygiene(i);
            assert!(
                (h16 - h24).abs() <= 0.05,
                "block hygiene {h24} near its /16's {h16}"
            );
        }
    }

    #[test]
    fn datacenters_are_clean_and_minority() {
        let w = small_world(5);
        let dc: Vec<usize> = w.datacenter_blocks();
        assert!(!dc.is_empty(), "some datacenter blocks exist");
        assert!(
            dc.len() < w.population.block_count() / 5,
            "datacenters are a minority"
        );
        for &i in dc.iter().take(50) {
            let ip = w.population.block(i).addr(0);
            let p = w.profile_of(ip).expect("registered");
            assert!(p.datacenter);
            assert!(p.hygiene >= 0.85, "datacenters are well-run: {}", p.hygiene);
        }
    }

    #[test]
    fn affinity_is_a_narrow_audience() {
        // Locality: a small audience with real affinity, a large remote
        // majority with almost none.
        let w = small_world(6);
        let n = w.network_count();
        let audience = (0..n).filter(|&i| w.profile(i).is_audience()).count();
        let frac = audience as f64 / n as f64;
        assert!((0.06..0.20).contains(&frac), "audience fraction {frac}");
        let affs: Vec<f64> = (0..w.population.block_count())
            .step_by(3)
            .map(|i| w.block_affinity(i))
            .collect();
        let median = {
            let mut s = affs.clone();
            s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            s[s.len() / 2]
        };
        assert!(median < 0.05, "the median network is remote: {median}");
        let max = affs.iter().cloned().fold(0.0, f64::max);
        assert!(max > 0.8, "audience networks exist among blocks: {max}");
    }

    #[test]
    fn profile_of_unpopulated_space_is_none() {
        let w = small_world(7);
        // 1/8 is unallocated in the 2006 map, so never populated.
        assert!(w.profile_of(unclean_core::Ip(1 << 24)).is_none());
    }
}
