//! Remediation interventions: notify-and-cleanup campaigns.
//!
//! The paper closes by suggesting uncleanliness predictions could steer
//! *proactive* defense. AbuseHUB-style clearinghouses take the next step:
//! notify the worst networks and measure whether coordinated cleanup
//! actually bends the infection curve. This module models that
//! counterfactual on the synthetic world: at day D a campaign notifies a
//! target set of /16 networks; a complying network's latent hygiene
//! rises, its active infections are cleaned after a short lag, and its
//! *future* compromise hazard and infection lifetimes shrink to match the
//! new hygiene.
//!
//! The transform is applied to an already-generated infection history, so
//! the same seeded epidemic can be replayed with and without the
//! intervention and differenced exactly. All decisions use stable hashes
//! keyed on (network, day) or (host, start-day), so outcomes are
//! deterministic and independent of iteration order or thread count.

use crate::compromise::{CompromiseConfig, Infection};
use crate::randutil::uniform_hash;
use crate::world::World;
use serde::{Deserialize, Serialize};
use unclean_core::Day;
use unclean_stats::SeedTree;

/// A notify-and-cleanup campaign against a set of /16 networks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Remediation {
    /// The day operators are notified.
    pub day: Day,
    /// Probability a notified network complies (cleans up and hardens).
    pub compliance: f64,
    /// Hygiene lift applied to complying networks:
    /// `h' = h + (1 − h)·lift`.
    pub hygiene_lift: f64,
    /// Days between notification and completed cleanup.
    pub cleanup_lag_days: u32,
    /// Targeted /16 prefixes (address >> 16).
    pub targets: Vec<u32>,
}

impl Remediation {
    /// Target the `top_k` lowest-hygiene /16s of `world` — the campaign a
    /// forecaster would recommend.
    pub fn targeting_worst(
        world: &World,
        top_k: usize,
        day: Day,
        compliance: f64,
        hygiene_lift: f64,
    ) -> Remediation {
        let mut by_hygiene: Vec<(f32, u32)> = world
            .slash16s()
            .iter()
            .enumerate()
            .map(|(i, &prefix)| (world.profile(i).hygiene, prefix))
            .collect();
        by_hygiene.sort_by(|a, b| a.partial_cmp(b).expect("finite hygiene"));
        Remediation {
            day,
            compliance,
            hygiene_lift,
            cleanup_lag_days: 3,
            targets: by_hygiene
                .into_iter()
                .take(top_k)
                .map(|(_, prefix)| prefix)
                .collect(),
        }
    }

    /// Apply the campaign: mutate `world` hygiene for complying networks
    /// and rewrite `infections` in place — active infections are
    /// truncated at the cleanup day, future infections are thinned by
    /// the hazard ratio and shortened by the lifetime ratio implied by
    /// the hygiene change. Infections stay sorted by `(start, addr)`.
    pub fn apply(
        &self,
        world: &mut World,
        infections: &mut Vec<Infection>,
        cfg: &CompromiseConfig,
        seeds: &SeedTree,
    ) -> RemediationOutcome {
        let seeds = seeds.child("remediation");
        let mut outcome = RemediationOutcome {
            notified: self.targets.len(),
            ..RemediationOutcome::default()
        };
        // (prefix16, keep_ratio, shrink_ratio) per complying network.
        let mut complied: Vec<(u32, f64, f64)> = Vec::new();
        for &prefix16 in &self.targets {
            let Ok(idx) = world.slash16s().binary_search(&prefix16) else {
                continue; // no active hosts there
            };
            if uniform_hash(&seeds, prefix16, self.day.0, "comply") >= self.compliance {
                continue;
            }
            let before = world.profile(idx).hygiene;
            outcome.hygiene_before_sum += before as f64;
            let after = world.raise_hygiene(idx, self.hygiene_lift);
            outcome.hygiene_after_sum += after as f64;
            let keep = (cfg.hazard(after) / cfg.hazard(before)).clamp(0.0, 1.0);
            let shrink = (cfg.duration_mean(after) / cfg.duration_mean(before)).clamp(0.0, 1.0);
            complied.push((prefix16, keep, shrink));
            outcome.complied += 1;
        }
        complied.sort_unstable_by_key(|&(p, _, _)| p);

        let cleanup_day = self.day.0 + self.cleanup_lag_days as i32;
        infections.retain_mut(|inf| {
            let Ok(i) = complied.binary_search_by_key(&(inf.addr >> 16), |&(p, _, _)| p) else {
                return true;
            };
            let (_, keep, shrink) = complied[i];
            if inf.start <= cleanup_day {
                // Pre-campaign compromise: cleaned once the operators
                // finish their sweep (if still alive by then).
                if inf.end > cleanup_day {
                    inf.end = cleanup_day;
                    outcome.cleaned += 1;
                }
                return true;
            }
            // Post-campaign compromise: the hardened network would have
            // averted a fraction of these entirely …
            if uniform_hash(&seeds, inf.addr, inf.start, "avert") >= keep {
                outcome.averted += 1;
                return false;
            }
            // … and notices the rest sooner.
            let dur = (inf.end - inf.start + 1) as f64;
            let new_dur = (dur * shrink).round().max(1.0) as i32;
            if new_dur < dur as i32 {
                inf.end = inf.start + new_dur - 1;
                outcome.shortened += 1;
            }
            true
        });
        outcome
    }
}

/// What a campaign changed.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RemediationOutcome {
    /// Networks notified (targets, whether or not populated).
    pub notified: usize,
    /// Networks that complied and were hardened.
    pub complied: usize,
    /// Active infections truncated at the cleanup day.
    pub cleaned: usize,
    /// Future infections that never happen under the new hazard.
    pub averted: usize,
    /// Future infections whose lifetime shrank.
    pub shortened: usize,
    /// Sum of complying networks' hygiene before the lift.
    pub hygiene_before_sum: f64,
    /// Sum of complying networks' hygiene after the lift.
    pub hygiene_after_sum: f64,
}

impl RemediationOutcome {
    /// Mean hygiene of complying networks before the campaign.
    pub fn mean_hygiene_before(&self) -> f64 {
        self.hygiene_before_sum / self.complied.max(1) as f64
    }

    /// Mean hygiene of complying networks after the campaign.
    pub fn mean_hygiene_after(&self) -> f64 {
        self.hygiene_after_sum / self.complied.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compromise::{
        active_on, calibrate_base_hazard, generate_infections, ChannelDirectory,
    };
    use crate::population::CascadeConfig;
    use crate::world::WorldConfig;
    use unclean_core::DateRange;

    fn setup(seed: u64) -> (World, CompromiseConfig, Vec<Infection>) {
        let cfg = WorldConfig {
            cascade: CascadeConfig {
                target_hosts: 30_000,
                ..CascadeConfig::default()
            },
            ..WorldConfig::default()
        };
        let world = World::generate(&cfg, &SeedTree::new(seed));
        let mut ccfg = CompromiseConfig::default();
        ccfg.base_hazard = calibrate_base_hazard(&world, &ccfg, 3000.0, 14.0);
        let channels = ChannelDirectory::generate(&world, &ccfg, &SeedTree::new(seed));
        let span = DateRange::new(Day(0), Day(180));
        let infections = generate_infections(&world, &channels, span, &ccfg, &SeedTree::new(seed));
        (world, ccfg, infections)
    }

    #[test]
    fn remediation_cuts_prevalence_after_day_d() {
        let (world, ccfg, baseline) = setup(11);
        let mut treated_world = world.clone();
        let mut treated = baseline.clone();
        let campaign = Remediation::targeting_worst(&world, 24, Day(90), 1.0, 0.8);
        let outcome = campaign.apply(&mut treated_world, &mut treated, &ccfg, &SeedTree::new(11));
        assert_eq!(outcome.complied, outcome.notified.min(24));
        assert!(outcome.cleaned > 0, "active infections get cleaned");
        assert!(outcome.mean_hygiene_after() > outcome.mean_hygiene_before());

        let before_base = active_on(&baseline, Day(85)).count();
        let before_treated = active_on(&treated, Day(85)).count();
        assert_eq!(before_base, before_treated, "pre-campaign days untouched");

        let after_base = active_on(&baseline, Day(140)).count();
        let after_treated = active_on(&treated, Day(140)).count();
        assert!(
            (after_treated as f64) < after_base as f64 * 0.8,
            "prevalence drops: {after_treated} vs {after_base}"
        );
    }

    #[test]
    fn zero_compliance_is_a_no_op() {
        let (world, ccfg, baseline) = setup(12);
        let mut w = world.clone();
        let mut treated = baseline.clone();
        let campaign = Remediation::targeting_worst(&world, 24, Day(90), 0.0, 0.8);
        let outcome = campaign.apply(&mut w, &mut treated, &ccfg, &SeedTree::new(12));
        assert_eq!(outcome.complied, 0);
        assert_eq!(treated, baseline);
    }

    #[test]
    fn apply_is_deterministic() {
        let (world, ccfg, baseline) = setup(13);
        let campaign = Remediation::targeting_worst(&world, 16, Day(60), 0.7, 0.6);
        let run = || {
            let mut w = world.clone();
            let mut infs = baseline.clone();
            campaign.apply(&mut w, &mut infs, &ccfg, &SeedTree::new(13));
            infs
        };
        let a = run();
        assert_eq!(a, run());
        // Sorted-by-(start, addr) invariant survives the rewrite.
        assert!(a
            .windows(2)
            .all(|w| (w[0].start, w[0].addr) <= (w[1].start, w[1].addr)));
    }
}
