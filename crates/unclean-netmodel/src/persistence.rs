//! Block-level uncleanliness persistence.
//!
//! The temporal uncleanliness hypothesis is, mechanically, a survival
//! claim: once a /24 contains a compromised host, how long does it keep
//! containing one? The paper infers this indirectly (a five-month-old
//! report still predicts); with the simulation's ground truth we can
//! measure it directly as a survival curve
//! `S(Δ) = P(block unclean at t + Δ | block unclean at t)`, the quantity
//! an operator needs to pick a block-list refresh interval.

use crate::compromise::Infection;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use unclean_core::{DateRange, Day};

/// Per-/24 union of compromise intervals.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockTimeline {
    /// Disjoint, sorted (start, end) day intervals when the block held at
    /// least one compromised host.
    pub intervals: Vec<(i32, i32)>,
}

impl BlockTimeline {
    /// Whether the block is unclean on a given day.
    pub fn unclean_on(&self, day: Day) -> bool {
        self.intervals
            .binary_search_by(|&(s, e)| {
                if e < day.0 {
                    std::cmp::Ordering::Less
                } else if s > day.0 {
                    std::cmp::Ordering::Greater
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Total unclean days.
    pub fn unclean_days(&self) -> u32 {
        self.intervals
            .iter()
            .map(|&(s, e)| (e - s + 1) as u32)
            .sum()
    }
}

/// Block timelines for a whole infection history, at /24 granularity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UncleanTimelines {
    /// Map from /24 prefix (address >> 8) to its timeline.
    timelines: HashMap<u32, BlockTimeline>,
}

impl UncleanTimelines {
    /// Build from an infection history: per /24, merge overlapping
    /// compromise intervals.
    pub fn build(infections: &[Infection]) -> UncleanTimelines {
        let mut per_block: HashMap<u32, Vec<(i32, i32)>> = HashMap::new();
        for inf in infections {
            per_block
                .entry(inf.addr >> 8)
                .or_default()
                .push((inf.start, inf.end));
        }
        let timelines = per_block
            .into_iter()
            .map(|(prefix, mut ivals)| {
                ivals.sort_unstable();
                let mut merged: Vec<(i32, i32)> = Vec::with_capacity(ivals.len());
                for (s, e) in ivals {
                    match merged.last_mut() {
                        Some(last) if s <= last.1 + 1 => last.1 = last.1.max(e),
                        _ => merged.push((s, e)),
                    }
                }
                (prefix, BlockTimeline { intervals: merged })
            })
            .collect();
        UncleanTimelines { timelines }
    }

    /// Number of /24s that were ever unclean.
    pub fn len(&self) -> usize {
        self.timelines.len()
    }

    /// Whether no block was ever unclean.
    pub fn is_empty(&self) -> bool {
        self.timelines.is_empty()
    }

    /// The timeline of a /24 prefix (address >> 8), if it was ever unclean.
    pub fn timeline(&self, prefix24: u32) -> Option<&BlockTimeline> {
        self.timelines.get(&prefix24)
    }

    /// The survival curve: for each lag Δ in `lags`, the fraction of
    /// (block, day) pairs unclean on `day` that are still (or again)
    /// unclean on `day + Δ`. Days are sampled from `window` at `stride`-day
    /// spacing to bound cost.
    pub fn survival(&self, window: DateRange, stride: u32, lags: &[u32]) -> Vec<(u32, f64)> {
        assert!(stride >= 1, "stride must be at least one day");
        let mut results = Vec::with_capacity(lags.len());
        for &lag in lags {
            let mut at_risk = 0u64;
            let mut survived = 0u64;
            for tl in self.timelines.values() {
                let mut day = window.start;
                while day <= window.end {
                    if tl.unclean_on(day) {
                        at_risk += 1;
                        if tl.unclean_on(day + lag as i32) {
                            survived += 1;
                        }
                    }
                    day = day + stride as i32;
                }
            }
            let s = if at_risk == 0 {
                0.0
            } else {
                survived as f64 / at_risk as f64
            };
            results.push((lag, s));
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inf(addr: u32, start: i32, end: i32) -> Infection {
        Infection {
            addr,
            start,
            end,
            recruited: false,
            channel: 0,
        }
    }

    #[test]
    fn intervals_merge_per_block() {
        // Same /24 (addresses 0x0901_01xx): overlapping and adjacent
        // intervals merge; a distant one stays separate.
        let infections = vec![
            inf(0x0901_0101, 10, 20),
            inf(0x0901_0102, 15, 30),
            inf(0x0901_0103, 31, 40), // adjacent → merges
            inf(0x0901_0104, 100, 110),
            inf(0x0902_0101, 5, 6), // different /24
        ];
        let t = UncleanTimelines::build(&infections);
        assert_eq!(t.len(), 2);
        let tl = t.timeline(0x0009_0101).expect("present");
        assert_eq!(tl.intervals, vec![(10, 40), (100, 110)]);
        assert_eq!(tl.unclean_days(), 31 + 11);
    }

    #[test]
    fn unclean_on_boundaries() {
        let t = UncleanTimelines::build(&[inf(0x0901_0101, 10, 20)]);
        let tl = t.timeline(0x0009_0101).expect("present");
        assert!(tl.unclean_on(Day(10)));
        assert!(tl.unclean_on(Day(20)));
        assert!(!tl.unclean_on(Day(9)));
        assert!(!tl.unclean_on(Day(21)));
    }

    #[test]
    fn survival_of_permanent_block_is_one() {
        let t = UncleanTimelines::build(&[inf(0x0901_0101, 0, 1000)]);
        let s = t.survival(DateRange::new(Day(0), Day(100)), 10, &[7, 30, 150]);
        for (_, v) in s {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn survival_decays_with_lag() {
        // Blocks unclean for 30 days starting at staggered offsets.
        let infections: Vec<Infection> = (0..50)
            .map(|i| inf(0x0901_0100 + (i << 8), i as i32 * 3, i as i32 * 3 + 29))
            .collect();
        let t = UncleanTimelines::build(&infections);
        let s = t.survival(DateRange::new(Day(0), Day(150)), 1, &[0, 7, 30, 60]);
        assert_eq!(s[0].1, 1.0, "zero lag is identity");
        assert!(s[1].1 > s[2].1, "7-day survival beats 30-day");
        assert!(
            s[2].1 < 0.2,
            "30-day lag outlives the 30-day infections rarely"
        );
        assert!(s[3].1 < s[2].1 + 1e-9);
    }

    #[test]
    fn survival_counts_reinfection_as_survival() {
        // Unclean at day 0-10 and again 50-60: a 50-day lag from day 0-10
        // lands in the second interval.
        let t = UncleanTimelines::build(&[inf(0x0901_0101, 0, 10), inf(0x0901_0102, 50, 60)]);
        let s = t.survival(DateRange::new(Day(0), Day(10)), 1, &[50]);
        assert_eq!(s[0].1, 1.0);
    }

    #[test]
    fn empty_history() {
        let t = UncleanTimelines::build(&[]);
        assert!(t.is_empty());
        let s = t.survival(DateRange::new(Day(0), Day(10)), 1, &[7]);
        assert_eq!(s[0].1, 0.0);
    }

    #[test]
    fn synthetic_world_has_long_horizon_persistence() {
        // The property the whole paper rests on, measured on ground truth.
        use crate::scenario::{Scenario, ScenarioConfig};
        let s = Scenario::generate(ScenarioConfig::at_scale(0.001, 5));
        let t = UncleanTimelines::build(&s.infections);
        let window = DateRange::new(Day(0), Day(120));
        let curve = t.survival(window, 7, &[7, 30, 90, 150]);
        let get = |lag: u32| curve.iter().find(|(l, _)| *l == lag).expect("present").1;
        assert!(
            get(7) > 0.5,
            "a week later most unclean /24s are still unclean: {}",
            get(7)
        );
        assert!(get(30) > 0.3, "30-day persistence: {}", get(30));
        assert!(
            get(150) > 0.1,
            "five-month persistence is what makes bot-test work: {}",
            get(150)
        );
        assert!(get(7) >= get(30) && get(30) >= get(150), "monotone decay");
    }
}
