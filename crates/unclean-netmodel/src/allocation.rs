//! The IANA IPv4 /8 allocation map, circa late 2006.
//!
//! §4.2 of the paper builds its *naive* population estimate by selecting
//! addresses "evenly from across all /8's which are listed as populated by
//! IANA". This module encodes an approximation of that map as it stood at
//! the paper's observation window (October 2006): which /8s were allocated
//! (to RIRs or legacy holders) and could therefore contain hosts, which
//! sat in the IANA free pool, and which are protocol-reserved.
//!
//! The table is reconstructed from the IANA ipv4-address-space registry
//! history. A handful of /8s changed hands within weeks of the paper's
//! window (e.g. 96–99/8 went to ARIN in October 2006); their exact
//! classification only perturbs the naive estimate by a percent or two,
//! which the analyses are insensitive to.

/// Status of a /8 in the 2006 allocation map.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Slash8Status {
    /// Assigned to an RIR or a legacy holder — may contain reachable hosts.
    Allocated,
    /// In the IANA free pool in October 2006.
    Unallocated,
    /// Protocol-reserved (0/8, 10/8, 127/8, multicast, class E).
    Reserved,
}

/// The late-2006 status of a /8.
pub fn slash8_status(slash8: u8) -> Slash8Status {
    use Slash8Status::*;
    match slash8 {
        // Protocol-reserved space.
        0 | 10 | 127 => Reserved,
        224..=255 => Reserved,
        // The IANA free pool as of October 2006.
        1 | 2 | 5 | 7 => Unallocated,
        23 | 27 | 31 | 36 | 37 | 39 | 42 | 46 | 49 | 50 => Unallocated,
        92..=120 => Unallocated,
        173..=188 => Unallocated,
        223 => Unallocated,
        // Everything else: RIR or legacy allocations (3/8 GE, 4/8 Level 3,
        // 9/8 IBM, ..., 24/8 cable, 58–61 APNIC, 62 RIPE, 63–76 ARIN,
        // 77–91 RIPE, 121–126 APNIC, 128–172 legacy class B space,
        // 189–190 LACNIC, 191–222 RIR class C space).
        _ => Allocated,
    }
}

/// The allocated /8s, ascending. This is the population universe for the
/// naive density estimator and the synthetic address cascade.
pub fn allocated_slash8s() -> Vec<u8> {
    (0u8..=255)
        .filter(|&s| slash8_status(s) == Slash8Status::Allocated)
        .collect()
}

/// The number of allocated /8s.
pub fn allocated_count() -> usize {
    allocated_slash8s().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_reserved_ranges() {
        assert_eq!(slash8_status(0), Slash8Status::Reserved);
        assert_eq!(slash8_status(10), Slash8Status::Reserved);
        assert_eq!(slash8_status(127), Slash8Status::Reserved);
        assert_eq!(slash8_status(224), Slash8Status::Reserved);
        assert_eq!(slash8_status(239), Slash8Status::Reserved);
        assert_eq!(slash8_status(255), Slash8Status::Reserved);
    }

    #[test]
    fn known_allocations() {
        // Legacy class A holders and RIR space present in 2006.
        for s in [
            3u8, 4, 9, 12, 17, 18, 24, 58, 62, 64, 80, 121, 126, 128, 160, 172, 192, 204, 218, 222,
        ] {
            assert_eq!(slash8_status(s), Slash8Status::Allocated, "{s}/8");
        }
    }

    #[test]
    fn known_free_pool() {
        // Famously unallocated until years later: 1/8 (APNIC 2010),
        // 5/8 (RIPE 2010), 100–120 range (2007–2011), 173–186 (2008+).
        for s in [1u8, 2, 5, 7, 23, 36, 39, 46, 100, 110, 120, 173, 186, 223] {
            assert_eq!(slash8_status(s), Slash8Status::Unallocated, "{s}/8");
        }
    }

    #[test]
    fn allocated_list_is_sorted_and_consistent() {
        let list = allocated_slash8s();
        assert!(list.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(list.len(), allocated_count());
        assert!(list
            .iter()
            .all(|&s| slash8_status(s) == Slash8Status::Allocated));
        // The 2006 Internet had well over 100 but under 180 populated /8s.
        assert!(
            (100..180).contains(&list.len()),
            "plausible 2006 allocation count, got {}",
            list.len()
        );
    }

    #[test]
    fn statuses_partition_the_space() {
        let mut counts = [0usize; 3];
        for s in 0u8..=255 {
            match slash8_status(s) {
                Slash8Status::Allocated => counts[0] += 1,
                Slash8Status::Unallocated => counts[1] += 1,
                Slash8Status::Reserved => counts[2] += 1,
            }
        }
        assert_eq!(counts.iter().sum::<usize>(), 256);
        assert_eq!(counts[2], 35); // 0, 10, 127, 224..=255
    }
}
