//! Attacker tasking: what compromised hosts *do*.
//!
//! Following the acquisition/use decomposition of Mirkovic et al. (the
//! paper's \[18\]), infection (acquisition) and activity (use) are separate
//! layers. Every infection is assigned a persistent *behaviour profile* by
//! stable hashing — which of scanning, spamming, stealthy slow-scanning,
//! and ephemeral probing it engages in — and day-by-day activity is drawn
//! from per-(host, day) hashes so any day is randomly accessible without
//! replaying history.
//!
//! Scan *campaigns* overlay the baseline: a channel's herder tasks the
//! whole botnet to sweep the observed network over a window, with intensity
//! ramping up to a peak and collapsing after the botnet is publicly
//! reported. This is the mechanism behind the paper's Figure 1, where the
//! scanning of the observed network swells for a month and drops right
//! after the bot report's date.

use crate::compromise::Infection;
use crate::randutil::{decides, uniform_hash};
use serde::{Deserialize, Serialize};
use unclean_core::Day;
use unclean_stats::SeedTree;

/// Persistent behaviour profile of one compromised host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Behavior {
    /// Sends spam runs (SMTP with payload).
    pub spammer: bool,
    /// Performs fast, detectable scans (hundreds of targets in an hour).
    pub fast_scanner: bool,
    /// Performs low-and-slow scans (under 30 targets/day — below the
    /// deployed detector's calibration, per §6.2).
    pub slow_scanner: bool,
    /// Opens odd ephemeral-to-ephemeral connections.
    pub prober: bool,
}

impl Behavior {
    /// Whether this host ever originates traffic toward the observed
    /// network.
    pub fn is_active(&self) -> bool {
        self.spammer || self.fast_scanner || self.slow_scanner || self.prober
    }
}

/// Tasking probabilities.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskingConfig {
    /// Fraction of infections assigned the spammer behaviour.
    pub p_spammer: f64,
    /// Fraction assigned fast scanning.
    pub p_fast_scanner: f64,
    /// Fraction assigned slow scanning.
    pub p_slow_scanner: f64,
    /// Fraction assigned ephemeral probing.
    pub p_prober: f64,
    /// Per-day probability an assigned spammer runs a spam burst at the
    /// observed network.
    pub spam_daily: f64,
    /// Per-day probability an assigned fast scanner sweeps the observed
    /// network (outside campaigns).
    pub fast_scan_daily: f64,
    /// Per-day probability an assigned slow scanner probes.
    pub slow_scan_daily: f64,
    /// Per-day probability a prober pokes ephemeral ports.
    pub probe_daily: f64,
    /// Per-day probability a recruited bot's C&C check-in is observable.
    pub c2_daily: f64,
    /// Mean distinct targets for a fast scan (well above detector
    /// threshold).
    pub fast_scan_targets: u16,
    /// Max distinct targets for a slow scan (below detector threshold).
    pub slow_scan_targets: u16,
    /// Mean messages in a spam burst.
    pub spam_messages: u16,
}

impl Default for TaskingConfig {
    fn default() -> TaskingConfig {
        TaskingConfig {
            // Calibrated so the detector-derived report sizes track the
            // paper's ratios: |scan|/|bot| ≈ 0.24, |spam|/|bot| ≈ 0.64
            // (Table 1), given the default bot-report coverage, and so
            // that only a few percent of the addresses in an unclean /24
            // touch the observed network in a two-week window (§6.2's
            // sparseness: scanning targets the whole Internet, of which
            // the observed network is a sliver).
            p_spammer: 0.60,
            p_fast_scanner: 0.27,
            p_slow_scanner: 0.80,
            p_prober: 0.45,
            spam_daily: 0.30,
            fast_scan_daily: 0.15,
            slow_scan_daily: 0.08,
            probe_daily: 0.05,
            c2_daily: 0.8,
            fast_scan_targets: 180,
            slow_scan_targets: 24,
            spam_messages: 35,
        }
    }
}

impl TaskingConfig {
    /// The persistent behaviour of an infection (stable across calls).
    ///
    /// Spamming and fast scanning are *herder-directed* uses of a bot, so
    /// only recruited infections receive them (the acquisition/use split
    /// of Mirkovic et al.); background compromises limit themselves to the
    /// low-and-slow propagation behaviour of the malware that took them.
    pub fn behavior(&self, seeds: &SeedTree, inf: &Infection) -> Behavior {
        // Key on (addr, start) so reinfections may change character.
        let e = inf.addr;
        let d = inf.start;
        Behavior {
            spammer: inf.recruited && decides(seeds, e, d, "role-spam", self.p_spammer),
            fast_scanner: inf.recruited
                && decides(seeds, e, d, "role-fastscan", self.p_fast_scanner),
            slow_scanner: decides(seeds, e, d, "role-slowscan", self.p_slow_scanner),
            prober: decides(seeds, e, d, "role-probe", self.p_prober),
        }
    }
}

/// A herder-directed scan campaign against the observed network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Campaign {
    /// The C&C channel whose bots are tasked.
    pub channel: u16,
    /// First day of the campaign.
    pub start: Day,
    /// Day of peak intensity (the public report lands here).
    pub peak: Day,
    /// Last day of (declining) activity.
    pub end: Day,
    /// Peak per-bot daily scan probability.
    pub peak_intensity: f64,
    /// Post-peak decay rate per day (intensity × (1−decay)^days).
    pub decay: f64,
}

impl Campaign {
    /// Per-bot daily scan probability contributed by the campaign on `day`.
    ///
    /// Linear ramp from `start` to `peak`, geometric decay from `peak` to
    /// `end` (compromised hosts get cleaned and the herder retargets after
    /// the report; the paper's Figure 1 shows exactly this sawtooth).
    pub fn intensity(&self, day: Day) -> f64 {
        if day < self.start || day > self.end {
            return 0.0;
        }
        if day <= self.peak {
            let ramp = (self.peak - self.start).max(1) as f64;
            self.peak_intensity * (day - self.start) as f64 / ramp
        } else {
            self.peak_intensity * (1.0 - self.decay).powi(day - self.peak)
        }
    }
}

/// The set of campaigns active in a scenario.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Campaigns {
    /// All scheduled campaigns.
    pub scan: Vec<Campaign>,
}

impl Campaigns {
    /// Total campaign intensity applying to a bot on `channel` on `day`.
    pub fn intensity_for(&self, channel: u16, day: Day) -> f64 {
        self.scan
            .iter()
            .filter(|c| c.channel == channel)
            .map(|c| c.intensity(day))
            .sum()
    }
}

/// Whether a given infection scans the observed network on `day`, combining
/// its persistent behaviour, baseline rates, and campaign tasking, and — if
/// so — how many targets it sweeps.
pub fn scan_decision(
    seeds: &SeedTree,
    cfg: &TaskingConfig,
    campaigns: &Campaigns,
    inf: &Infection,
    behavior: &Behavior,
    day: Day,
) -> Option<u16> {
    debug_assert!(inf.active_on(day));
    let mut p = if behavior.fast_scanner {
        cfg.fast_scan_daily
    } else {
        0.0
    };
    if inf.recruited {
        p += campaigns.intensity_for(inf.channel, day);
    }
    if p <= 0.0 || !decides(seeds, inf.addr, day.0, "scan", p.min(1.0)) {
        return None;
    }
    // Target count: spread around the mean, always above the slow threshold.
    let u = uniform_hash(seeds, inf.addr, day.0, "scan-targets");
    let targets = (cfg.fast_scan_targets as f64 * (0.5 + u)) as u16;
    Some(targets.max(cfg.slow_scan_targets + 10))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inf(addr: u32, recruited: bool, channel: u16) -> Infection {
        Infection {
            addr,
            start: 0,
            end: 400,
            recruited,
            channel,
        }
    }

    #[test]
    fn behavior_is_stable_and_matches_rates() {
        let seeds = SeedTree::new(1);
        let cfg = TaskingConfig::default();
        let i = inf(0x0a0a0a0a, true, 3);
        assert_eq!(cfg.behavior(&seeds, &i), cfg.behavior(&seeds, &i));
        let mut counts = [0usize; 4];
        let n = 20_000;
        for a in 0..n {
            let b = cfg.behavior(&seeds, &inf(a as u32, true, 0));
            counts[0] += b.spammer as usize;
            counts[1] += b.fast_scanner as usize;
            counts[2] += b.slow_scanner as usize;
            counts[3] += b.prober as usize;
        }
        let expect = [
            cfg.p_spammer,
            cfg.p_fast_scanner,
            cfg.p_slow_scanner,
            cfg.p_prober,
        ];
        for (got, want) in counts.iter().zip(expect) {
            let rate = *got as f64 / n as f64;
            assert!((rate - want).abs() < 0.02, "rate {rate} vs {want}");
        }
    }

    #[test]
    fn unrecruited_infections_never_spam_or_fast_scan() {
        let seeds = SeedTree::new(1);
        let cfg = TaskingConfig::default();
        for a in 0..5_000u32 {
            let b = cfg.behavior(&seeds, &inf(a, false, 0));
            assert!(
                !b.spammer && !b.fast_scanner,
                "herder tasks need recruitment"
            );
        }
    }

    #[test]
    fn campaign_intensity_shape() {
        let c = Campaign {
            channel: 0,
            start: Day(20),
            peak: Day(60),
            end: Day(100),
            peak_intensity: 0.6,
            decay: 0.15,
        };
        assert_eq!(c.intensity(Day(19)), 0.0);
        assert_eq!(c.intensity(Day(101)), 0.0);
        assert_eq!(c.intensity(Day(20)), 0.0, "ramp starts from zero");
        // Ramps up.
        assert!(c.intensity(Day(30)) < c.intensity(Day(50)));
        assert!((c.intensity(Day(60)) - 0.6).abs() < 1e-9);
        // Decays after the peak (report published).
        assert!(c.intensity(Day(61)) < 0.6);
        assert!(c.intensity(Day(80)) < c.intensity(Day(65)));
        assert!(c.intensity(Day(100)) < 0.01);
    }

    #[test]
    fn campaigns_sum_by_channel() {
        let cs = Campaigns {
            scan: vec![
                Campaign {
                    channel: 0,
                    start: Day(0),
                    peak: Day(10),
                    end: Day(20),
                    peak_intensity: 0.5,
                    decay: 0.2,
                },
                Campaign {
                    channel: 1,
                    start: Day(0),
                    peak: Day(10),
                    end: Day(20),
                    peak_intensity: 0.9,
                    decay: 0.2,
                },
            ],
        };
        assert!((cs.intensity_for(0, Day(10)) - 0.5).abs() < 1e-9);
        assert!((cs.intensity_for(1, Day(10)) - 0.9).abs() < 1e-9);
        assert_eq!(cs.intensity_for(7, Day(10)), 0.0);
    }

    #[test]
    fn scan_decision_baseline_rate() {
        let seeds = SeedTree::new(2);
        let cfg = TaskingConfig::default();
        let cs = Campaigns::default();
        let b_scan = Behavior {
            spammer: false,
            fast_scanner: true,
            slow_scanner: false,
            prober: false,
        };
        let b_quiet = Behavior {
            spammer: false,
            fast_scanner: false,
            slow_scanner: false,
            prober: false,
        };
        let mut scans = 0;
        for a in 0..10_000u32 {
            let i = inf(a, false, 0);
            if scan_decision(&seeds, &cfg, &cs, &i, &b_scan, Day(5)).is_some() {
                scans += 1;
            }
            assert!(scan_decision(&seeds, &cfg, &cs, &i, &b_quiet, Day(5)).is_none());
        }
        let rate = scans as f64 / 10_000.0;
        assert!((rate - cfg.fast_scan_daily).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn campaign_mobilizes_recruited_bots_only() {
        let seeds = SeedTree::new(3);
        let cfg = TaskingConfig::default();
        let cs = Campaigns {
            scan: vec![Campaign {
                channel: 4,
                start: Day(0),
                peak: Day(5),
                end: Day(30),
                peak_intensity: 0.9,
                decay: 0.1,
            }],
        };
        let quiet = Behavior {
            spammer: false,
            fast_scanner: false,
            slow_scanner: false,
            prober: false,
        };
        let mut on_channel = 0;
        let mut off_channel = 0;
        for a in 0..5_000u32 {
            if scan_decision(&seeds, &cfg, &cs, &inf(a, true, 4), &quiet, Day(5)).is_some() {
                on_channel += 1;
            }
            if scan_decision(&seeds, &cfg, &cs, &inf(a, true, 5), &quiet, Day(5)).is_some() {
                off_channel += 1;
            }
        }
        assert!(
            on_channel > 4000,
            "campaign drives channel-4 bots: {on_channel}"
        );
        assert_eq!(off_channel, 0, "other channels stay quiet");
    }

    #[test]
    fn scan_targets_exceed_slow_threshold() {
        let seeds = SeedTree::new(4);
        let cfg = TaskingConfig::default();
        let cs = Campaigns::default();
        let b = Behavior {
            spammer: false,
            fast_scanner: true,
            slow_scanner: false,
            prober: false,
        };
        for a in 0..2_000u32 {
            if let Some(t) = scan_decision(&seeds, &cfg, &cs, &inf(a, false, 0), &b, Day(9)) {
                assert!(
                    t > cfg.slow_scan_targets,
                    "fast scans outrun the slow threshold"
                );
            }
        }
    }
}
