//! Phishing-site dynamics.
//!
//! §5.2's key negative result is that botnet history does *not* predict
//! phishing, while phishing history does. The paper offers two candidate
//! explanations; we model the second: "phishing sites are generally hosted
//! on web servers, and a phisher may prefer to host phishing sites in an
//! actual datacenter to ensure robustness during a flash crowd". So
//! phishing sites are placed on hosts in *datacenter* /16s — which are
//! well-run and rarely carry bot infections — with heavy-tailed reuse of
//! favourite hosting providers (which produces phishing's own spatial and
//! temporal clustering).

use crate::randutil::{geometric_days, pareto, poisson};
use crate::world::World;
use rand::Rng;
use serde::{Deserialize, Serialize};
use unclean_core::{DateRange, Day, Ip};
use unclean_stats::SeedTree;

/// One phishing site instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhishSite {
    /// The hosting address.
    pub addr: u32,
    /// First day the site is live.
    pub start: i32,
    /// Last live day, inclusive.
    pub end: i32,
    /// The day the site landed on a public report list, if it ever did.
    pub reported: Option<i32>,
}

impl PhishSite {
    /// The hosting address.
    pub fn ip(&self) -> Ip {
        Ip(self.addr)
    }

    /// Whether the site is live on `day`.
    pub fn active_on(&self, day: Day) -> bool {
        self.start <= day.0 && day.0 <= self.end
    }

    /// Whether the site was reported within a date range.
    pub fn reported_in(&self, range: &DateRange) -> bool {
        self.reported
            .is_some_and(|r| range.start.0 <= r && r <= range.end.0)
    }
}

/// Phishing tunables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhishConfig {
    /// New sites stood up per day across the whole Internet.
    pub sites_per_day: f64,
    /// Mean site lifetime in days.
    pub mean_site_duration: f64,
    /// Probability a site is ever reported to the list.
    pub report_prob: f64,
    /// Mean delay from going live to being reported (days).
    pub report_delay_mean: f64,
    /// Pareto shape of hosting-provider reuse (smaller = a few providers
    /// dominate).
    pub hosting_alpha: f64,
}

impl Default for PhishConfig {
    fn default() -> PhishConfig {
        PhishConfig {
            sites_per_day: 40.0,
            mean_site_duration: 25.0,
            report_prob: 0.85,
            report_delay_mean: 4.0,
            hosting_alpha: 0.45,
        }
    }
}

/// Generate the phishing-site history over `span`.
///
/// Hosting blocks are the world's datacenter /24s, drawn with heavy-tailed
/// per-block popularity fixed for the whole span — the reuse that makes
/// phishing self-predicting. Panics if the world has no datacenter blocks.
pub fn generate_phish(
    world: &World,
    span: DateRange,
    cfg: &PhishConfig,
    seeds: &SeedTree,
) -> Vec<PhishSite> {
    let hosting = world.datacenter_blocks();
    assert!(
        !hosting.is_empty(),
        "world has no datacenter blocks to host phishing sites"
    );
    let mut rng = seeds.stream("phish");
    // Group hosting blocks by provider (/16): phishers reuse *providers*,
    // and every new site typically lands on a fresh customer VM / vhost
    // inside that provider's space — so addresses stay diverse while the
    // network-level clustering (which drives Figure 5) persists.
    let mut providers: Vec<Vec<usize>> = Vec::new();
    let mut last_prefix16 = u32::MAX;
    for &idx in &hosting {
        let p16 = world.population.block(idx).prefix >> 8;
        if p16 != last_prefix16 {
            providers.push(Vec::new());
            last_prefix16 = p16;
        }
        providers.last_mut().expect("just pushed").push(idx);
    }
    // Fixed popularity weights per provider, and — within each provider —
    // fixed (milder) weights per /24: the same customer vhost farms recur,
    // which is what gives phishing history its /24-level predictive power
    // (Figure 5).
    let mut cum = Vec::with_capacity(providers.len());
    let mut acc = 0.0;
    for _ in &providers {
        acc += pareto(&mut rng, cfg.hosting_alpha);
        cum.push(acc);
    }
    let total_w = acc;
    let block_cums: Vec<Vec<f64>> = providers
        .iter()
        .map(|blocks| {
            let mut c = Vec::with_capacity(blocks.len());
            let mut a = 0.0;
            for _ in blocks {
                a += pareto(&mut rng, 1.2);
                c.push(a);
            }
            c
        })
        .collect();

    let days = span.len_days() as f64;
    let n = poisson(&mut rng, cfg.sites_per_day * days);
    let mut sites = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let x = rng.gen_range(0.0..total_w);
        let p_idx = cum.partition_point(|&w| w <= x);
        let provider = &providers[p_idx];
        let bc = &block_cums[p_idx];
        let bx = rng.gen_range(0.0..*bc.last().expect("provider non-empty"));
        let block_idx = provider[bc.partition_point(|&w| w <= bx)];
        let block = world.population.block(block_idx);
        // Hosting farms provision addresses across their whole /24s — the
        // population model only tracks *client* hosts seen as traffic
        // sources, while server VMs occupy any free address.
        let host = rng.gen_range(1..=254u32);
        let addr = (block.prefix << 8) | host;
        let start = span.start.0 + rng.gen_range(0..days as i32);
        let dur = geometric_days(&mut rng, cfg.mean_site_duration);
        let end = start + dur as i32 - 1;
        let reported = if rng.gen_range(0.0..1.0f64) < cfg.report_prob {
            let delay = geometric_days(&mut rng, cfg.report_delay_mean) as i32 - 1;
            Some((start + delay).min(end.max(start)))
        } else {
            None
        };
        sites.push(PhishSite {
            addr,
            start,
            end,
            reported,
        });
    }
    sites.sort_by_key(|s| (s.start, s.addr));
    sites
}

/// Addresses of sites reported within `range`, deduplicated.
pub fn reported_addrs(sites: &[PhishSite], range: &DateRange) -> Vec<u32> {
    let mut addrs: Vec<u32> = sites
        .iter()
        .filter(|s| s.reported_in(range))
        .map(|s| s.addr)
        .collect();
    addrs.sort_unstable();
    addrs.dedup();
    addrs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::CascadeConfig;
    use crate::world::WorldConfig;

    fn world(seed: u64) -> World {
        let cfg = WorldConfig {
            cascade: CascadeConfig {
                target_hosts: 60_000,
                ..CascadeConfig::default()
            },
            datacenter_fraction: 0.06,
            ..WorldConfig::default()
        };
        World::generate(&cfg, &SeedTree::new(seed))
    }

    fn span() -> DateRange {
        DateRange::new(Day(0), Day(180))
    }

    #[test]
    fn sites_live_on_datacenter_blocks() {
        let w = world(1);
        let sites = generate_phish(&w, span(), &PhishConfig::default(), &SeedTree::new(1));
        assert!(!sites.is_empty());
        for s in sites.iter().take(200) {
            let p = w.profile_of(s.ip()).expect("hosted on population");
            assert!(p.datacenter, "{} hosted on a datacenter /16", s.ip());
        }
    }

    #[test]
    fn volume_tracks_rate() {
        let w = world(2);
        let cfg = PhishConfig {
            sites_per_day: 10.0,
            ..PhishConfig::default()
        };
        let sites = generate_phish(&w, span(), &cfg, &SeedTree::new(2));
        let expected = 10.0 * span().len_days() as f64;
        assert!(
            ((expected * 0.8) as usize..(expected * 1.2) as usize).contains(&sites.len()),
            "{} sites vs expected {expected}",
            sites.len()
        );
    }

    #[test]
    fn reporting_fields_are_coherent() {
        let w = world(3);
        let sites = generate_phish(&w, span(), &PhishConfig::default(), &SeedTree::new(3));
        let reported = sites.iter().filter(|s| s.reported.is_some()).count();
        let frac = reported as f64 / sites.len() as f64;
        assert!((frac - 0.85).abs() < 0.06, "report fraction {frac}");
        for s in &sites {
            assert!(s.end >= s.start);
            if let Some(r) = s.reported {
                assert!(r >= s.start, "report not before the site exists");
            }
        }
    }

    #[test]
    fn hosting_reuse_concentrates_sites_by_provider() {
        // A few providers (/16s) host a disproportionate share, while the
        // site *addresses* stay reasonably distinct (fresh vhosts). Run at
        // a site rate proportionate to this tiny world's hosting capacity.
        let w = world(4);
        let cfg = PhishConfig {
            sites_per_day: 8.0,
            ..PhishConfig::default()
        };
        let sites = generate_phish(&w, span(), &cfg, &SeedTree::new(4));
        use std::collections::HashMap;
        let mut per_provider: HashMap<u32, usize> = HashMap::new();
        for s in &sites {
            *per_provider.entry(s.addr >> 16).or_default() += 1;
        }
        let mut counts: Vec<usize> = per_provider.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top5: usize = counts.iter().take(5).sum();
        assert!(
            top5 * 2 > sites.len(),
            "top-5 providers carry >50% of sites ({top5}/{})",
            sites.len()
        );
        // Addresses are far more diverse than under per-host reuse, though
        // popular providers still vhost many sites per address (this test
        // runs site-dense relative to its tiny world: ~7k sites on ~4k
        // datacenter hosts).
        let distinct: std::collections::HashSet<u32> = sites.iter().map(|s| s.addr).collect();
        assert!(
            distinct.len() * 4 > sites.len(),
            "addresses are diverse: {} of {}",
            distinct.len(),
            sites.len()
        );
    }

    #[test]
    fn temporal_self_similarity() {
        // Sites from the first half should share hosting /24s with sites
        // from the second half far more than chance — the basis of Fig. 5.
        let w = world(5);
        let sites = generate_phish(&w, span(), &PhishConfig::default(), &SeedTree::new(5));
        let mid = 90;
        use std::collections::HashSet;
        let early: HashSet<u32> = sites
            .iter()
            .filter(|s| s.start < mid)
            .map(|s| s.addr >> 8)
            .collect();
        let late: HashSet<u32> = sites
            .iter()
            .filter(|s| s.start >= mid)
            .map(|s| s.addr >> 8)
            .collect();
        let overlap = early.intersection(&late).count();
        assert!(
            overlap * 4 > late.len(),
            "hosting /24s recur across halves: {overlap}/{}",
            late.len()
        );
    }

    #[test]
    fn reported_addrs_filters_by_window() {
        let sites = vec![
            PhishSite {
                addr: 5,
                start: 0,
                end: 30,
                reported: Some(10),
            },
            PhishSite {
                addr: 6,
                start: 0,
                end: 30,
                reported: Some(50),
            },
            PhishSite {
                addr: 5,
                start: 40,
                end: 60,
                reported: Some(45),
            },
            PhishSite {
                addr: 7,
                start: 0,
                end: 30,
                reported: None,
            },
        ];
        let w = DateRange::new(Day(0), Day(20));
        assert_eq!(reported_addrs(&sites, &w), vec![5]);
        let w2 = DateRange::new(Day(40), Day(55));
        assert_eq!(reported_addrs(&sites, &w2), vec![5, 6]);
    }

    #[test]
    fn deterministic() {
        let w = world(6);
        let a = generate_phish(&w, span(), &PhishConfig::default(), &SeedTree::new(6));
        let b = generate_phish(&w, span(), &PhishConfig::default(), &SeedTree::new(6));
        assert_eq!(a, b);
    }
}
