//! Random-variate helpers the simulation needs but `rand` does not ship:
//! Poisson counts, Pareto weights, geometric durations, and stable
//! per-(entity, day) Bernoulli decisions.
//!
//! The per-entity decisions matter architecturally: activity generation is
//! *random access* — "did bot 9.1.2.3 scan on day 275?" must be answerable
//! without replaying days 0..274 — so decisions are pure hashes of
//! (seed, entity, day, purpose) rather than draws from a sequential
//! stream.

use rand::Rng;
use unclean_stats::SeedTree;

/// A Poisson(λ) draw.
///
/// Knuth's product method below λ = 30; above that, a clamped normal
/// approximation (λ is large enough there for the error to vanish in the
/// aggregate counts the simulation uses this for).
pub fn poisson(rng: &mut impl Rng, lambda: f64) -> u64 {
    assert!(lambda >= 0.0 && lambda.is_finite(), "bad lambda {lambda}");
    if lambda == 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen_range(0.0..1.0f64);
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let z = standard_normal(rng);
        let v = lambda + lambda.sqrt() * z;
        v.round().max(0.0) as u64
    }
}

/// A standard normal draw (Box–Muller).
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A Pareto(scale = 1, shape = α) draw — the heavy-tailed weights the
/// multifractal address cascade splits mass with.
pub fn pareto(rng: &mut impl Rng, alpha: f64) -> f64 {
    assert!(alpha > 0.0, "pareto shape must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    u.powf(-1.0 / alpha)
}

/// A geometric duration in days with the given mean (≥ 1): the number of
/// days an infection persists before cleanup.
pub fn geometric_days(rng: &mut impl Rng, mean: f64) -> u32 {
    assert!(mean >= 1.0, "mean duration below one day: {mean}");
    let p = 1.0 / mean;
    // Inverse-CDF sampling of a geometric starting at 1.
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let k = (u.ln() / (1.0 - p).ln()).ceil();
    if k.is_finite() {
        (k as u32).max(1)
    } else {
        1
    }
}

/// A pure, stable Bernoulli decision for (entity, day, purpose): the same
/// inputs always produce the same answer, independent of evaluation order.
pub fn decides(seeds: &SeedTree, entity: u32, day: i32, purpose: &str, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    uniform_hash(seeds, entity, day, purpose) < p
}

/// The underlying stable uniform in `[0, 1)` for (entity, day, purpose).
pub fn uniform_hash(seeds: &SeedTree, entity: u32, day: i32, purpose: &str) -> f64 {
    let raw = seeds
        .child(purpose)
        .child_idx(entity as u64)
        .child_idx(day as u32 as u64)
        .raw();
    // 53 high bits → uniform double in [0, 1).
    (raw >> 11) as f64 / (1u64 << 53) as f64
}

/// A stable uniform integer in `[0, n)` for (entity, day, purpose).
pub fn index_hash(seeds: &SeedTree, entity: u32, day: i32, purpose: &str, n: usize) -> usize {
    assert!(n > 0, "index_hash over an empty range");
    (uniform_hash(seeds, entity, day, purpose) * n as f64) as usize % n
}

#[cfg(test)]
mod tests {
    use super::*;
    use unclean_stats::Summary;

    fn rng() -> impl Rng {
        SeedTree::new(7).stream("randutil-tests")
    }

    #[test]
    fn poisson_zero_lambda() {
        assert_eq!(poisson(&mut rng(), 0.0), 0);
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let mut r = rng();
        let mut s = Summary::new();
        for _ in 0..20_000 {
            s.push(poisson(&mut r, 3.5) as f64);
        }
        assert!((s.mean() - 3.5).abs() < 0.1, "mean {}", s.mean());
        assert!((s.variance() - 3.5).abs() < 0.3, "var {}", s.variance());
    }

    #[test]
    fn poisson_large_lambda_mean() {
        let mut r = rng();
        let mut s = Summary::new();
        for _ in 0..5_000 {
            s.push(poisson(&mut r, 400.0) as f64);
        }
        assert!((s.mean() - 400.0).abs() < 2.0, "mean {}", s.mean());
    }

    #[test]
    #[should_panic(expected = "bad lambda")]
    fn poisson_rejects_negative() {
        let _ = poisson(&mut rng(), -1.0);
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let mut s = Summary::new();
        for _ in 0..50_000 {
            s.push(standard_normal(&mut r));
        }
        assert!(s.mean().abs() < 0.02, "mean {}", s.mean());
        assert!((s.variance() - 1.0).abs() < 0.05, "var {}", s.variance());
    }

    #[test]
    fn pareto_is_heavy_tailed_and_bounded_below() {
        let mut r = rng();
        let mut max = 0.0f64;
        for _ in 0..10_000 {
            let v = pareto(&mut r, 1.2);
            assert!(v >= 1.0);
            max = max.max(v);
        }
        assert!(max > 20.0, "tail should produce large values, max {max}");
    }

    #[test]
    fn geometric_mean_matches() {
        let mut r = rng();
        let mut s = Summary::new();
        for _ in 0..20_000 {
            let d = geometric_days(&mut r, 12.0);
            assert!(d >= 1);
            s.push(d as f64);
        }
        assert!((s.mean() - 12.0).abs() < 0.4, "mean {}", s.mean());
    }

    #[test]
    fn geometric_mean_one_is_always_one() {
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(geometric_days(&mut r, 1.0), 1);
        }
    }

    #[test]
    fn decides_is_stable_and_probability_correct() {
        let seeds = SeedTree::new(3);
        // Stability: same inputs, same answer.
        let a = decides(&seeds, 12345, 77, "scan", 0.3);
        let b = decides(&seeds, 12345, 77, "scan", 0.3);
        assert_eq!(a, b);
        // Different purposes decouple.
        let mut agree = 0;
        let mut yes = 0;
        for e in 0..20_000u32 {
            let x = decides(&seeds, e, 5, "scan", 0.3);
            let y = decides(&seeds, e, 5, "spam", 0.3);
            if x == y {
                agree += 1;
            }
            if x {
                yes += 1;
            }
        }
        let rate = yes as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
        // If independent, agreement ≈ 0.3² + 0.7² = 0.58.
        let agree_rate = agree as f64 / 20_000.0;
        assert!((agree_rate - 0.58).abs() < 0.03, "agree {agree_rate}");
    }

    #[test]
    fn decides_extremes() {
        let seeds = SeedTree::new(3);
        assert!(!decides(&seeds, 1, 1, "x", 0.0));
        assert!(decides(&seeds, 1, 1, "x", 1.0));
    }

    #[test]
    fn index_hash_in_range_and_covers() {
        let seeds = SeedTree::new(4);
        let mut seen = [false; 7];
        for e in 0..2_000u32 {
            let i = index_hash(&seeds, e, 9, "pick", 7);
            assert!(i < 7);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all indices hit");
    }

    #[test]
    fn uniform_hash_distribution() {
        let seeds = SeedTree::new(5);
        let mut s = Summary::new();
        for e in 0..20_000u32 {
            s.push(uniform_hash(&seeds, e, 0, "u"));
        }
        assert!((s.mean() - 0.5).abs() < 0.01);
        assert!((s.variance() - 1.0 / 12.0).abs() < 0.005);
    }
}
