//! Day-by-day activity events crossing the observed network's border.
//!
//! This is the seam between the world model and the traffic substrate:
//! [`ActivityModel::hostile_events_on`] emits, for one day, every external host's
//! interaction with the observed network — benign client sessions, spam
//! bursts, fast and slow scans, ephemeral probes — as compact
//! [`ActivityEvent`]s. The flowgen crate expands events into NetFlow V5
//! records; the detectors consume either representation.
//!
//! All decisions are stable hashes of (host, day), so events for any day
//! can be generated independently, in any order, in parallel, with
//! identical results.

use crate::actors::{scan_decision, Behavior, Campaigns, TaskingConfig};
use crate::compromise::Infection;
use crate::randutil::{decides, uniform_hash};
use crate::world::World;
use serde::{Deserialize, Serialize};
use unclean_core::{DateRange, Day, Ip};
use unclean_stats::SeedTree;

/// What an external host did on a given day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActivityKind {
    /// Legitimate client sessions (payload-bearing TCP).
    Benign {
        /// Number of sessions opened.
        sessions: u8,
    },
    /// A fast scan sweep (SYN-only probes, no payload).
    Scan {
        /// Distinct targets contacted within the hour-scale sweep.
        targets: u16,
    },
    /// A low-and-slow scan, below the deployed detector's calibration.
    SlowScan {
        /// Distinct targets contacted across the day.
        targets: u16,
    },
    /// Ephemeral-port-to-ephemeral-port connection attempts (§6.2's
    /// hand-found oddities).
    Probe,
    /// A spam burst (SMTP sessions carrying payload).
    Spam {
        /// Messages delivered toward the observed network.
        messages: u16,
    },
    /// An observable C&C check-in on an IRC channel (not traffic through
    /// the observed network; consumed by the bot monitor).
    C2Checkin {
        /// The channel checked into.
        channel: u16,
    },
}

impl ActivityKind {
    /// Whether this activity exchanges TCP payload (drives the §6.1
    /// unknown/innocent split).
    pub fn payload_bearing(&self) -> bool {
        matches!(
            self,
            ActivityKind::Benign { .. } | ActivityKind::Spam { .. }
        )
    }
}

/// One (day, source, activity) event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityEvent {
    /// The day the activity happened.
    pub day: Day,
    /// The external source address.
    pub src: Ip,
    /// What it did.
    pub kind: ActivityKind,
}

/// Benign-traffic tunables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BenignConfig {
    /// Baseline per-host daily probability of visiting the observed
    /// network, before affinity weighting.
    pub base_daily: f64,
    /// Cap on the affinity-weighted daily probability.
    pub max_daily: f64,
}

impl Default for BenignConfig {
    fn default() -> BenignConfig {
        BenignConfig {
            base_daily: 0.30,
            max_daily: 0.90,
        }
    }
}

/// The activity generator.
#[derive(Debug)]
pub struct ActivityModel<'a> {
    /// The world (population, hygiene, affinity).
    pub world: &'a World,
    /// Full infection history.
    pub infections: &'a [Infection],
    /// Tasking probabilities and behaviour assignment.
    pub tasking: TaskingConfig,
    /// Scheduled scan campaigns.
    pub campaigns: Campaigns,
    /// Benign traffic tunables.
    pub benign: BenignConfig,
    /// Seed tree for all stable decisions.
    pub seeds: SeedTree,
}

impl ActivityModel<'_> {
    /// Emit every malicious/compromised-host event for `day`.
    pub fn hostile_events_on(&self, day: Day, mut sink: impl FnMut(ActivityEvent)) {
        for inf in self.infections.iter().filter(|i| i.active_on(day)) {
            let behavior = self.tasking.behavior(&self.seeds, inf);
            self.emit_for_infection(inf, &behavior, day, &mut sink);
        }
    }

    /// Emit hostile events for `day`, restricted to infections whose
    /// address satisfies `filter` (used to zoom into candidate /24s without
    /// paying for the whole Internet).
    pub fn hostile_events_on_filtered(
        &self,
        day: Day,
        filter: impl Fn(Ip) -> bool,
        mut sink: impl FnMut(ActivityEvent),
    ) {
        for inf in self
            .infections
            .iter()
            .filter(|i| i.active_on(day) && filter(i.ip()))
        {
            let behavior = self.tasking.behavior(&self.seeds, inf);
            self.emit_for_infection(inf, &behavior, day, &mut sink);
        }
    }

    fn emit_for_infection(
        &self,
        inf: &Infection,
        behavior: &Behavior,
        day: Day,
        sink: &mut impl FnMut(ActivityEvent),
    ) {
        let src = inf.ip();
        if let Some(targets) = scan_decision(
            &self.seeds,
            &self.tasking,
            &self.campaigns,
            inf,
            behavior,
            day,
        ) {
            sink(ActivityEvent {
                day,
                src,
                kind: ActivityKind::Scan { targets },
            });
        }
        if behavior.slow_scanner
            && decides(
                &self.seeds,
                inf.addr,
                day.0,
                "slowscan",
                self.tasking.slow_scan_daily,
            )
        {
            let u = uniform_hash(&self.seeds, inf.addr, day.0, "slowscan-targets");
            let targets =
                1 + (u * (self.tasking.slow_scan_targets.saturating_sub(1)) as f64) as u16;
            sink(ActivityEvent {
                day,
                src,
                kind: ActivityKind::SlowScan { targets },
            });
        }
        if behavior.prober
            && decides(
                &self.seeds,
                inf.addr,
                day.0,
                "probe",
                self.tasking.probe_daily,
            )
        {
            sink(ActivityEvent {
                day,
                src,
                kind: ActivityKind::Probe,
            });
        }
        if behavior.spammer
            && decides(
                &self.seeds,
                inf.addr,
                day.0,
                "spam",
                self.tasking.spam_daily,
            )
        {
            let u = uniform_hash(&self.seeds, inf.addr, day.0, "spam-volume");
            let messages = (self.tasking.spam_messages as f64 * (0.5 + u)).max(1.0) as u16;
            sink(ActivityEvent {
                day,
                src,
                kind: ActivityKind::Spam { messages },
            });
        }
        if inf.recruited && decides(&self.seeds, inf.addr, day.0, "c2", self.tasking.c2_daily) {
            sink(ActivityEvent {
                day,
                src,
                kind: ActivityKind::C2Checkin {
                    channel: inf.channel,
                },
            });
        }
    }

    /// Per-host daily probability of a benign visit, affinity-weighted.
    pub fn benign_daily_prob(&self, block_idx: usize) -> f64 {
        (self.benign.base_daily * self.world.block_affinity(block_idx)).min(self.benign.max_daily)
    }

    /// Emit benign client sessions for `day` across the whole population.
    pub fn benign_events_on(&self, day: Day, mut sink: impl FnMut(ActivityEvent)) {
        for i in 0..self.world.population.block_count() {
            let p = self.benign_daily_prob(i);
            if p <= 0.0 {
                continue;
            }
            let block = self.world.population.block(i);
            for ip in block.addrs() {
                if decides(&self.seeds, ip.raw(), day.0, "benign", p) {
                    let u = uniform_hash(&self.seeds, ip.raw(), day.0, "benign-sessions");
                    let sessions = 1 + (u * 4.0) as u8;
                    sink(ActivityEvent {
                        day,
                        src: ip,
                        kind: ActivityKind::Benign { sessions },
                    });
                }
            }
        }
    }

    /// Emit benign events restricted to blocks whose /24 prefix satisfies
    /// `filter`.
    pub fn benign_events_on_filtered(
        &self,
        day: Day,
        filter: impl Fn(u32) -> bool,
        mut sink: impl FnMut(ActivityEvent),
    ) {
        for i in 0..self.world.population.block_count() {
            let block = self.world.population.block(i);
            if !filter(block.prefix) {
                continue;
            }
            let p = self.benign_daily_prob(i);
            if p <= 0.0 {
                continue;
            }
            for ip in block.addrs() {
                if decides(&self.seeds, ip.raw(), day.0, "benign", p) {
                    let u = uniform_hash(&self.seeds, ip.raw(), day.0, "benign-sessions");
                    let sessions = 1 + (u * 4.0) as u8;
                    sink(ActivityEvent {
                        day,
                        src: ip,
                        kind: ActivityKind::Benign { sessions },
                    });
                }
            }
        }
    }

    /// All events (hostile then benign) for every day in `range`.
    pub fn events_in(
        &self,
        range: DateRange,
        include_benign: bool,
        mut sink: impl FnMut(ActivityEvent),
    ) {
        for day in range.days() {
            self.hostile_events_on(day, &mut sink);
            if include_benign {
                self.benign_events_on(day, &mut sink);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compromise::{
        calibrate_base_hazard, generate_infections, ChannelDirectory, CompromiseConfig,
    };
    use crate::population::CascadeConfig;
    use crate::world::{World, WorldConfig};

    struct Fixture {
        world: World,
        infections: Vec<Infection>,
    }

    fn fixture(seed: u64) -> Fixture {
        let wcfg = WorldConfig {
            cascade: CascadeConfig {
                target_hosts: 30_000,
                ..CascadeConfig::default()
            },
            ..WorldConfig::default()
        };
        let seeds = SeedTree::new(seed);
        let world = World::generate(&wcfg, &seeds);
        let mut ccfg = CompromiseConfig::default();
        ccfg.base_hazard = calibrate_base_hazard(&world, &ccfg, 2000.0, 14.0);
        let channels = ChannelDirectory::generate(&world, &ccfg, &seeds);
        let infections = generate_infections(
            &world,
            &channels,
            DateRange::new(Day(0), Day(60)),
            &ccfg,
            &seeds,
        );
        Fixture { world, infections }
    }

    fn model(f: &Fixture) -> ActivityModel<'_> {
        ActivityModel {
            world: &f.world,
            infections: &f.infections,
            tasking: TaskingConfig::default(),
            campaigns: Campaigns::default(),
            benign: BenignConfig::default(),
            seeds: SeedTree::new(99),
        }
    }

    #[test]
    fn hostile_events_come_from_active_infections() {
        let f = fixture(1);
        let m = model(&f);
        let day = Day(30);
        let active: std::collections::HashSet<u32> = f
            .infections
            .iter()
            .filter(|i| i.active_on(day))
            .map(|i| i.addr)
            .collect();
        let mut n = 0;
        m.hostile_events_on(day, |e| {
            assert!(
                active.contains(&e.src.raw()),
                "{} is an active infection",
                e.src
            );
            assert_eq!(e.day, day);
            n += 1;
        });
        assert!(n > 0, "some hostile activity on a mid-simulation day");
    }

    #[test]
    fn event_mix_is_plausible() {
        let f = fixture(2);
        let m = model(&f);
        let mut scans = 0;
        let mut slow = 0;
        let mut spam = 0;
        let mut probes = 0;
        let mut c2 = 0;
        for d in 20..40 {
            m.hostile_events_on(Day(d), |e| match e.kind {
                ActivityKind::Scan { targets } => {
                    assert!(targets > TaskingConfig::default().slow_scan_targets);
                    scans += 1;
                }
                ActivityKind::SlowScan { targets } => {
                    assert!(targets <= TaskingConfig::default().slow_scan_targets);
                    assert!(targets >= 1);
                    slow += 1;
                }
                ActivityKind::Spam { messages } => {
                    assert!(messages >= 1);
                    spam += 1;
                }
                ActivityKind::Probe => probes += 1,
                ActivityKind::C2Checkin { .. } => c2 += 1,
                ActivityKind::Benign { .. } => panic!("no benign in hostile stream"),
            });
        }
        assert!(
            slow > scans,
            "slow scanning dominates fast ({slow} vs {scans})"
        );
        assert!(spam > 0 && probes > 0 && c2 > 0);
    }

    #[test]
    fn payload_classification() {
        assert!(ActivityKind::Benign { sessions: 1 }.payload_bearing());
        assert!(ActivityKind::Spam { messages: 3 }.payload_bearing());
        assert!(!ActivityKind::Scan { targets: 100 }.payload_bearing());
        assert!(!ActivityKind::SlowScan { targets: 5 }.payload_bearing());
        assert!(!ActivityKind::Probe.payload_bearing());
        assert!(!ActivityKind::C2Checkin { channel: 0 }.payload_bearing());
    }

    #[test]
    fn benign_volume_tracks_affinity_weighting() {
        let f = fixture(3);
        let m = model(&f);
        let mut visitors = 0usize;
        m.benign_events_on(Day(10), |e| {
            assert!(matches!(e.kind, ActivityKind::Benign { sessions } if sessions >= 1));
            visitors += 1;
        });
        let hosts = f.world.population.total_hosts();
        let frac = visitors as f64 / hosts as f64;
        // Expected ≈ E[min(base·affinity, max)] ≈ 10–30% for these params.
        assert!((0.03..0.5).contains(&frac), "daily visit fraction {frac}");
    }

    #[test]
    fn filtered_equals_full_restricted() {
        let f = fixture(4);
        let m = model(&f);
        let day = Day(25);
        let target_prefix = f.world.population.block(0).prefix;
        let mut full: Vec<ActivityEvent> = Vec::new();
        m.benign_events_on(day, |e| {
            if e.src.raw() >> 8 == target_prefix {
                full.push(e);
            }
        });
        let mut filtered: Vec<ActivityEvent> = Vec::new();
        m.benign_events_on_filtered(day, |p| p == target_prefix, |e| filtered.push(e));
        assert_eq!(full, filtered);

        let mut full_h: Vec<ActivityEvent> = Vec::new();
        m.hostile_events_on(day, |e| {
            if e.src.raw() >> 8 == target_prefix {
                full_h.push(e);
            }
        });
        let mut filtered_h: Vec<ActivityEvent> = Vec::new();
        m.hostile_events_on_filtered(
            day,
            |ip| ip.raw() >> 8 == target_prefix,
            |e| filtered_h.push(e),
        );
        assert_eq!(full_h, filtered_h);
    }

    #[test]
    fn events_are_deterministic_and_order_independent() {
        let f = fixture(5);
        let m = model(&f);
        let mut a: Vec<ActivityEvent> = Vec::new();
        m.hostile_events_on(Day(33), |e| a.push(e));
        // Query a different day first, then re-query: identical results.
        let mut scratch: Vec<ActivityEvent> = Vec::new();
        m.hostile_events_on(Day(12), |e| scratch.push(e));
        let mut b: Vec<ActivityEvent> = Vec::new();
        m.hostile_events_on(Day(33), |e| b.push(e));
        assert_eq!(a, b);
    }

    #[test]
    fn events_in_spans_days() {
        let f = fixture(6);
        let m = model(&f);
        let mut days_seen = std::collections::HashSet::new();
        m.events_in(DateRange::new(Day(10), Day(12)), false, |e| {
            days_seen.insert(e.day.0);
        });
        assert_eq!(days_seen.len(), 3);
    }
}
