//! The synthetic active-host population: a multiplicative cascade over the
//! prefix tree.
//!
//! Kohler, Li, Paxson and Shenker (cited as \[13\] by the paper) showed that
//! addresses observed in real traffic are *multifractally* clustered: mass
//! concentrates unevenly at every aggregation level, so the number of
//! occupied blocks grows far slower than 2× per prefix bit. The paper's
//! empirical control estimate inherits that structure from real traffic;
//! since we have no real traffic, we generate the structure directly:
//!
//! 1. each allocated /8 receives a heavy-tailed (Pareto) share of the host
//!    budget;
//! 2. within a /8, a limited number of /16s activate, again with Pareto
//!    shares;
//! 3. within a /16, a limited number of /24s activate, with Pareto shares;
//! 4. within a /24, the share rounds to a host count in `[1, 254]` and
//!    that many host octets are chosen.
//!
//! The result reproduces the qualitative curve of the paper's Figure 2:
//! block counts that bend well below the naive doubling line.

use crate::allocation::allocated_slash8s;
use crate::randutil::pareto;
use crossbeam::executor::Executor;
use rand::Rng;
use serde::{Deserialize, Serialize};
use unclean_core::{Ip, IpSet};
use unclean_stats::rng::sample_indices;
use unclean_stats::SeedTree;

/// Tunables for the cascade.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CascadeConfig {
    /// Total active hosts to generate (approximately; rounding and the
    /// 254-hosts-per-/24 cap introduce a few percent of slack).
    pub target_hosts: usize,
    /// Pareto shape for /8 shares (smaller = heavier tail = more skew).
    pub slash8_alpha: f64,
    /// Pareto shape for /16 shares within a /8.
    pub slash16_alpha: f64,
    /// Pareto shape for /24 shares within a /16.
    pub slash24_alpha: f64,
    /// Mean hosts per active /24 (drives how many /24s activate).
    pub mean_hosts_per_slash24: f64,
    /// Mean active /24s per active /16 (drives how many /16s activate).
    pub mean_slash24s_per_slash16: f64,
    /// /8s to exclude entirely (the observed network lives here).
    pub exclude_slash8s: Vec<u8>,
}

impl Default for CascadeConfig {
    fn default() -> CascadeConfig {
        CascadeConfig {
            target_hosts: 1_000_000,
            slash8_alpha: 1.4,
            slash16_alpha: 1.1,
            slash24_alpha: 1.0,
            mean_hosts_per_slash24: 12.0,
            mean_slash24s_per_slash16: 32.0,
            exclude_slash8s: Vec::new(),
        }
    }
}

/// The generated population: active /24 blocks and their host octets, in a
/// flat, cache-friendly CSR-style layout (47M-host full-scale runs fit
/// comfortably in memory).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Population {
    /// Sorted /24 prefixes (address >> 8).
    prefixes: Vec<u32>,
    /// `offsets[i]..offsets[i+1]` indexes `hosts` for block `i`.
    offsets: Vec<u32>,
    /// Host octets, ascending within each block.
    hosts: Vec<u8>,
}

/// A view of one active /24.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockView<'a> {
    /// The /24 prefix (address >> 8).
    pub prefix: u32,
    /// The active host octets in this /24, ascending.
    pub hosts: &'a [u8],
}

impl BlockView<'_> {
    /// The full address of host `i` in this block.
    pub fn addr(&self, i: usize) -> Ip {
        Ip((self.prefix << 8) | self.hosts[i] as u32)
    }

    /// Iterate the full addresses in this block.
    pub fn addrs(&self) -> impl Iterator<Item = Ip> + '_ {
        self.hosts
            .iter()
            .map(|&h| Ip((self.prefix << 8) | h as u32))
    }
}

impl Population {
    /// Run the cascade (serial convenience wrapper around
    /// [`Population::generate_with`]).
    pub fn generate(cfg: &CascadeConfig, seeds: &SeedTree) -> Population {
        Population::generate_with(cfg, seeds, &Executor::new(1))
    }

    /// Run the cascade, fanning the per-/8 sub-cascades across `pool`.
    ///
    /// The /8 share stage stays serial on the `cascade-slash8` stream;
    /// each surviving /8 then fills from its own prefix-keyed stream
    /// (`cascade-slash16` / the /8 number), so sub-cascades are
    /// order-independent. Shard outputs concatenate in /8 order with host
    /// offsets rebased — byte-identical to the serial cascade at any
    /// thread count.
    pub fn generate_with(cfg: &CascadeConfig, seeds: &SeedTree, pool: &Executor) -> Population {
        assert!(cfg.target_hosts > 0, "empty population requested");
        let slash8s: Vec<u8> = allocated_slash8s()
            .into_iter()
            .filter(|s| !cfg.exclude_slash8s.contains(s))
            .collect();
        assert!(!slash8s.is_empty(), "every /8 excluded");

        // Level 1: /8 shares — serial, on the shared slash8 stream.
        let mut rng8 = seeds.stream("cascade-slash8");
        let w8: Vec<f64> = slash8s
            .iter()
            .map(|_| pareto(&mut rng8, cfg.slash8_alpha))
            .collect();
        let total_w8: f64 = w8.iter().sum();
        let surviving: Vec<(u8, f64)> = slash8s
            .iter()
            .enumerate()
            .filter_map(|(i, &s8)| {
                let t8 = cfg.target_hosts as f64 * w8[i] / total_w8;
                (t8 >= 0.5).then_some((s8, t8))
            })
            .collect();

        // Levels 2–4: one job per surviving /8, each on its own stream.
        let shards = pool.run_indexed(surviving.len(), |i| {
            let (s8, t8) = surviving[i];
            let mut rng = seeds.child("cascade-slash16").stream_idx(s8 as u64);
            let mut prefixes = Vec::new();
            let mut offsets: Vec<u32> = vec![0];
            let mut hosts: Vec<u8> = Vec::new();
            Self::fill_slash8(
                cfg,
                s8,
                t8,
                &mut rng,
                &mut prefixes,
                &mut offsets,
                &mut hosts,
            );
            (prefixes, offsets, hosts)
        });

        // Concatenate in /8 order, rebasing host offsets.
        let mut prefixes = Vec::new();
        let mut offsets: Vec<u32> = vec![0];
        let mut hosts: Vec<u8> = Vec::with_capacity(cfg.target_hosts);
        for (p, o, h) in shards {
            let base = hosts.len() as u32;
            prefixes.extend(p);
            offsets.extend(o.into_iter().skip(1).map(|off| base + off));
            hosts.extend(h);
        }
        debug_assert!(prefixes.windows(2).all(|w| w[0] < w[1]));
        Population {
            prefixes,
            offsets,
            hosts,
        }
    }

    fn fill_slash8(
        cfg: &CascadeConfig,
        s8: u8,
        t8: f64,
        rng: &mut impl Rng,
        prefixes: &mut Vec<u32>,
        offsets: &mut Vec<u32>,
        hosts: &mut Vec<u8>,
    ) {
        // Level 2: choose active /16s.
        let per16 = cfg.mean_slash24s_per_slash16 * cfg.mean_hosts_per_slash24;
        let k16 = ((t8 / per16).ceil() as usize).clamp(1, 256);
        let picks16 = sample_indices(rng, 256, k16);
        let w16: Vec<f64> = picks16
            .iter()
            .map(|_| pareto(rng, cfg.slash16_alpha))
            .collect();
        let total_w16: f64 = w16.iter().sum();

        for (j, &o16) in picks16.iter().enumerate() {
            let t16 = t8 * w16[j] / total_w16;
            if t16 < 0.5 {
                continue;
            }
            // Level 3: choose active /24s.
            let k24 = ((t16 / cfg.mean_hosts_per_slash24).ceil() as usize).clamp(1, 256);
            let picks24 = sample_indices(rng, 256, k24);
            let w24: Vec<f64> = picks24
                .iter()
                .map(|_| pareto(rng, cfg.slash24_alpha))
                .collect();
            let total_w24: f64 = w24.iter().sum();

            for (l, &o24) in picks24.iter().enumerate() {
                let t24 = t16 * w24[l] / total_w24;
                // Level 4: host count, capped by the /24 host space.
                let count = (t24.round() as usize).clamp(0, 254);
                if count == 0 {
                    continue;
                }
                let prefix = ((s8 as u32) << 16) | ((o16 as u32) << 8) | o24 as u32;
                // Skip protocol-reserved sub-ranges inside allocated /8s
                // (RFC 1918's 172.16/12 and 192.168/16, link-local,
                // TEST-NET, benchmarking) — no real hosts live there.
                if Ip(prefix << 8).is_reserved() {
                    continue;
                }
                // Host octets 1..=254 (skip network and broadcast).
                let octets = sample_indices(rng, 254, count);
                prefixes.push(prefix);
                hosts.extend(octets.into_iter().map(|o| (o + 1) as u8));
                offsets.push(hosts.len() as u32);
            }
        }
    }

    /// Number of active /24 blocks.
    pub fn block_count(&self) -> usize {
        self.prefixes.len()
    }

    /// Total active hosts.
    pub fn total_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// View of block `i` (panics out of range).
    pub fn block(&self, i: usize) -> BlockView<'_> {
        BlockView {
            prefix: self.prefixes[i],
            hosts: &self.hosts[self.offsets[i] as usize..self.offsets[i + 1] as usize],
        }
    }

    /// Find a block by its /24 prefix (address >> 8).
    pub fn find(&self, prefix: u32) -> Option<usize> {
        self.prefixes.binary_search(&prefix).ok()
    }

    /// Iterate all blocks.
    pub fn blocks(&self) -> impl Iterator<Item = BlockView<'_>> {
        (0..self.block_count()).map(move |i| self.block(i))
    }

    /// Iterate every active host address, ascending.
    pub fn addrs(&self) -> impl Iterator<Item = Ip> + '_ {
        self.blocks().flat_map(|b| {
            let prefix = b.prefix;
            b.hosts.iter().map(move |&h| Ip((prefix << 8) | h as u32))
        })
    }

    /// All host addresses as an [`IpSet`].
    pub fn to_ipset(&self) -> IpSet {
        let mut raw = Vec::with_capacity(self.total_hosts());
        raw.extend(self.addrs().map(|ip| ip.raw()));
        IpSet::from_sorted(raw)
    }

    /// Whether a given address is an active host.
    pub fn contains(&self, ip: Ip) -> bool {
        match self.find(ip.raw() >> 8) {
            None => false,
            Some(i) => self.block(i).hosts.binary_search(&(ip.raw() as u8)).is_ok(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unclean_core::blocks::BlockCounts;

    fn small_cfg() -> CascadeConfig {
        CascadeConfig {
            target_hosts: 50_000,
            ..CascadeConfig::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Population::generate(&small_cfg(), &SeedTree::new(1));
        let b = Population::generate(&small_cfg(), &SeedTree::new(1));
        assert_eq!(a, b);
        let c = Population::generate(&small_cfg(), &SeedTree::new(2));
        assert_ne!(a, c);
    }

    #[test]
    fn total_near_target() {
        let p = Population::generate(&small_cfg(), &SeedTree::new(3));
        let total = p.total_hosts();
        assert!(
            (25_000..=75_000).contains(&total),
            "total {total} should be near the 50k target"
        );
    }

    #[test]
    fn structure_invariants() {
        let p = Population::generate(&small_cfg(), &SeedTree::new(4));
        // Prefixes strictly ascending.
        let mut last = None;
        for b in p.blocks() {
            if let Some(l) = last {
                assert!(b.prefix > l);
            }
            last = Some(b.prefix);
            // Hosts ascending, in 1..=254, non-empty.
            assert!(!b.hosts.is_empty());
            assert!(b.hosts.windows(2).all(|w| w[0] < w[1]));
            assert!(b.hosts.iter().all(|&h| (1..=254).contains(&h)));
            assert!(b.hosts.len() <= 254);
        }
        assert_eq!(
            p.blocks().map(|b| b.hosts.len()).sum::<usize>(),
            p.total_hosts()
        );
    }

    #[test]
    fn respects_allocation_and_exclusion() {
        let mut cfg = small_cfg();
        cfg.exclude_slash8s = vec![4, 24];
        let p = Population::generate(&cfg, &SeedTree::new(5));
        use crate::allocation::{slash8_status, Slash8Status};
        for b in p.blocks() {
            let s8 = (b.prefix >> 16) as u8;
            assert_eq!(slash8_status(s8), Slash8Status::Allocated, "{s8}/8");
            assert!(s8 != 4 && s8 != 24, "excluded /8 {s8} appeared");
        }
    }

    #[test]
    fn lookup_and_membership() {
        let p = Population::generate(&small_cfg(), &SeedTree::new(6));
        let first = p.block(0);
        let ip = first.addr(0);
        assert!(p.contains(ip));
        assert_eq!(p.find(first.prefix), Some(0));
        // An address in an inactive /24 is absent.
        assert!(!p.contains(Ip(1 << 24)), "1/8 is unallocated in 2006");
    }

    #[test]
    fn to_ipset_matches_iteration() {
        let p = Population::generate(&small_cfg(), &SeedTree::new(7));
        let set = p.to_ipset();
        assert_eq!(set.len(), p.total_hosts());
        let sample: Vec<Ip> = p.addrs().take(100).collect();
        assert!(sample.iter().all(|&ip| set.contains(ip)));
    }

    #[test]
    fn population_is_multifractal_not_uniform() {
        // The heart of the substitution argument: block counts must grow
        // sub-exponentially with prefix length, unlike uniform sampling.
        let p = Population::generate(&small_cfg(), &SeedTree::new(8));
        let set = p.to_ipset();
        let counts = BlockCounts::of(&set);
        // Uniform sampling of ~50k addrs over ~150 /8s would occupy ~50k
        // distinct /24s; the cascade packs them far more tightly.
        let c24 = counts.at(24);
        assert!(
            (c24 as usize) < p.total_hosts() / 3,
            "/24 count {c24} should be far below host count {}",
            p.total_hosts()
        );
        // And growth from /16 to /24 is well below 2^8 = 256×.
        let c16 = counts.at(16);
        assert!(
            c24 < c16 * 64,
            "growth /16→/24 should be sub-uniform: {c16} → {c24}"
        );
        // Per-block host counts are heavy-tailed: the largest block should
        // dwarf the mean.
        let max_block = p.blocks().map(|b| b.hosts.len()).max().expect("non-empty");
        let mean_block = p.total_hosts() as f64 / p.block_count() as f64;
        assert!(max_block as f64 > mean_block * 5.0);
    }

    #[test]
    #[should_panic(expected = "empty population")]
    fn zero_target_panics() {
        let cfg = CascadeConfig {
            target_hosts: 0,
            ..CascadeConfig::default()
        };
        let _ = Population::generate(&cfg, &SeedTree::new(1));
    }

    #[test]
    #[should_panic(expected = "every /8 excluded")]
    fn full_exclusion_panics() {
        let cfg = CascadeConfig {
            exclude_slash8s: (0u8..=255).collect(),
            ..small_cfg()
        };
        let _ = Population::generate(&cfg, &SeedTree::new(1));
    }

    #[test]
    fn scales_to_larger_targets() {
        let cfg = CascadeConfig {
            target_hosts: 500_000,
            ..CascadeConfig::default()
        };
        let p = Population::generate(&cfg, &SeedTree::new(9));
        assert!(p.total_hosts() > 250_000);
        assert!(p.block_count() > 10_000);
    }
}
