//! Archive format v2: per-day indexed segments with zero-copy replay.
//!
//! The v1 spool (`archive`) is a flat run of u16-framed V5 datagrams: the
//! only way to answer "what happened on day 17" is to decode everything
//! before it, one `Vec<V5Record>` per datagram. The §6 replay — two weeks
//! of border flow at >20M-address scale — is the largest serial cost left
//! in the pipeline, so v2 restructures the spool for parallel scans:
//!
//! ```text
//! v1:  [u16 len][V5 datagram] [u16 len][V5 datagram] ...                 EOF
//!
//! v2:  ├── segment (day d0) ──┤├── segment (day d1) ──┤
//!      [uv len][v2 datagram]...[uv len][v2 datagram]...[footer][trailer] EOF
//!       footer  = boot, per-segment {day, offset, len, datagrams, flows,
//!                 first_seq, end_seq, crc32}
//!       trailer = [footer_len u32-le][version 2][magic "UNCLARC"]
//! ```
//!
//! * **Segments** break on day boundaries, so a consumer seeks straight to
//!   the days it needs and an executor replays one worker per segment.
//! * **v2 datagrams** are varint delta-encoded ([`encode_datagram_v2`]):
//!   IPs and timestamps of consecutive records compress to their deltas,
//!   and the varint frame removes the v1 u16 ceiling.
//! * **Decoding is zero-copy**: [`SegmentCursor`] walks a borrowed
//!   segment buffer and [`FlowView`] yields `Flow`s straight off the
//!   wire — no `Vec<V5Record>` per datagram, no per-flow allocation.
//! * **Per-segment CRCs** make corruption local: with lenient replay a
//!   bad segment is quarantined and every other segment still lands,
//!   where a corrupt v1 frame poisons the rest of the spool.
//! * A file without the trailer is read as v1 ([`FlowArchive::open`]
//!   falls back to the sequential [`ArchiveReader`] path).

use crate::archive::{ArchiveError, ArchiveReader, ArchiveTelemetry};
use crate::record::{
    decode_header_v2, encode_datagram_v2, get_uvarint, put_uvarint, unzigzag32, zigzag32,
    DecodeError, V2RecordCursor, V5Header, V5Record, V5_MAX_RECORDS,
};
use crate::seq::{Admit, SequenceTracker};
use crate::session::Flow;
use crossbeam::executor::Executor;
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Seek, SeekFrom, Write};
use unclean_core::{DateRange, Day};

/// Trailing magic identifying an indexed archive.
pub const ARCHIVE_MAGIC: &[u8; 7] = b"UNCLARC";
/// Archive format version this module writes.
pub const ARCHIVE_VERSION: u8 = 2;
/// Fixed trailer size: footer length (4) + version (1) + magic (7).
pub const TRAILER_LEN: usize = 12;

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Incremental CRC-32 (IEEE 802.3 polynomial, the zlib/`cksum -o 3` one).
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Crc32 {
    /// A fresh accumulator.
    pub fn new() -> Crc32 {
        Crc32(0xFFFF_FFFF)
    }

    /// Feed bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.0;
        for &b in bytes {
            c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    /// Finalize to the checksum value.
    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Crc32 {
        Crc32::new()
    }
}

/// CRC-32 of a whole buffer.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

/// One footer index entry: where a day's run of datagrams lives and what
/// it should contain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentInfo {
    /// Day every flow in the segment started on.
    pub day: Day,
    /// Byte offset of the segment's first frame.
    pub offset: u64,
    /// Segment length in bytes.
    pub len: u64,
    /// Datagrams in the segment.
    pub datagrams: u64,
    /// Flow records in the segment.
    pub flows: u64,
    /// Flow sequence number of the segment's first datagram.
    pub first_seq: u32,
    /// Sequence number immediately after the segment's last record — the
    /// next segment's expected entry sequence, so per-segment readers
    /// reproduce the sequential gap accounting exactly.
    pub end_seq: u32,
    /// CRC-32 of the segment bytes.
    pub crc: u32,
}

/// Errors from the indexed archive layer.
#[derive(Debug)]
pub enum IndexedError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A frame or footer field failed to decode.
    Decode(DecodeError),
    /// Structural damage (bad offsets, overrunning frames, short footer).
    Corrupt(String),
    /// A segment's bytes do not match the indexed checksum.
    CrcMismatch {
        /// Segment index in the footer.
        segment: usize,
        /// Checksum the footer recorded.
        expected: u32,
        /// Checksum of the bytes actually present.
        actual: u32,
    },
    /// The trailer magic matched but the version is unknown.
    UnsupportedVersion(u8),
}

impl std::fmt::Display for IndexedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexedError::Io(e) => write!(f, "indexed archive I/O error: {e}"),
            IndexedError::Decode(e) => write!(f, "indexed archive decode error: {e}"),
            IndexedError::Corrupt(detail) => write!(f, "corrupt indexed archive: {detail}"),
            IndexedError::CrcMismatch {
                segment,
                expected,
                actual,
            } => write!(
                f,
                "segment {segment} CRC mismatch: footer says {expected:#010x}, bytes hash to {actual:#010x}"
            ),
            IndexedError::UnsupportedVersion(v) => {
                write!(f, "unsupported indexed archive version {v}")
            }
        }
    }
}

impl std::error::Error for IndexedError {}

impl From<io::Error> for IndexedError {
    fn from(e: io::Error) -> IndexedError {
        IndexedError::Io(e)
    }
}

impl From<DecodeError> for IndexedError {
    fn from(e: DecodeError) -> IndexedError {
        IndexedError::Decode(e)
    }
}

/// The parsed footer of a v2 archive.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArchiveIndex {
    /// Exporter boot anchor all segments were encoded against.
    pub boot_unix_secs: u32,
    /// Per-segment entries in file (= day) order.
    pub segments: Vec<SegmentInfo>,
}

impl ArchiveIndex {
    /// Parse the footer out of a complete archive. `Ok(None)` means the
    /// trailer magic is absent — a v1 archive (or empty file), to be read
    /// sequentially.
    pub fn parse(data: &[u8]) -> Result<Option<ArchiveIndex>, IndexedError> {
        if data.len() < TRAILER_LEN {
            return Ok(None);
        }
        let trailer = &data[data.len() - TRAILER_LEN..];
        let Some(footer_len) = trailer_footer_len(trailer)? else {
            return Ok(None);
        };
        let footer_len = footer_len as usize;
        let data_end = data
            .len()
            .checked_sub(TRAILER_LEN + footer_len)
            .ok_or_else(|| {
                IndexedError::Corrupt(format!(
                    "footer of {footer_len} bytes larger than the {}-byte file",
                    data.len()
                ))
            })?;
        let footer = &data[data_end..data.len() - TRAILER_LEN];
        let index = parse_footer(footer, data_end as u64)?;
        Ok(Some(index))
    }

    /// Total flows recorded across all segments.
    pub fn total_flows(&self) -> u64 {
        self.segments.iter().map(|s| s.flows).sum()
    }

    /// Total datagrams recorded across all segments.
    pub fn total_datagrams(&self) -> u64 {
        self.segments.iter().map(|s| s.datagrams).sum()
    }

    /// The largest segment length — the buffer high-water mark a
    /// one-segment-at-a-time reader needs.
    pub fn max_segment_len(&self) -> u64 {
        self.segments.iter().map(|s| s.len).max().unwrap_or(0)
    }

    /// Indexes of segments whose day falls in `range` (all when `None`).
    pub fn select(&self, range: Option<DateRange>) -> Vec<usize> {
        (0..self.segments.len())
            .filter(|&i| range.is_none_or(|r| r.contains(self.segments[i].day)))
            .collect()
    }

    /// Append this index's footer and trailer to `data`, turning a raw
    /// segment data region (segment offsets tiling `data` exactly from 0)
    /// into a complete v2 archive image that [`IndexedArchive::open`]
    /// accepts. The WAL spooler's recovery path uses this to replay its
    /// sealed prefix through the ordinary indexed readers.
    pub fn seal_image(&self, data: &mut Vec<u8>) {
        debug_assert_eq!(
            self.segments.iter().map(|s| s.len).sum::<u64>(),
            data.len() as u64,
            "index must tile the data region exactly"
        );
        let mut footer = Vec::new();
        self.encode_footer(&mut footer);
        data.extend_from_slice(&footer);
        let mut trailer = [0u8; TRAILER_LEN];
        trailer[..4].copy_from_slice(&(footer.len() as u32).to_le_bytes());
        trailer[4] = ARCHIVE_VERSION;
        trailer[5..].copy_from_slice(ARCHIVE_MAGIC);
        data.extend_from_slice(&trailer);
    }

    fn encode_footer(&self, out: &mut Vec<u8>) {
        put_uvarint(out, u64::from(self.boot_unix_secs));
        put_uvarint(out, self.segments.len() as u64);
        for s in &self.segments {
            put_uvarint(out, zigzag32(s.day.0));
            put_uvarint(out, s.offset);
            put_uvarint(out, s.len);
            put_uvarint(out, s.datagrams);
            put_uvarint(out, s.flows);
            put_uvarint(out, u64::from(s.first_seq));
            put_uvarint(out, u64::from(s.end_seq));
            out.extend_from_slice(&s.crc.to_le_bytes());
        }
    }
}

/// Interpret a 12-byte trailer: `Ok(None)` when the magic is absent (v1),
/// the footer length when it is, an error on a magic-but-unknown version.
fn trailer_footer_len(trailer: &[u8]) -> Result<Option<u32>, IndexedError> {
    debug_assert_eq!(trailer.len(), TRAILER_LEN);
    if &trailer[5..] != ARCHIVE_MAGIC {
        return Ok(None);
    }
    if trailer[4] != ARCHIVE_VERSION {
        return Err(IndexedError::UnsupportedVersion(trailer[4]));
    }
    Ok(Some(u32::from_le_bytes([
        trailer[0], trailer[1], trailer[2], trailer[3],
    ])))
}

/// Parse footer bytes; `data_end` is where segment data stops (= the
/// footer's file offset), used to validate that the index tiles the data
/// region exactly.
fn parse_footer(footer: &[u8], data_end: u64) -> Result<ArchiveIndex, IndexedError> {
    let mut pos = 0;
    let get_u32 = |footer: &[u8], pos: &mut usize| -> Result<u32, IndexedError> {
        u32::try_from(get_uvarint(footer, pos)?)
            .map_err(|_| IndexedError::Decode(DecodeError::BadVarint))
    };
    let boot_unix_secs = get_u32(footer, &mut pos)?;
    let count = get_uvarint(footer, &mut pos)?;
    if count > data_end.max(1) {
        // Each segment holds at least one byte: a count beyond the data
        // region is garbage, not a huge allocation request.
        return Err(IndexedError::Corrupt(format!(
            "footer claims {count} segments in {data_end} bytes of data"
        )));
    }
    let mut segments = Vec::with_capacity(count as usize);
    let mut expected_offset = 0u64;
    for i in 0..count {
        let day = Day(unzigzag32(get_uvarint(footer, &mut pos)?)?);
        let offset = get_uvarint(footer, &mut pos)?;
        let len = get_uvarint(footer, &mut pos)?;
        let datagrams = get_uvarint(footer, &mut pos)?;
        let flows = get_uvarint(footer, &mut pos)?;
        let first_seq = get_u32(footer, &mut pos)?;
        let end_seq = get_u32(footer, &mut pos)?;
        let crc_bytes =
            footer
                .get(pos..pos + 4)
                .ok_or(IndexedError::Decode(DecodeError::Truncated {
                    needed: pos + 4,
                    got: footer.len(),
                }))?;
        pos += 4;
        let crc = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
        if offset != expected_offset {
            return Err(IndexedError::Corrupt(format!(
                "segment {i} starts at {offset}, expected {expected_offset}"
            )));
        }
        expected_offset = offset.checked_add(len).ok_or_else(|| {
            IndexedError::Corrupt(format!("segment {i} length overflows the file"))
        })?;
        if expected_offset > data_end {
            return Err(IndexedError::Corrupt(format!(
                "segment {i} runs to {expected_offset}, past the footer at {data_end}"
            )));
        }
        segments.push(SegmentInfo {
            day,
            offset,
            len,
            datagrams,
            flows,
            first_seq,
            end_seq,
            crc,
        });
    }
    if pos != footer.len() {
        return Err(IndexedError::Corrupt(format!(
            "{} trailing footer bytes",
            footer.len() - pos
        )));
    }
    if expected_offset != data_end {
        return Err(IndexedError::Corrupt(format!(
            "segments cover {expected_offset} bytes but data runs to {data_end}"
        )));
    }
    Ok(ArchiveIndex {
        boot_unix_secs,
        segments,
    })
}

/// In-progress state of the segment being written.
#[derive(Debug)]
struct OpenSegment {
    day: Day,
    start: u64,
    datagrams: u64,
    flows: u64,
    first_seq: u32,
    crc: Crc32,
}

/// Writes flows into a v2 indexed archive: per-day segments of
/// varint-framed delta-compressed datagrams, a footer index, and the
/// magic trailer.
#[derive(Debug)]
pub struct IndexedArchiveWriter<W: Write> {
    out: W,
    boot_unix_secs: u32,
    pending: Vec<V5Record>,
    sequence: u32,
    offset: u64,
    body: Vec<u8>,
    frame_len: Vec<u8>,
    segments: Vec<SegmentInfo>,
    open: Option<OpenSegment>,
}

impl<W: Write> IndexedArchiveWriter<W> {
    /// A writer exporting against the given boot anchor (same lossless
    /// round-trip horizon as [`crate::ArchiveWriter`]: flows must start
    /// within ~49 days of it).
    pub fn new(out: W, boot_unix_secs: u32) -> IndexedArchiveWriter<W> {
        IndexedArchiveWriter {
            out,
            boot_unix_secs,
            pending: Vec::with_capacity(V5_MAX_RECORDS),
            sequence: 0,
            offset: 0,
            body: Vec::new(),
            frame_len: Vec::new(),
            segments: Vec::new(),
            open: None,
        }
    }

    /// Queue one flow. A day change closes the current segment; 30 queued
    /// records flush a datagram.
    pub fn push(&mut self, flow: &Flow) -> io::Result<()> {
        let day = flow.day();
        if self.open.as_ref().is_some_and(|s| s.day != day) {
            self.flush_datagram()?;
            self.close_segment();
        }
        if self.open.is_none() {
            self.open = Some(OpenSegment {
                day,
                start: self.offset,
                datagrams: 0,
                flows: 0,
                first_seq: self.sequence,
                crc: Crc32::new(),
            });
        }
        self.pending.push(flow.to_v5(self.boot_unix_secs));
        if self.pending.len() == V5_MAX_RECORDS {
            self.flush_datagram()?;
        }
        Ok(())
    }

    /// Flush any partial datagram into the open segment.
    pub fn flush_datagram(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let open = self
            .open
            .as_mut()
            .expect("pending records imply an open segment");
        let header = V5Header {
            count: self.pending.len() as u16,
            sys_uptime_ms: 0,
            unix_secs: self.boot_unix_secs,
            unix_nsecs: 0,
            flow_sequence: self.sequence,
            engine_type: 0,
            engine_id: 0,
            sampling_interval: 0,
        };
        self.body.clear();
        encode_datagram_v2(&header, &self.pending, &mut self.body);
        self.frame_len.clear();
        put_uvarint(&mut self.frame_len, self.body.len() as u64);
        self.out.write_all(&self.frame_len)?;
        self.out.write_all(&self.body)?;
        open.crc.update(&self.frame_len);
        open.crc.update(&self.body);
        self.offset += (self.frame_len.len() + self.body.len()) as u64;
        open.datagrams += 1;
        open.flows += self.pending.len() as u64;
        self.sequence = self.sequence.wrapping_add(self.pending.len() as u32);
        self.pending.clear();
        Ok(())
    }

    fn close_segment(&mut self) {
        if let Some(open) = self.open.take() {
            self.segments.push(SegmentInfo {
                day: open.day,
                offset: open.start,
                len: self.offset - open.start,
                datagrams: open.datagrams,
                flows: open.flows,
                first_seq: open.first_seq,
                end_seq: self.sequence,
                crc: open.crc.finish(),
            });
        }
    }

    /// Finish: flush, close the last segment, write footer + trailer, and
    /// return the inner writer with the index that was persisted.
    pub fn finish(mut self) -> io::Result<(W, ArchiveIndex)> {
        self.flush_datagram()?;
        self.close_segment();
        let index = ArchiveIndex {
            boot_unix_secs: self.boot_unix_secs,
            segments: std::mem::take(&mut self.segments),
        };
        let mut footer = Vec::new();
        index.encode_footer(&mut footer);
        self.out.write_all(&footer)?;
        let mut trailer = [0u8; TRAILER_LEN];
        trailer[..4].copy_from_slice(&(footer.len() as u32).to_le_bytes());
        trailer[4] = ARCHIVE_VERSION;
        trailer[5..].copy_from_slice(ARCHIVE_MAGIC);
        self.out.write_all(&trailer)?;
        self.out.flush()?;
        Ok((self.out, index))
    }
}

/// Zero-copy iterator over the flows of one decoded datagram. Borrows the
/// segment buffer; every [`Flow`] comes straight off the delta-decoded
/// wire with no intermediate `Vec<V5Record>`.
#[derive(Debug)]
pub struct FlowView<'a> {
    header: V5Header,
    records: V2RecordCursor<'a>,
    boot_unix_secs: u32,
    admit: Admit,
    next_index: u32,
}

impl FlowView<'_> {
    /// The datagram's export header.
    pub fn header(&self) -> &V5Header {
        &self.header
    }

    /// Decode the next *admitted* flow; `Ok(None)` when the datagram is
    /// drained. Records withheld as duplicates are decoded past, never
    /// yielded.
    pub fn try_next(&mut self) -> Result<Option<Flow>, IndexedError> {
        while let Some(r) = self.records.next_record()? {
            let k = self.next_index;
            self.next_index += 1;
            if self.admit.admits(k) {
                return Ok(Some(Flow::from_v5(&r, self.boot_unix_secs)));
            }
        }
        Ok(None)
    }
}

impl Iterator for FlowView<'_> {
    type Item = Result<Flow, IndexedError>;

    fn next(&mut self) -> Option<Result<Flow, IndexedError>> {
        self.try_next().transpose()
    }
}

/// Streaming decoder over one segment's bytes, with the same
/// sequence-gap/reorder accounting as the v1 [`ArchiveReader`] — kept in
/// a plain [`ArchiveTelemetry`] so parallel per-segment cursors sum
/// without shared counters.
#[derive(Debug)]
pub struct SegmentCursor<'a> {
    data: &'a [u8],
    pos: usize,
    boot_unix_secs: u32,
    tracker: SequenceTracker,
    telemetry: ArchiveTelemetry,
}

impl<'a> SegmentCursor<'a> {
    /// A cursor over `data` (exactly one segment). `entry_sequence` is the
    /// sequence number expected at the segment's first datagram —
    /// `Some(prev_segment.end_seq)` when replaying contiguously, `None`
    /// at the start of a scan — so per-segment accounting reproduces the
    /// sequential reader's gap bookkeeping exactly.
    pub fn new(
        data: &'a [u8],
        boot_unix_secs: u32,
        entry_sequence: Option<u32>,
    ) -> SegmentCursor<'a> {
        SegmentCursor {
            data,
            pos: 0,
            boot_unix_secs,
            tracker: SequenceTracker::new(entry_sequence),
            telemetry: ArchiveTelemetry::default(),
        }
    }

    /// Loss and delivery accounting so far.
    pub fn telemetry(&self) -> ArchiveTelemetry {
        self.telemetry
    }

    /// Decode the next datagram's frame; `Ok(None)` at the segment end.
    pub fn next_datagram(&mut self) -> Result<Option<FlowView<'a>>, IndexedError> {
        if self.pos == self.data.len() {
            return Ok(None);
        }
        let frame_len = get_uvarint(self.data, &mut self.pos)? as usize;
        let end = self
            .pos
            .checked_add(frame_len)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| {
                IndexedError::Corrupt(format!("frame of {frame_len} bytes overruns the segment"))
            })?;
        let body = &self.data[self.pos..end];
        self.pos = end;
        let mut bpos = 0;
        let header = decode_header_v2(body, &mut bpos)?;
        // Same circle-splitting gap/reorder/duplicate disambiguation as
        // the v1 reader: forward jumps are loss, backward jumps are
        // classified against the outstanding-gap book — late arrivals
        // deliver (recovered), re-deliveries are withheld (duplicates).
        let obs = self
            .tracker
            .observe(header.flow_sequence, u32::from(header.count));
        self.telemetry.apply(&obs);
        self.telemetry.datagrams += 1;
        self.telemetry.flows += u64::from(obs.admit.admitted(u32::from(header.count)));
        Ok(Some(FlowView {
            header,
            records: V2RecordCursor::new(body, bpos, header.count),
            boot_unix_secs: self.boot_unix_secs,
            admit: obs.admit,
            next_index: 0,
        }))
    }

    /// Drain the segment, feeding every flow to `sink`.
    pub fn for_each_flow(&mut self, mut sink: impl FnMut(&Flow)) -> Result<(), IndexedError> {
        while let Some(mut view) = self.next_datagram()? {
            while let Some(flow) = view.try_next()? {
                sink(&flow);
            }
        }
        Ok(())
    }
}

/// A segment the lenient replay skipped instead of failing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantinedSegment {
    /// Segment index in the footer.
    pub segment: usize,
    /// The day the segment covered.
    pub day: Day,
    /// Why it was skipped.
    pub detail: String,
}

/// Outcome of replaying one segment: `output` is `None` when the segment
/// was quarantined.
#[derive(Debug, Clone)]
pub struct SegmentOutput<T> {
    /// Segment index in the footer.
    pub segment: usize,
    /// The footer entry.
    pub info: SegmentInfo,
    /// The per-segment worker's result.
    pub output: Option<T>,
}

/// Result of a (possibly parallel) replay: per-segment outputs in file
/// (= day) order, summed telemetry, and any quarantined segments.
#[derive(Debug, Clone)]
pub struct Replay<T> {
    /// Per-segment results in day order.
    pub outputs: Vec<SegmentOutput<T>>,
    /// Loss accounting summed over all replayed segments — equal to what
    /// one sequential pass would have recorded.
    pub telemetry: ArchiveTelemetry,
    /// Segments skipped by lenient replay.
    pub quarantined: Vec<QuarantinedSegment>,
}

/// A v2 archive opened over a byte slice: the footer index plus seekable,
/// independently decodable segments.
#[derive(Debug, Clone)]
pub struct IndexedArchive<'a> {
    data: &'a [u8],
    index: ArchiveIndex,
}

impl<'a> IndexedArchive<'a> {
    /// Open a complete archive image. `Ok(None)` means no v2 trailer —
    /// treat the bytes as a v1 archive.
    pub fn open(data: &'a [u8]) -> Result<Option<IndexedArchive<'a>>, IndexedError> {
        Ok(ArchiveIndex::parse(data)?.map(|index| IndexedArchive { data, index }))
    }

    /// The exporter boot anchor recorded in the footer.
    pub fn boot_unix_secs(&self) -> u32 {
        self.index.boot_unix_secs
    }

    /// The parsed footer.
    pub fn index(&self) -> &ArchiveIndex {
        &self.index
    }

    /// Footer entries in file (= day) order.
    pub fn segments(&self) -> &[SegmentInfo] {
        &self.index.segments
    }

    /// The raw bytes of segment `i`.
    pub fn segment_bytes(&self, i: usize) -> &'a [u8] {
        let s = &self.index.segments[i];
        &self.data[s.offset as usize..(s.offset + s.len) as usize]
    }

    /// Check segment `i` against its indexed CRC.
    pub fn verify_segment(&self, i: usize) -> Result<(), IndexedError> {
        let expected = self.index.segments[i].crc;
        let actual = crc32(self.segment_bytes(i));
        if actual != expected {
            return Err(IndexedError::CrcMismatch {
                segment: i,
                expected,
                actual,
            });
        }
        Ok(())
    }

    /// Expected entry sequence for segment `i` given that `prev_selected`
    /// says whether segment `i - 1` is part of the same scan.
    fn entry_sequence(&self, i: usize, prev_selected: bool) -> Option<u32> {
        if i == 0 || !prev_selected {
            None
        } else {
            Some(self.index.segments[i - 1].end_seq)
        }
    }

    /// Sequentially read the flows of the days in `range` (the whole
    /// archive when `None`), verifying CRCs, with summed telemetry.
    pub fn read_day_range(
        &self,
        range: Option<DateRange>,
    ) -> Result<(Vec<Flow>, ArchiveTelemetry), IndexedError> {
        let selected = self.index.select(range);
        let mut flows = Vec::new();
        let mut telemetry = ArchiveTelemetry::default();
        let mut prev: Option<usize> = None;
        for &i in &selected {
            self.verify_segment(i)?;
            let entry = self.entry_sequence(i, prev == Some(i.wrapping_sub(1)));
            let mut cursor =
                SegmentCursor::new(self.segment_bytes(i), self.index.boot_unix_secs, entry);
            cursor.for_each_flow(|f| flows.push(*f))?;
            telemetry.accumulate(&cursor.telemetry());
            prev = Some(i);
        }
        Ok((flows, telemetry))
    }

    /// Replay the segments of `range` (all when `None`) in parallel — one
    /// worker per segment over `pool`, outputs merged in day order, so the
    /// result is identical at any thread count. Each worker CRC-verifies
    /// its segment, then runs `f` with a zero-copy [`SegmentCursor`].
    ///
    /// With `lenient`, a segment that fails its CRC or decode is
    /// quarantined (recorded, output `None`) and every other segment
    /// still lands; otherwise the first failing segment's error (in day
    /// order) aborts the replay.
    pub fn replay_with<T, F>(
        &self,
        pool: &Executor,
        range: Option<DateRange>,
        lenient: bool,
        f: F,
    ) -> Result<Replay<T>, IndexedError>
    where
        T: Send,
        F: Fn(&SegmentInfo, &mut SegmentCursor<'a>) -> Result<T, IndexedError> + Sync,
    {
        let selected = self.index.select(range);
        let results = pool.run_indexed(selected.len(), |k| {
            let i = selected[k];
            self.verify_segment(i)?;
            let entry = self.entry_sequence(i, k > 0 && selected[k - 1] == i - 1);
            let mut cursor =
                SegmentCursor::new(self.segment_bytes(i), self.index.boot_unix_secs, entry);
            let output = f(&self.index.segments[i], &mut cursor)?;
            Ok::<_, IndexedError>((output, cursor.telemetry()))
        });
        let mut replay = Replay {
            outputs: Vec::with_capacity(selected.len()),
            telemetry: ArchiveTelemetry::default(),
            quarantined: Vec::new(),
        };
        for (k, result) in results.into_iter().enumerate() {
            let i = selected[k];
            let info = self.index.segments[i];
            match result {
                Ok((output, telemetry)) => {
                    replay.telemetry.accumulate(&telemetry);
                    replay.outputs.push(SegmentOutput {
                        segment: i,
                        info,
                        output: Some(output),
                    });
                }
                Err(e) if lenient => {
                    replay.quarantined.push(QuarantinedSegment {
                        segment: i,
                        day: info.day,
                        detail: e.to_string(),
                    });
                    replay.outputs.push(SegmentOutput {
                        segment: i,
                        info,
                        output: None,
                    });
                }
                Err(e) => return Err(e),
            }
        }
        Ok(replay)
    }
}

/// An archive of either vintage, sniffed from its bytes.
#[derive(Debug)]
pub enum FlowArchive<'a> {
    /// v2: trailer present, indexed access available.
    V2(IndexedArchive<'a>),
    /// v1 (no trailer): read sequentially with [`ArchiveReader`].
    V1(&'a [u8]),
}

impl<'a> FlowArchive<'a> {
    /// Sniff and open: v2 when the trailer magic is present, v1 fallback
    /// otherwise.
    pub fn open(data: &'a [u8]) -> Result<FlowArchive<'a>, IndexedError> {
        Ok(match IndexedArchive::open(data)? {
            Some(archive) => FlowArchive::V2(archive),
            None => FlowArchive::V1(data),
        })
    }
}

/// Whether bytes look like a v1 framed archive: a plausible u16 frame
/// whose payload leads with the V5 version word.
pub fn looks_like_v1(data: &[u8]) -> bool {
    if data.len() < 4 {
        return false;
    }
    let frame = u16::from_be_bytes([data[0], data[1]]) as usize;
    frame >= crate::record::V5_HEADER_LEN && 2 + frame <= data.len() && data[2] == 0 && data[3] == 5
}

/// Re-encode a v1 archive as v2 (the `unclean archive index` upgrade).
/// Returns the v2 bytes, the index, and the v1 read's loss accounting —
/// sequence gaps in the source survive as gaps in the re-export.
pub fn upgrade_v1(
    data: &[u8],
    boot_unix_secs: u32,
) -> Result<(Vec<u8>, ArchiveIndex, ArchiveTelemetry), ArchiveError> {
    let mut reader = ArchiveReader::new(data, boot_unix_secs);
    let mut writer = IndexedArchiveWriter::new(Vec::new(), boot_unix_secs);
    while let Some(batch) = reader.next_datagram()? {
        for flow in &batch {
            writer.push(flow).map_err(ArchiveError::Io)?;
        }
    }
    let (bytes, index) = writer.finish().map_err(ArchiveError::Io)?;
    Ok((bytes, index, reader.telemetry()))
}

/// Streams a v2 archive from a seekable source one segment at a time
/// through a reusable buffer — constant memory in the archive size, the
/// high-water mark being the largest single segment.
#[derive(Debug)]
pub struct SegmentReader<R> {
    inner: R,
    index: ArchiveIndex,
    buf: Vec<u8>,
    peak: usize,
}

impl<R: Read + Seek> SegmentReader<R> {
    /// Open a seekable v2 archive; `Ok(None)` when the trailer is absent
    /// (v1 — read it sequentially instead).
    pub fn open(mut inner: R) -> Result<Option<SegmentReader<R>>, IndexedError> {
        let len = inner.seek(SeekFrom::End(0))?;
        if len < TRAILER_LEN as u64 {
            return Ok(None);
        }
        inner.seek(SeekFrom::Start(len - TRAILER_LEN as u64))?;
        let mut trailer = [0u8; TRAILER_LEN];
        inner.read_exact(&mut trailer)?;
        let Some(footer_len) = trailer_footer_len(&trailer)? else {
            return Ok(None);
        };
        let footer_len = footer_len as u64;
        let data_end = len
            .checked_sub(TRAILER_LEN as u64 + footer_len)
            .ok_or_else(|| {
                IndexedError::Corrupt(format!(
                    "footer of {footer_len} bytes larger than the {len}-byte file"
                ))
            })?;
        inner.seek(SeekFrom::Start(data_end))?;
        let mut footer = vec![0u8; footer_len as usize];
        inner.read_exact(&mut footer)?;
        let index = parse_footer(&footer, data_end)?;
        Ok(Some(SegmentReader {
            inner,
            index,
            buf: Vec::new(),
            peak: 0,
        }))
    }

    /// The parsed footer.
    pub fn index(&self) -> &ArchiveIndex {
        &self.index
    }

    /// Load segment `i` into the reusable buffer and CRC-verify it.
    pub fn load_segment(&mut self, i: usize) -> Result<&[u8], IndexedError> {
        let info = self.index.segments[i];
        self.inner.seek(SeekFrom::Start(info.offset))?;
        self.buf.resize(info.len as usize, 0);
        self.inner.read_exact(&mut self.buf)?;
        self.peak = self.peak.max(self.buf.len());
        let actual = crc32(&self.buf);
        if actual != info.crc {
            return Err(IndexedError::CrcMismatch {
                segment: i,
                expected: info.crc,
                actual,
            });
        }
        Ok(&self.buf)
    }

    /// Largest buffer held so far — the reader's RSS-relevant high-water
    /// mark.
    pub fn peak_buffer_bytes(&self) -> usize {
        self.peak
    }

    /// Give back the underlying source.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{proto, tcp_flags, EPOCH_UNIX_SECS};
    use unclean_core::Ip;

    fn boot() -> u32 {
        EPOCH_UNIX_SECS + 86_400 * 270
    }

    fn flow(day: i32, i: u32) -> Flow {
        Flow {
            src: Ip(0x0901_0000 + i),
            dst: Ip(0x1e00_0001),
            src_port: (1024 + i % 60_000) as u16,
            dst_port: 80,
            proto: proto::TCP,
            packets: 3 + i % 5,
            octets: 200 + i,
            flags: tcp_flags::SYN | tcp_flags::ACK,
            start_secs: i64::from(day) * 86_400 + i64::from(i % 86_000),
            duration_secs: i % 30,
        }
    }

    /// 3 days × `per_day` flows, days 273..=275.
    fn write_archive(per_day: u32) -> (Vec<u8>, ArchiveIndex, Vec<Flow>) {
        let mut w = IndexedArchiveWriter::new(Vec::new(), boot());
        let mut all = Vec::new();
        for day in 273..276 {
            for i in 0..per_day {
                let f = flow(day, i);
                w.push(&f).expect("in-memory write");
                all.push(f);
            }
        }
        let (bytes, index) = w.finish().expect("finish");
        (bytes, index, all)
    }

    #[test]
    fn crc32_known_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn index_round_trip() {
        let (bytes, index, all) = write_archive(95);
        assert_eq!(index.segments.len(), 3, "one segment per day");
        assert_eq!(index.total_flows(), all.len() as u64);
        assert_eq!(index.total_datagrams(), 3 * 4, "95 flows = 4 datagrams/day");
        let parsed = ArchiveIndex::parse(&bytes)
            .expect("well-formed")
            .expect("v2");
        assert_eq!(parsed, index);
        let days: Vec<i32> = index.segments.iter().map(|s| s.day.0).collect();
        assert_eq!(days, vec![273, 274, 275]);
        // Sequence continuity across segments.
        assert_eq!(index.segments[0].first_seq, 0);
        assert_eq!(index.segments[0].end_seq, 95);
        assert_eq!(index.segments[1].first_seq, 95);
    }

    #[test]
    fn sequential_read_matches_original() {
        let (bytes, _, all) = write_archive(95);
        let archive = IndexedArchive::open(&bytes).expect("ok").expect("v2");
        let (flows, telemetry) = archive.read_day_range(None).expect("clean");
        assert_eq!(flows, all);
        assert_eq!(telemetry.flows, all.len() as u64);
        assert_eq!(telemetry.lost_flows, 0);
        assert_eq!(telemetry.sequence_gaps, 0);
        assert_eq!(telemetry.reordered, 0);
    }

    #[test]
    fn parallel_replay_equals_sequential_at_any_thread_count() {
        let (bytes, _, all) = write_archive(200);
        let archive = IndexedArchive::open(&bytes).expect("ok").expect("v2");
        let (seq_flows, seq_t) = archive.read_day_range(None).expect("clean");
        for threads in [1, 2, 7] {
            let pool = Executor::new(threads);
            let replay = archive
                .replay_with(&pool, None, false, |_, cursor| {
                    let mut flows = Vec::new();
                    cursor.for_each_flow(|f| flows.push(*f))?;
                    Ok(flows)
                })
                .expect("clean");
            let merged: Vec<Flow> = replay
                .outputs
                .iter()
                .flat_map(|o| o.output.clone().expect("no quarantine"))
                .collect();
            assert_eq!(merged, seq_flows, "threads={threads}");
            assert_eq!(merged, all);
            assert_eq!(replay.telemetry, seq_t, "threads={threads}");
            assert!(replay.quarantined.is_empty());
        }
    }

    #[test]
    fn day_range_seeks_only_the_asked_days() {
        let (bytes, _, all) = write_archive(50);
        let archive = IndexedArchive::open(&bytes).expect("ok").expect("v2");
        let range = DateRange::new(Day(274), Day(274));
        let (flows, telemetry) = archive.read_day_range(Some(range)).expect("clean");
        let expected: Vec<Flow> = all
            .iter()
            .filter(|f| f.day() == Day(274))
            .copied()
            .collect();
        assert_eq!(flows, expected);
        assert_eq!(telemetry.flows, 50);
        // A mid-archive scan must not book the skipped prefix as loss.
        assert_eq!(telemetry.lost_flows, 0);
        assert_eq!(telemetry.sequence_gaps, 0);
    }

    #[test]
    fn corrupt_segment_quarantines_only_itself() {
        let (mut bytes, index, _) = write_archive(95);
        // Flip a byte in the middle segment's data.
        let mid = &index.segments[1];
        bytes[(mid.offset + mid.len / 2) as usize] ^= 0xff;
        let archive = IndexedArchive::open(&bytes).expect("ok").expect("v2");
        // Strict replay fails with the CRC mismatch…
        let pool = Executor::new(2);
        let strict = archive.replay_with(&pool, None, false, |_, cursor| {
            let mut n = 0u64;
            cursor.for_each_flow(|_| n += 1)?;
            Ok(n)
        });
        assert!(matches!(
            strict,
            Err(IndexedError::CrcMismatch { segment: 1, .. })
        ));
        // …lenient replay quarantines day 274 and delivers the other two.
        let replay = archive
            .replay_with(&pool, None, true, |_, cursor| {
                let mut n = 0u64;
                cursor.for_each_flow(|_| n += 1)?;
                Ok(n)
            })
            .expect("lenient");
        assert_eq!(replay.quarantined.len(), 1);
        assert_eq!(replay.quarantined[0].segment, 1);
        assert_eq!(replay.quarantined[0].day, Day(274));
        let delivered: u64 = replay.outputs.iter().filter_map(|o| o.output).sum();
        assert_eq!(delivered, 2 * 95);
        assert!(replay.outputs[1].output.is_none());
    }

    #[test]
    fn v1_bytes_fall_back() {
        let mut w = crate::ArchiveWriter::new(Vec::new(), boot());
        for i in 0..40 {
            w.push(&flow(273, i)).expect("write");
        }
        let (bytes, _) = w.finish().expect("finish");
        assert!(ArchiveIndex::parse(&bytes).expect("ok").is_none());
        match FlowArchive::open(&bytes).expect("ok") {
            FlowArchive::V1(data) => {
                assert!(looks_like_v1(data));
                let mut r = ArchiveReader::new(data, boot());
                assert_eq!(r.read_all().expect("ok").len(), 40);
            }
            FlowArchive::V2(_) => panic!("v1 bytes must not open as v2"),
        }
    }

    #[test]
    fn empty_archive_is_v2_with_no_segments() {
        let (bytes, index) = IndexedArchiveWriter::new(Vec::new(), boot())
            .finish()
            .expect("ok");
        assert!(index.segments.is_empty());
        let archive = IndexedArchive::open(&bytes).expect("ok").expect("v2");
        let (flows, telemetry) = archive.read_day_range(None).expect("ok");
        assert!(flows.is_empty());
        assert_eq!(telemetry, ArchiveTelemetry::default());
    }

    #[test]
    fn unsupported_version_errors_rather_than_misreads() {
        let (mut bytes, _, _) = write_archive(10);
        let version_at = bytes.len() - TRAILER_LEN + 4;
        bytes[version_at] = 3;
        assert!(matches!(
            ArchiveIndex::parse(&bytes),
            Err(IndexedError::UnsupportedVersion(3))
        ));
    }

    #[test]
    fn damaged_footer_is_corrupt_not_v1() {
        let (bytes, index, _) = write_archive(10);
        // Rebuild the archive with a footer whose first segment claims to
        // start one byte in: the index no longer tiles the data region.
        let data_end: u64 = index.segments.iter().map(|s| s.len).sum();
        let mut bad_index = index.clone();
        bad_index.segments[0].offset += 1;
        let mut footer = Vec::new();
        bad_index.encode_footer(&mut footer);
        let mut bad = bytes[..data_end as usize].to_vec();
        bad.extend_from_slice(&footer);
        let mut trailer = [0u8; TRAILER_LEN];
        trailer[..4].copy_from_slice(&(footer.len() as u32).to_le_bytes());
        trailer[4] = ARCHIVE_VERSION;
        trailer[5..].copy_from_slice(ARCHIVE_MAGIC);
        bad.extend_from_slice(&trailer);
        assert!(matches!(
            ArchiveIndex::parse(&bad),
            Err(IndexedError::Corrupt(_))
        ));
    }

    #[test]
    fn upgrade_v1_preserves_flows_and_builds_segments() {
        let mut w = crate::ArchiveWriter::new(Vec::new(), boot());
        let mut all = Vec::new();
        for day in 273..275 {
            for i in 0..35 {
                let f = flow(day, i);
                w.push(&f).expect("write");
                all.push(f);
            }
        }
        let (v1, _) = w.finish().expect("finish");
        let (v2, index, telemetry) = upgrade_v1(&v1, boot()).expect("upgrade");
        assert_eq!(telemetry.flows, 70);
        assert_eq!(index.segments.len(), 2);
        let archive = IndexedArchive::open(&v2).expect("ok").expect("v2");
        let (flows, _) = archive.read_day_range(None).expect("clean");
        assert_eq!(flows, all);
    }

    #[test]
    fn segment_reader_streams_with_bounded_buffer() {
        let (bytes, index, all) = write_archive(64);
        let mut reader = SegmentReader::open(io::Cursor::new(&bytes))
            .expect("ok")
            .expect("v2");
        assert_eq!(reader.index(), &index);
        let mut flows = Vec::new();
        let mut prev: Option<u32> = None;
        for i in 0..reader.index().segments.len() {
            let entry = prev;
            prev = Some(reader.index().segments[i].end_seq);
            let boot = reader.index().boot_unix_secs;
            let seg = reader.load_segment(i).expect("crc ok");
            let mut cursor = SegmentCursor::new(seg, boot, entry);
            cursor.for_each_flow(|f| flows.push(*f)).expect("clean");
        }
        assert_eq!(flows, all);
        assert_eq!(
            reader.peak_buffer_bytes() as u64,
            reader.index().max_segment_len(),
            "high-water mark is the largest single segment"
        );
        assert!((reader.peak_buffer_bytes() as u64) < bytes.len() as u64);
    }

    #[test]
    fn v2_spool_is_smaller_than_v1() {
        let (v2, _, all) = write_archive(500);
        let mut w = crate::ArchiveWriter::new(Vec::new(), boot());
        for f in &all {
            w.push(f).expect("write");
        }
        let (v1, _) = w.finish().expect("finish");
        assert!(
            (v2.len() as f64) < 0.6 * v1.len() as f64,
            "delta compression: v2 {} bytes vs v1 {}",
            v2.len(),
            v1.len()
        );
    }

    #[test]
    fn error_display() {
        assert!(IndexedError::UnsupportedVersion(7)
            .to_string()
            .contains('7'));
        assert!(IndexedError::Corrupt("x".into()).to_string().contains('x'));
        assert!(IndexedError::CrcMismatch {
            segment: 2,
            expected: 1,
            actual: 3
        }
        .to_string()
        .contains("segment 2"));
        assert!(IndexedError::Decode(DecodeError::BadVarint)
            .to_string()
            .contains("varint"));
        assert!(IndexedError::Io(io::Error::other("y"))
            .to_string()
            .contains("I/O"));
    }
}
