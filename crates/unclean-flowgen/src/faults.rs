//! Fault injection for the flow pipeline.
//!
//! Operational NetFlow is lossy: exporters sample and drop under load, UDP
//! export datagrams vanish or arrive corrupted, and collectors deduplicate
//! imperfectly. Analyses built on flow data must degrade gracefully, so —
//! in the tradition of network-stack test harnesses — this module wraps a
//! flow stream with configurable, seeded faults:
//!
//! * **drop** — the flow never reaches the collector;
//! * **duplicate** — the flow is delivered twice (retransmitted export);
//! * **corrupt** — one byte of the flow's wire encoding flips; the flow is
//!   re-decoded and delivered as whatever the bytes now say (fields-level
//!   corruption, exactly what a bit-flipped datagram produces);
//! * **burst loss** — a correlated run of consecutive drops, the signature
//!   of a collector buffer overrun or a routing flap (real telemetry loss
//!   clusters; independent drops alone understate the damage);
//! * **truncation** — the export datagram is cut short mid-record, so the
//!   flow's partial encoding never decodes and the flow is lost (counted
//!   separately from drops: an operator diagnoses the two differently).
//!
//! The integration suite drives the detectors through this wrapper to show
//! the paper's pipeline conclusions survive realistic telemetry loss.

use crate::record::EPOCH_UNIX_SECS;
use crate::session::Flow;
use serde::{Deserialize, Serialize};
use unclean_netmodel::randutil::{decides, index_hash};
use unclean_stats::SeedTree;
use unclean_telemetry::{Counter, Registry};

/// Fault probabilities (each evaluated independently per flow).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability a flow is dropped entirely.
    pub drop_chance: f64,
    /// Probability a flow is delivered twice.
    pub duplicate_chance: f64,
    /// Probability one byte of the flow's V5 encoding flips.
    pub corrupt_chance: f64,
    /// Probability a loss burst *starts* at a given flow (when one isn't
    /// already running); the burst then swallows [`FaultConfig::burst_len`]
    /// consecutive flows.
    pub burst_chance: f64,
    /// Flows consumed by one loss burst.
    pub burst_len: u32,
    /// Probability the flow's export datagram is truncated mid-record,
    /// losing the flow.
    pub truncate_chance: f64,
    /// Probability a whole *encoded export datagram* is delivered twice
    /// on the wire ([`FaultInjector::apply_datagram`]) — a retransmitted
    /// UDP export, the fault a collector must detect by
    /// `first_seq`/`end_seq` overlap rather than double-ingest.
    #[serde(default)]
    pub dup_datagram_chance: f64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            drop_chance: 0.0,
            duplicate_chance: 0.0,
            corrupt_chance: 0.0,
            burst_chance: 0.0,
            burst_len: 8,
            truncate_chance: 0.0,
            dup_datagram_chance: 0.0,
        }
    }
}

impl FaultConfig {
    /// The smoltcp examples' "good starting value" — 15% drop and corrupt —
    /// plus correlated bursts and datagram truncation on top, the faults a
    /// congested collector actually sees.
    pub fn adverse() -> FaultConfig {
        FaultConfig {
            drop_chance: 0.15,
            duplicate_chance: 0.05,
            corrupt_chance: 0.15,
            burst_chance: 0.005,
            burst_len: 8,
            truncate_chance: 0.05,
            dup_datagram_chance: 0.05,
        }
    }
}

/// Statistics of what the injector did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Flows seen.
    pub seen: u64,
    /// Flows dropped (independent drops).
    pub dropped: u64,
    /// Flows duplicated.
    pub duplicated: u64,
    /// Flows corrupted.
    pub corrupted: u64,
    /// Flows swallowed by correlated loss bursts.
    pub burst_dropped: u64,
    /// Flows lost to datagram truncation.
    pub truncated: u64,
    /// Whole export datagrams delivered twice by
    /// [`FaultInjector::apply_datagram`].
    #[serde(default)]
    pub duplicated_datagrams: u64,
}

/// Registry counters mirroring [`FaultStats`], all disabled by default.
#[derive(Debug, Clone, Default)]
struct FaultCounters {
    seen: Counter,
    dropped: Counter,
    duplicated: Counter,
    corrupted: Counter,
    burst_dropped: Counter,
    truncated: Counter,
    duplicated_datagrams: Counter,
}

/// A seeded fault injector over flows.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    seeds: SeedTree,
    stats: FaultStats,
    counters: FaultCounters,
    counter: u32,
    datagram_counter: u32,
    burst_remaining: u32,
}

impl FaultInjector {
    /// Build an injector; identical (config, seed) sequences produce
    /// identical fault patterns.
    pub fn new(config: FaultConfig, seeds: SeedTree) -> FaultInjector {
        for p in [
            config.drop_chance,
            config.duplicate_chance,
            config.corrupt_chance,
            config.burst_chance,
            config.truncate_chance,
            config.dup_datagram_chance,
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "fault probability {p} out of range"
            );
        }
        assert!(
            config.burst_chance == 0.0 || config.burst_len > 0,
            "burst_len must be positive when bursts are enabled"
        );
        FaultInjector {
            config,
            seeds,
            stats: FaultStats::default(),
            counters: FaultCounters::default(),
            counter: 0,
            datagram_counter: 0,
            burst_remaining: 0,
        }
    }

    /// Mirror the injector's accounting onto `registry` as the
    /// `faults.seen` / `faults.dropped` / `faults.duplicated` /
    /// `faults.corrupted` / `faults.burst_dropped` / `faults.truncated`
    /// counters (incremented alongside [`FaultInjector::stats`]).
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.counters = FaultCounters {
            seen: registry.counter("faults.seen"),
            dropped: registry.counter("faults.dropped"),
            duplicated: registry.counter("faults.duplicated"),
            corrupted: registry.counter("faults.corrupted"),
            burst_dropped: registry.counter("faults.burst_dropped"),
            truncated: registry.counter("faults.truncated"),
            duplicated_datagrams: registry.counter("faults.duplicated_datagrams"),
        };
    }

    /// What the injector has done so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Pass one flow through the fault model, delivering the survivors to
    /// `sink` (zero, one, or two times).
    pub fn apply(&mut self, flow: &Flow, mut sink: impl FnMut(Flow)) {
        self.counter = self.counter.wrapping_add(1);
        let n = self.counter;
        self.stats.seen += 1;
        self.counters.seen.inc();
        // A running burst swallows everything until it ends — correlated
        // loss, checked before any independent fault.
        if self.burst_remaining > 0 {
            self.burst_remaining -= 1;
            self.stats.burst_dropped += 1;
            self.counters.burst_dropped.inc();
            return;
        }
        if decides(&self.seeds, n, 0, "fault-burst", self.config.burst_chance) {
            self.burst_remaining = self.config.burst_len.saturating_sub(1);
            self.stats.burst_dropped += 1;
            self.counters.burst_dropped.inc();
            return;
        }
        if decides(&self.seeds, n, 0, "fault-drop", self.config.drop_chance) {
            self.stats.dropped += 1;
            self.counters.dropped.inc();
            return;
        }
        if decides(
            &self.seeds,
            n,
            0,
            "fault-trunc",
            self.config.truncate_chance,
        ) {
            // The record sits past the cut in a truncated datagram: its
            // partial bytes never decode, so the flow is simply lost.
            self.stats.truncated += 1;
            self.counters.truncated.inc();
            return;
        }
        let delivered = if decides(
            &self.seeds,
            n,
            0,
            "fault-corrupt",
            self.config.corrupt_chance,
        ) {
            self.stats.corrupted += 1;
            self.counters.corrupted.inc();
            corrupt_one_byte(flow, &self.seeds, n)
        } else {
            *flow
        };
        sink(delivered);
        if decides(&self.seeds, n, 0, "fault-dup", self.config.duplicate_chance) {
            self.stats.duplicated += 1;
            self.counters.duplicated.inc();
            sink(delivered);
        }
    }

    /// Pass one *encoded export datagram* through the datagram-level fault
    /// model: with [`FaultConfig::dup_datagram_chance`] the whole wire
    /// image is delivered twice — the retransmitted-export fault whose
    /// `first_seq`/`end_seq` overlap a collector's sequence accounting
    /// must catch (and withhold) instead of double-ingesting. Uses its
    /// own nonce stream, so interleaving it with [`FaultInjector::apply`]
    /// never perturbs the flow-level fault pattern.
    pub fn apply_datagram(&mut self, wire: &[u8], mut sink: impl FnMut(&[u8])) {
        self.datagram_counter = self.datagram_counter.wrapping_add(1);
        let n = self.datagram_counter;
        sink(wire);
        if decides(
            &self.seeds,
            n,
            1,
            "fault-dup-datagram",
            self.config.dup_datagram_chance,
        ) {
            self.stats.duplicated_datagrams += 1;
            self.counters.duplicated_datagrams.inc();
            sink(wire);
        }
    }
}

/// Zero the last `tail` bytes of `segment` inside a v2 archive image —
/// what a crash-truncated final write leaves once the spool is padded
/// back to its indexed length. The footer and trailer survive, so an
/// indexed replay sees a CRC mismatch localized to this one segment
/// instead of a poisoned stream.
pub fn truncate_segment_tail(bytes: &mut [u8], segment: &crate::indexed::SegmentInfo, tail: usize) {
    let end = (segment.offset + segment.len) as usize;
    let start = end - tail.min(segment.len as usize);
    for b in &mut bytes[start..end] {
        *b = 0;
    }
}

/// Flip one seeded byte inside `segment` (bit rot, a bad sector): the
/// archive-level analogue of [`FaultConfig::corrupt_chance`], pointed at
/// the spool instead of the export stream.
pub fn corrupt_segment_byte(
    bytes: &mut [u8],
    segment: &crate::indexed::SegmentInfo,
    seeds: &SeedTree,
    nonce: u32,
) {
    let idx = segment.offset as usize
        + index_hash(seeds, nonce, 3, "fault-seg-byte", segment.len as usize);
    let bit = index_hash(seeds, nonce, 4, "fault-seg-bit", 8);
    bytes[idx] ^= 1 << bit;
}

/// Flip one byte of the flow's V5 wire encoding and decode it back.
fn corrupt_one_byte(flow: &Flow, seeds: &SeedTree, nonce: u32) -> Flow {
    // Anchor the exporter clock near the flow so the encoding round-trips.
    let boot = (EPOCH_UNIX_SECS as i64 + flow.start_secs - 1000).max(0) as u32;
    let mut rec = flow.to_v5(boot);
    // View the record as its wire bytes via a single-record datagram.
    let header = crate::record::V5Header {
        count: 1,
        sys_uptime_ms: 0,
        unix_secs: boot,
        unix_nsecs: 0,
        flow_sequence: 0,
        engine_type: 0,
        engine_id: 0,
        sampling_interval: 0,
    };
    let mut wire = crate::record::encode_datagram(&header, &[rec]).to_vec();
    let body = crate::record::V5_HEADER_LEN;
    let idx = body + index_hash(seeds, nonce, 1, "fault-byte", crate::record::V5_RECORD_LEN);
    let bit = index_hash(seeds, nonce, 2, "fault-bit", 8);
    wire[idx] ^= 1 << bit;
    match crate::record::decode_datagram(&wire) {
        Ok((_, records)) => {
            rec = records[0];
            Flow::from_v5(&rec, boot)
        }
        // Corruption that breaks framing loses the record: deliver the
        // original with zeroed counters (an exporter would emit garbage;
        // this keeps the stream total stable for the tests).
        Err(_) => Flow {
            packets: 0,
            octets: 0,
            ..*flow
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{proto, tcp_flags};
    use unclean_core::Ip;

    fn flow(i: u32) -> Flow {
        Flow {
            src: Ip(0x0901_0000 + i),
            dst: Ip(0x1e00_0001),
            src_port: 40_000,
            dst_port: 445,
            proto: proto::TCP,
            packets: 1,
            octets: 40,
            flags: tcp_flags::SYN,
            start_secs: 86_400 * 273 + i as i64,
            duration_secs: 0,
        }
    }

    fn run(config: FaultConfig, n: u32) -> (FaultStats, Vec<Flow>) {
        let mut inj = FaultInjector::new(config, SeedTree::new(7));
        let mut out = Vec::new();
        for i in 0..n {
            inj.apply(&flow(i), |f| out.push(f));
        }
        (inj.stats(), out)
    }

    #[test]
    fn no_faults_is_identity() {
        let (stats, out) = run(FaultConfig::default(), 500);
        assert_eq!(stats.seen, 500);
        assert_eq!(
            stats.dropped
                + stats.duplicated
                + stats.corrupted
                + stats.burst_dropped
                + stats.truncated,
            0
        );
        assert_eq!(out.len(), 500);
        assert_eq!(out[7], flow(7));
    }

    #[test]
    fn drop_rate_tracks_config() {
        let cfg = FaultConfig {
            drop_chance: 0.2,
            ..FaultConfig::default()
        };
        let (stats, out) = run(cfg, 10_000);
        let rate = stats.dropped as f64 / stats.seen as f64;
        assert!((rate - 0.2).abs() < 0.02, "drop rate {rate}");
        assert_eq!(out.len() as u64, stats.seen - stats.dropped);
    }

    #[test]
    fn duplicates_deliver_twice() {
        let cfg = FaultConfig {
            duplicate_chance: 0.3,
            ..FaultConfig::default()
        };
        let (stats, out) = run(cfg, 5_000);
        assert_eq!(out.len() as u64, stats.seen + stats.duplicated);
        let rate = stats.duplicated as f64 / stats.seen as f64;
        assert!((rate - 0.3).abs() < 0.03, "dup rate {rate}");
    }

    #[test]
    fn corruption_changes_flows_but_keeps_count() {
        let cfg = FaultConfig {
            corrupt_chance: 1.0,
            ..FaultConfig::default()
        };
        let (stats, out) = run(cfg, 1_000);
        assert_eq!(stats.corrupted, 1_000);
        assert_eq!(out.len(), 1_000);
        // Byte flips in fields the Flow view carries change it; flips in
        // nexthop/AS/mask/padding bytes (~1/3 of the record) do not. All
        // still decode.
        let changed = out.iter().zip(0..).filter(|(f, i)| **f != flow(*i)).count();
        assert!(
            (500..1000).contains(&changed),
            "corruption visible in {changed}/1000"
        );
    }

    #[test]
    fn deterministic_fault_pattern() {
        let cfg = FaultConfig::adverse();
        let (s1, o1) = run(cfg, 2_000);
        let (s2, o2) = run(cfg, 2_000);
        assert_eq!(s1, s2);
        assert_eq!(o1, o2);
    }

    #[test]
    fn burst_loss_arrives_in_runs() {
        let cfg = FaultConfig {
            burst_chance: 0.01,
            burst_len: 8,
            ..FaultConfig::default()
        };
        let (stats, out) = run(cfg, 20_000);
        assert_eq!(stats.dropped, 0, "only burst loss configured");
        // Expected burst loss ≈ burst_chance * burst_len per eligible flow.
        let rate = stats.burst_dropped as f64 / stats.seen as f64;
        assert!((0.04..0.12).contains(&rate), "burst loss rate {rate}");
        assert_eq!(out.len() as u64, stats.seen - stats.burst_dropped);
        // Correlation: the loss indices must contain full runs of burst_len.
        let delivered: std::collections::HashSet<u32> =
            out.iter().map(|f| f.src.0 - 0x0901_0000).collect();
        let mut longest = 0u32;
        let mut current = 0u32;
        for i in 0..20_000u32 {
            if delivered.contains(&i) {
                current = 0;
            } else {
                current += 1;
                longest = longest.max(current);
            }
        }
        assert!(
            longest >= 8,
            "longest loss run {longest} shows correlated loss"
        );
    }

    #[test]
    fn truncation_loses_flows_and_counts_them_separately() {
        let cfg = FaultConfig {
            truncate_chance: 0.2,
            ..FaultConfig::default()
        };
        let (stats, out) = run(cfg, 10_000);
        let rate = stats.truncated as f64 / stats.seen as f64;
        assert!((rate - 0.2).abs() < 0.02, "truncation rate {rate}");
        assert_eq!(stats.dropped, 0, "truncation is not booked as drop");
        assert_eq!(out.len() as u64, stats.seen - stats.truncated);
    }

    #[test]
    fn adverse_preset_is_lossy_but_not_fatal() {
        let (stats, out) = run(FaultConfig::adverse(), 10_000);
        assert!(stats.dropped > 1_000 && stats.dropped < 2_000);
        assert!(stats.burst_dropped > 0, "adverse now includes burst loss");
        assert!(stats.truncated > 0, "adverse now includes truncation");
        assert!(!out.is_empty());
        // Deliveries = seen - all losses + duplicated-of-survivors.
        assert_eq!(
            out.len() as u64,
            stats.seen - stats.dropped - stats.burst_dropped - stats.truncated + stats.duplicated
        );
    }

    #[test]
    fn registry_counters_mirror_stats() {
        let registry = Registry::full();
        let mut inj = FaultInjector::new(FaultConfig::adverse(), SeedTree::new(7));
        inj.attach_telemetry(&registry);
        let mut delivered = 0u64;
        for i in 0..2_000 {
            inj.apply(&flow(i), |_| delivered += 1);
        }
        let stats = inj.stats();
        let snap = registry.snapshot();
        assert_eq!(snap.counters["faults.seen"], stats.seen);
        assert_eq!(snap.counters["faults.dropped"], stats.dropped);
        assert_eq!(snap.counters["faults.duplicated"], stats.duplicated);
        assert_eq!(snap.counters["faults.corrupted"], stats.corrupted);
        assert_eq!(snap.counters["faults.burst_dropped"], stats.burst_dropped);
        assert_eq!(snap.counters["faults.truncated"], stats.truncated);
        assert!(stats.dropped > 0, "adverse preset actually drops");
    }

    #[test]
    fn datagram_duplication_delivers_whole_datagrams_twice() {
        let cfg = FaultConfig {
            dup_datagram_chance: 0.25,
            ..FaultConfig::default()
        };
        let mut inj = FaultInjector::new(cfg, SeedTree::new(7));
        let mut delivered = 0u64;
        let wire = [0u8; 72];
        for _ in 0..8_000 {
            inj.apply_datagram(&wire, |w| {
                assert_eq!(w, wire);
                delivered += 1;
            });
        }
        let stats = inj.stats();
        assert_eq!(delivered, 8_000 + stats.duplicated_datagrams);
        let rate = stats.duplicated_datagrams as f64 / 8_000.0;
        assert!((rate - 0.25).abs() < 0.03, "dup-datagram rate {rate}");
        // The datagram lane must not consume the flow lane's nonces: the
        // flow-level pattern with and without interleaved datagram faults
        // is identical.
        let mut plain = FaultInjector::new(FaultConfig::adverse(), SeedTree::new(3));
        let mut mixed = FaultInjector::new(FaultConfig::adverse(), SeedTree::new(3));
        let (mut out_plain, mut out_mixed) = (Vec::new(), Vec::new());
        for i in 0..2_000 {
            plain.apply(&flow(i), |f| out_plain.push(f));
            mixed.apply_datagram(&wire, |_| {});
            mixed.apply(&flow(i), |f| out_mixed.push(f));
        }
        assert_eq!(out_plain, out_mixed);
    }

    #[test]
    fn archive_fault_helpers_damage_exactly_one_segment() {
        use crate::indexed::{crc32, IndexedArchive, IndexedArchiveWriter};
        let mut w = IndexedArchiveWriter::new(Vec::new(), EPOCH_UNIX_SECS);
        for day in 0..3 {
            for i in 0..50u32 {
                let f = Flow {
                    start_secs: i64::from(day) * 86_400 + i64::from(i),
                    ..flow(i)
                };
                w.push(&f).expect("write");
            }
        }
        let (bytes, index) = w.finish().expect("finish");
        // Truncation helper: only the last segment's CRC breaks.
        let mut truncated = bytes.clone();
        truncate_segment_tail(&mut truncated, &index.segments[2], 16);
        let archive = IndexedArchive::open(&truncated)
            .expect("trailer intact")
            .expect("v2");
        assert!(archive.verify_segment(0).is_ok());
        assert!(archive.verify_segment(1).is_ok());
        assert!(archive.verify_segment(2).is_err());
        // Corruption helper: deterministic, and only the target segment.
        let mut bitrot = bytes.clone();
        corrupt_segment_byte(&mut bitrot, &index.segments[1], &SeedTree::new(9), 1);
        let mut bitrot2 = bytes.clone();
        corrupt_segment_byte(&mut bitrot2, &index.segments[1], &SeedTree::new(9), 1);
        assert_eq!(bitrot, bitrot2, "seeded damage is reproducible");
        assert_ne!(bitrot, bytes);
        let s0 = &index.segments[0];
        let s1 = &index.segments[1];
        assert_eq!(
            crc32(&bitrot[s0.offset as usize..(s0.offset + s0.len) as usize]),
            s0.crc
        );
        assert_ne!(
            crc32(&bitrot[s1.offset as usize..(s1.offset + s1.len) as usize]),
            s1.crc
        );
    }

    #[test]
    #[should_panic(expected = "burst_len must be positive")]
    fn zero_length_bursts_rejected() {
        let cfg = FaultConfig {
            burst_chance: 0.1,
            burst_len: 0,
            ..FaultConfig::default()
        };
        let _ = FaultInjector::new(cfg, SeedTree::new(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_probability_rejected() {
        let cfg = FaultConfig {
            drop_chance: 1.5,
            ..FaultConfig::default()
        };
        let _ = FaultInjector::new(cfg, SeedTree::new(1));
    }
}
