//! Flow archives: persisting V5 export streams.
//!
//! Operational collectors spool NetFlow to disk and analyses replay the
//! spool. [`ArchiveWriter`] packs flows into maximal V5 datagrams
//! (30 records each) with monotone sequence numbers, framing each datagram
//! with a 2-byte length prefix; [`ArchiveReader`] replays an archive,
//! detecting sequence gaps (lost export datagrams) the way a real
//! collector does.

use crate::record::{
    decode_datagram, encode_datagram, DecodeError, V5Header, V5Record, V5_MAX_RECORDS,
};
use crate::seq::{SeqObservation, SequenceTracker};
use crate::session::Flow;
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};
use unclean_telemetry::{Counter, Registry};

/// Packs flows into framed V5 datagrams on any `Write`.
#[derive(Debug)]
pub struct ArchiveWriter<W: Write> {
    out: W,
    boot_unix_secs: u32,
    pending: Vec<V5Record>,
    sequence: u32,
    written_datagrams: u64,
}

impl<W: Write> ArchiveWriter<W> {
    /// A writer exporting with the given boot anchor (flows must start
    /// within ~49 days after it for lossless round-tripping).
    pub fn new(out: W, boot_unix_secs: u32) -> ArchiveWriter<W> {
        ArchiveWriter {
            out,
            boot_unix_secs,
            pending: Vec::with_capacity(V5_MAX_RECORDS),
            sequence: 0,
            written_datagrams: 0,
        }
    }

    /// Queue one flow; flushes automatically at 30 records.
    pub fn push(&mut self, flow: &Flow) -> io::Result<()> {
        self.pending.push(flow.to_v5(self.boot_unix_secs));
        if self.pending.len() == V5_MAX_RECORDS {
            self.flush_datagram()?;
        }
        Ok(())
    }

    /// Flush any partial datagram.
    pub fn flush_datagram(&mut self) -> io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let header = V5Header {
            count: self.pending.len() as u16,
            sys_uptime_ms: 0,
            unix_secs: self.boot_unix_secs,
            unix_nsecs: 0,
            flow_sequence: self.sequence,
            engine_type: 0,
            engine_id: 0,
            sampling_interval: 0,
        };
        let wire = encode_datagram(&header, &self.pending);
        // The v1 frame is a 2-byte length: a datagram beyond 65535 bytes
        // (impossible today at 24 + 30×48, but one added record field
        // away) must fail loudly rather than write a silently wrapped
        // length that desynchronizes every later frame. v2 frames are
        // varints and have no such ceiling.
        let frame_len = u16::try_from(wire.len()).map_err(|_| {
            io::Error::other(format!(
                "datagram of {} bytes exceeds the v1 u16 frame ceiling",
                wire.len()
            ))
        })?;
        self.out.write_all(&frame_len.to_be_bytes())?;
        self.out.write_all(&wire)?;
        self.sequence = self.sequence.wrapping_add(self.pending.len() as u32);
        self.pending.clear();
        self.written_datagrams += 1;
        Ok(())
    }

    /// Finish: flush and return the inner writer plus datagram count.
    pub fn finish(mut self) -> io::Result<(W, u64)> {
        self.flush_datagram()?;
        self.out.flush()?;
        Ok((self.out, self.written_datagrams))
    }
}

/// What an [`ArchiveReader`] observed: the loss accounting a collector
/// must surface rather than swallow.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArchiveTelemetry {
    /// Datagrams decoded.
    pub datagrams: u64,
    /// Flow records delivered.
    pub flows: u64,
    /// Flows missing according to forward sequence-number gaps.
    pub lost_flows: u64,
    /// Forward gap events (distinct runs of loss, not flows).
    pub sequence_gaps: u64,
    /// Datagrams whose sequence number went *backwards* but still carried
    /// new data (late arrivals repaying a booked gap) — counted
    /// separately, never as loss.
    pub reordered: u64,
    /// Flows re-delivered by duplicated datagrams, detected by
    /// `first_seq`/`end_seq` overlap with already-ingested sequence space
    /// and *withheld* — counted here exactly once, never double-ingested.
    #[serde(default)]
    pub duplicates: u64,
    /// Flows that arrived late and repaid a run previously booked in
    /// `lost_flows`; net loss is `lost_flows - recovered_flows`.
    #[serde(default)]
    pub recovered_flows: u64,
}

impl ArchiveTelemetry {
    /// Fold another reader's accounting into this one — how per-segment
    /// parallel replays sum to the sequential totals.
    pub fn accumulate(&mut self, other: &ArchiveTelemetry) {
        self.datagrams += other.datagrams;
        self.flows += other.flows;
        self.lost_flows += other.lost_flows;
        self.sequence_gaps += other.sequence_gaps;
        self.reordered += other.reordered;
        self.duplicates += other.duplicates;
        self.recovered_flows += other.recovered_flows;
    }

    /// Apply one datagram's [`SeqObservation`] deltas (`flows` excluded —
    /// the caller adds the admitted count once it knows it).
    pub(crate) fn apply(&mut self, obs: &SeqObservation) {
        self.lost_flows += obs.lost_flows;
        self.sequence_gaps += obs.sequence_gaps;
        self.reordered += obs.reordered;
        self.duplicates += obs.duplicates;
        self.recovered_flows += obs.recovered_flows;
    }

    /// Record this accounting onto `registry` under the same `archive.*`
    /// counter names a live [`ArchiveReader`] uses, so indexed replays
    /// feed the manifest audit and Prometheus export identically.
    pub fn record(&self, registry: &Registry) {
        let counters = ArchiveCounters::new(registry);
        counters.datagrams.add(self.datagrams);
        counters.flows.add(self.flows);
        counters.lost_flows.add(self.lost_flows);
        counters.sequence_gaps.add(self.sequence_gaps);
        counters.reordered.add(self.reordered);
        counters.duplicates.add(self.duplicates);
        counters.recovered_flows.add(self.recovered_flows);
    }
}

/// The registry counters an [`ArchiveReader`] records into. The reader's
/// loss accounting lives in these counters — [`ArchiveReader::telemetry`]
/// reads them back — so a registry-bound reader feeds the manifest's
/// archive audit and `metrics.prom` from one source of truth.
#[derive(Debug, Clone)]
struct ArchiveCounters {
    datagrams: Counter,
    flows: Counter,
    lost_flows: Counter,
    sequence_gaps: Counter,
    reordered: Counter,
    duplicates: Counter,
    recovered_flows: Counter,
}

impl ArchiveCounters {
    /// Counters bound to `registry` under `archive.*` names, or private
    /// standalone cells when the registry is disabled (a reader must keep
    /// loss accounting regardless of telemetry level).
    fn new(registry: &Registry) -> ArchiveCounters {
        ArchiveCounters {
            datagrams: registry.counter_or_standalone("archive.datagrams"),
            flows: registry.counter_or_standalone("archive.flows"),
            lost_flows: registry.counter_or_standalone("archive.lost_flows"),
            sequence_gaps: registry.counter_or_standalone("archive.sequence_gaps"),
            reordered: registry.counter_or_standalone("archive.reordered"),
            duplicates: registry.counter_or_standalone("archive.duplicates"),
            recovered_flows: registry.counter_or_standalone("archive.recovered_flows"),
        }
    }

    /// Apply one datagram's observation deltas (all but `flows`).
    fn apply(&self, obs: &SeqObservation) {
        self.lost_flows.add(obs.lost_flows);
        self.sequence_gaps.add(obs.sequence_gaps);
        self.reordered.add(obs.reordered);
        self.duplicates.add(obs.duplicates);
        self.recovered_flows.add(obs.recovered_flows);
    }
}

/// Replays a framed archive, reporting flows and sequence gaps.
#[derive(Debug)]
pub struct ArchiveReader<R: Read> {
    input: R,
    boot_unix_secs: u32,
    tracker: SequenceTracker,
    counters: ArchiveCounters,
}

/// Errors while reading an archive.
#[derive(Debug)]
pub enum ArchiveError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A framed datagram failed to decode.
    Decode(DecodeError),
}

impl std::fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchiveError::Io(e) => write!(f, "archive I/O error: {e}"),
            ArchiveError::Decode(e) => write!(f, "archive decode error: {e}"),
        }
    }
}

impl std::error::Error for ArchiveError {}

impl<R: Read> ArchiveReader<R> {
    /// A reader over a framed archive written with the same boot anchor,
    /// counting into private cells. Use [`ArchiveReader::with_telemetry`]
    /// to expose the same counts on a shared registry.
    pub fn new(input: R, boot_unix_secs: u32) -> ArchiveReader<R> {
        ArchiveReader::with_telemetry(input, boot_unix_secs, &Registry::off())
    }

    /// A reader whose loss accounting records onto `registry` as the
    /// `archive.datagrams` / `archive.flows` / `archive.lost_flows` /
    /// `archive.sequence_gaps` / `archive.reordered` counters — the same
    /// cells [`ArchiveReader::telemetry`] reads back, so the manifest
    /// audit and Prometheus export cannot disagree.
    pub fn with_telemetry(input: R, boot_unix_secs: u32, registry: &Registry) -> ArchiveReader<R> {
        ArchiveReader {
            input,
            boot_unix_secs,
            tracker: SequenceTracker::new(None),
            counters: ArchiveCounters::new(registry),
        }
    }

    /// Loss and delivery accounting so far (read back from the counters,
    /// registry-bound or standalone).
    pub fn telemetry(&self) -> ArchiveTelemetry {
        ArchiveTelemetry {
            datagrams: self.counters.datagrams.get(),
            flows: self.counters.flows.get(),
            lost_flows: self.counters.lost_flows.get(),
            sequence_gaps: self.counters.sequence_gaps.get(),
            reordered: self.counters.reordered.get(),
            duplicates: self.counters.duplicates.get(),
            recovered_flows: self.counters.recovered_flows.get(),
        }
    }

    /// Read the next datagram's admitted flows; `Ok(None)` at clean
    /// end-of-archive. A fully duplicated datagram yields an *empty*
    /// batch: it is consumed and counted, but no flow is re-delivered.
    pub fn next_datagram(&mut self) -> Result<Option<Vec<Flow>>, ArchiveError> {
        let mut len_buf = [0u8; 2];
        match self.input.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(ArchiveError::Io(e)),
        }
        let len = u16::from_be_bytes(len_buf) as usize;
        let mut buf = vec![0u8; len];
        self.input.read_exact(&mut buf).map_err(ArchiveError::Io)?;
        let (header, records) = decode_datagram(&buf).map_err(ArchiveError::Decode)?;
        // A forward jump is loss; a *backward* jump is a late reordered
        // arrival (repaying a booked gap — delivered) or a duplicated
        // datagram (overlapping already-ingested sequence space —
        // withheld). The tracker splits the u32 circle at its midpoint,
        // the way RTP and NetFlow collectors disambiguate, and keeps the
        // outstanding-gap book that tells the two apart.
        let obs = self
            .tracker
            .observe(header.flow_sequence, records.len() as u32);
        self.counters.apply(&obs);
        self.counters.datagrams.inc();
        let flows: Vec<Flow> = records
            .iter()
            .enumerate()
            .filter(|(k, _)| obs.admit.admits(*k as u32))
            .map(|(_, r)| Flow::from_v5(r, self.boot_unix_secs))
            .collect();
        self.counters.flows.add(flows.len() as u64);
        Ok(Some(flows))
    }

    /// Drain the whole archive into a vector.
    pub fn read_all(&mut self) -> Result<Vec<Flow>, ArchiveError> {
        let mut out = Vec::new();
        while let Some(batch) = self.next_datagram()? {
            out.extend(batch);
        }
        Ok(out)
    }
}

impl<'a> ArchiveReader<&'a [u8]> {
    /// Sniff an archive image: a v2 trailer yields an
    /// [`crate::indexed::IndexedArchive`] with seekable per-day segments;
    /// anything else falls back to the sequential v1 representation.
    pub fn open_indexed(
        data: &'a [u8],
    ) -> Result<crate::indexed::FlowArchive<'a>, crate::indexed::IndexedError> {
        crate::indexed::FlowArchive::open(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{proto, tcp_flags, EPOCH_UNIX_SECS, V5_HEADER_LEN, V5_RECORD_LEN};
    use unclean_core::Ip;

    fn boot() -> u32 {
        EPOCH_UNIX_SECS + 86_400 * 270
    }

    fn flow(i: u32) -> Flow {
        Flow {
            src: Ip(0x0901_0000 + i),
            dst: Ip(0x1e00_0001),
            src_port: (1024 + i % 60_000) as u16,
            dst_port: 80,
            proto: proto::TCP,
            packets: 3 + i % 5,
            octets: 200 + i,
            flags: tcp_flags::SYN | tcp_flags::ACK,
            start_secs: 86_400 * 273 + i as i64,
            duration_secs: i % 30,
        }
    }

    fn write_archive(n: u32) -> Vec<u8> {
        let mut w = ArchiveWriter::new(Vec::new(), boot());
        for i in 0..n {
            w.push(&flow(i)).expect("in-memory write");
        }
        let (bytes, _) = w.finish().expect("finish");
        bytes
    }

    #[test]
    fn round_trip_exact() {
        let bytes = write_archive(95); // 3 full datagrams + 5 leftover
        let mut r = ArchiveReader::new(bytes.as_slice(), boot());
        let flows = r.read_all().expect("well-formed");
        assert_eq!(flows.len(), 95);
        for (i, f) in flows.iter().enumerate() {
            assert_eq!(*f, flow(i as u32));
        }
        let t = r.telemetry();
        assert_eq!(t.lost_flows, 0);
        assert_eq!(t.sequence_gaps, 0);
        assert_eq!(t.reordered, 0);
        assert_eq!(t.datagrams, 4, "3 full + 1 partial");
        assert_eq!(t.flows, 95);
    }

    #[test]
    fn datagram_packing() {
        let mut w = ArchiveWriter::new(Vec::new(), boot());
        for i in 0..61 {
            w.push(&flow(i)).expect("write");
        }
        let (bytes, datagrams) = w.finish().expect("finish");
        assert_eq!(datagrams, 3, "30 + 30 + 1");
        // Framing: 2-byte length + header + records.
        let first_len = u16::from_be_bytes([bytes[0], bytes[1]]) as usize;
        assert_eq!(first_len, V5_HEADER_LEN + 30 * V5_RECORD_LEN);
    }

    #[test]
    fn empty_archive() {
        let (bytes, datagrams) = ArchiveWriter::new(Vec::new(), boot()).finish().expect("ok");
        assert_eq!(datagrams, 0);
        assert!(bytes.is_empty());
        let mut r = ArchiveReader::new(bytes.as_slice(), boot());
        assert!(r.read_all().expect("ok").is_empty());
    }

    #[test]
    fn sequence_gap_detection() {
        // Write two archives and splice out the middle datagram.
        let bytes = write_archive(90); // 3 datagrams of 30
        let dg_len = 2 + V5_HEADER_LEN + 30 * V5_RECORD_LEN;
        let mut spliced = Vec::new();
        spliced.extend_from_slice(&bytes[..dg_len]); // datagram 1
        spliced.extend_from_slice(&bytes[2 * dg_len..]); // datagram 3
        let mut r = ArchiveReader::new(spliced.as_slice(), boot());
        let flows = r.read_all().expect("well-formed");
        assert_eq!(flows.len(), 60);
        let t = r.telemetry();
        assert_eq!(t.lost_flows, 30, "the missing datagram's flows are counted");
        assert_eq!(t.sequence_gaps, 1, "one contiguous loss event");
        assert_eq!(t.reordered, 0);
    }

    #[test]
    fn reordered_datagram_is_not_booked_as_loss() {
        // Swap datagrams 2 and 3: a collector seeing 1,3,2 must report the
        // reorder — NOT ~4 billion "lost" flows from a wrapped subtraction.
        let bytes = write_archive(90); // 3 datagrams of 30
        let dg_len = 2 + V5_HEADER_LEN + 30 * V5_RECORD_LEN;
        let mut swapped = Vec::new();
        swapped.extend_from_slice(&bytes[..dg_len]); // datagram 1
        swapped.extend_from_slice(&bytes[2 * dg_len..]); // datagram 3
        swapped.extend_from_slice(&bytes[dg_len..2 * dg_len]); // datagram 2
        let mut r = ArchiveReader::new(swapped.as_slice(), boot());
        let flows = r.read_all().expect("well-formed");
        assert_eq!(flows.len(), 90, "every flow still delivered");
        let t = r.telemetry();
        assert_eq!(t.reordered, 1, "the late datagram is flagged");
        // The jump 1→3 looks like one gap; the late arrival repays it
        // (recovered) rather than adding wrapped loss on top.
        assert_eq!(t.sequence_gaps, 1);
        assert_eq!(t.lost_flows, 30);
        assert_eq!(t.recovered_flows, 30, "the gap was repaid in full");
        assert_eq!(t.duplicates, 0, "a reorder is not a duplicate");
        assert!(t.lost_flows < 100, "no wrapped u32 catastrophe");
    }

    #[test]
    fn duplicated_datagram_is_withheld_and_counted_once() {
        // Deliver 1,2,2,3: the re-sent datagram 2 overlaps sequence space
        // already ingested and must not double-deliver its flows.
        let bytes = write_archive(90); // 3 datagrams of 30
        let dg_len = 2 + V5_HEADER_LEN + 30 * V5_RECORD_LEN;
        let mut duped = Vec::new();
        duped.extend_from_slice(&bytes[..2 * dg_len]); // datagrams 1, 2
        duped.extend_from_slice(&bytes[dg_len..2 * dg_len]); // datagram 2 again
        duped.extend_from_slice(&bytes[2 * dg_len..]); // datagram 3
        let mut r = ArchiveReader::new(duped.as_slice(), boot());
        let flows = r.read_all().expect("well-formed");
        assert_eq!(flows.len(), 90, "each flow ingested exactly once");
        for (i, f) in flows.iter().enumerate() {
            assert_eq!(*f, flow(i as u32));
        }
        let t = r.telemetry();
        assert_eq!(t.duplicates, 30, "the re-sent datagram's flows, once");
        assert_eq!(t.reordered, 0, "a duplicate is not a reorder");
        assert_eq!(t.lost_flows, 0);
        assert_eq!(t.flows, 90, "flows counts deliveries, not arrivals");
        assert_eq!(t.datagrams, 4, "the duplicate frame was still read");
    }

    #[test]
    fn truncated_archive_errors() {
        let mut bytes = write_archive(30);
        bytes.truncate(bytes.len() - 7);
        let mut r = ArchiveReader::new(bytes.as_slice(), boot());
        assert!(matches!(r.read_all(), Err(ArchiveError::Io(_))));
    }

    #[test]
    fn corrupt_frame_errors() {
        let mut bytes = write_archive(30);
        bytes[3] = 99; // version byte inside the first datagram
        let mut r = ArchiveReader::new(bytes.as_slice(), boot());
        match r.read_all() {
            Err(ArchiveError::Decode(DecodeError::BadVersion(_))) => {}
            other => panic!("expected decode error, got {other:?}"),
        }
    }

    #[test]
    fn registry_and_struct_report_the_same_numbers() {
        use unclean_telemetry::TelemetryLevel;
        // Splice out the middle datagram so loss counters are nonzero.
        let bytes = write_archive(90);
        let dg_len = 2 + V5_HEADER_LEN + 30 * V5_RECORD_LEN;
        let mut spliced = Vec::new();
        spliced.extend_from_slice(&bytes[..dg_len]);
        spliced.extend_from_slice(&bytes[2 * dg_len..]);
        let registry = Registry::new(TelemetryLevel::Summary);
        let mut r = ArchiveReader::with_telemetry(spliced.as_slice(), boot(), &registry);
        r.read_all().expect("well-formed");
        let t = r.telemetry();
        let snap = registry.snapshot();
        assert_eq!(snap.counters["archive.datagrams"], t.datagrams);
        assert_eq!(snap.counters["archive.flows"], t.flows);
        assert_eq!(snap.counters["archive.lost_flows"], t.lost_flows);
        assert_eq!(snap.counters["archive.sequence_gaps"], t.sequence_gaps);
        assert_eq!(snap.counters["archive.reordered"], t.reordered);
        assert_eq!(snap.counters["archive.duplicates"], t.duplicates);
        assert_eq!(snap.counters["archive.recovered_flows"], t.recovered_flows);
        assert_eq!(t.lost_flows, 30);
        assert_eq!(t.sequence_gaps, 1);
    }

    #[test]
    fn error_display() {
        let e = ArchiveError::Decode(DecodeError::BadCount(0));
        assert!(e.to_string().contains("decode"));
        let e = ArchiveError::Io(io::Error::other("x"));
        assert!(e.to_string().contains("I/O"));
    }
}
