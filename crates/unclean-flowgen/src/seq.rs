//! Shared V5 sequence-number accounting.
//!
//! Every collector-side reader — the v1 [`crate::ArchiveReader`], the v2
//! [`crate::indexed::SegmentCursor`], and the live UDP source — faces the
//! same question per datagram: given the export header's `flow_sequence`
//! and record count, is this datagram *fresh*, a *gap* (loss), a *late
//! reordered arrival* repaying a booked gap, or a *duplicate* re-delivery
//! of records already ingested? Getting the last two confused either
//! double-ingests flows (duplicates treated as reorders) or silently
//! discards real data (reorders treated as duplicates).
//!
//! [`SequenceTracker`] resolves it by remembering the *outstanding gaps*:
//! the runs of sequence space booked as lost. A backward datagram is
//! classified record-by-record against those gaps — records falling in a
//! gap are recovered (the loss is repaid in `recovered_flows`), records
//! outside every gap were already delivered and are counted in
//! `duplicates` and withheld from the sink. The accounting identity every
//! reader then satisfies is:
//!
//! ```text
//! unique records sent = flows delivered + lost_flows − recovered_flows
//! ```
//!
//! with `duplicates` counting the withheld re-deliveries on the side —
//! no flow is ever counted twice and none disappears silently.

/// Ceiling on remembered gaps. Beyond it the oldest gap is forgotten:
/// a datagram that would have repaid it is then (conservatively) booked
/// as a duplicate and withheld, which can under-deliver but never
/// double-ingests. 512 distinct outstanding loss runs is far beyond any
/// realistic reorder horizon.
const MAX_GAPS: usize = 512;

/// One outstanding run of sequence space booked as lost: `[start,
/// start + len)` in u32 circle arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Gap {
    start: u32,
    len: u32,
}

/// Which records of a datagram the reader should deliver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admit {
    /// Every record is fresh (or repays a gap): deliver all.
    All,
    /// The whole datagram re-delivers already-ingested records: deliver
    /// nothing.
    Nothing,
    /// A mix: deliver only record indexes inside these half-open ranges
    /// (sorted, disjoint).
    Ranges(Vec<(u32, u32)>),
}

impl Admit {
    /// Whether record index `k` should be delivered.
    pub fn admits(&self, k: u32) -> bool {
        match self {
            Admit::All => true,
            Admit::Nothing => false,
            Admit::Ranges(ranges) => ranges.iter().any(|&(lo, hi)| (lo..hi).contains(&k)),
        }
    }

    /// How many of `count` records the filter lets through.
    pub fn admitted(&self, count: u32) -> u32 {
        match self {
            Admit::All => count,
            Admit::Nothing => 0,
            Admit::Ranges(ranges) => ranges.iter().map(|&(lo, hi)| hi.min(count) - lo).sum(),
        }
    }
}

/// The per-datagram verdict: counter deltas plus the admission filter.
/// All deltas are in *flows* except `sequence_gaps` and `reordered`,
/// which count events, matching [`crate::ArchiveTelemetry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqObservation {
    /// Flows newly booked as lost (a forward jump).
    pub lost_flows: u64,
    /// 1 when this datagram opened a new loss run.
    pub sequence_gaps: u64,
    /// 1 when this datagram arrived out of order but carried data.
    pub reordered: u64,
    /// Flows re-delivered and withheld (already ingested earlier).
    pub duplicates: u64,
    /// Flows that repaid a booked gap (delivered late; the matching
    /// `lost_flows` booking is compensated by this counter).
    pub recovered_flows: u64,
    /// Which records to deliver.
    pub admit: Admit,
}

impl Default for SeqObservation {
    fn default() -> SeqObservation {
        SeqObservation {
            lost_flows: 0,
            sequence_gaps: 0,
            reordered: 0,
            duplicates: 0,
            recovered_flows: 0,
            admit: Admit::All,
        }
    }
}

/// Sequence-gap / reorder / duplicate disambiguation with the u32 circle
/// split at its midpoint (the RTP / NetFlow collector convention):
/// forward jumps are loss, backward jumps are classified against the
/// outstanding-gap list.
#[derive(Debug, Clone, Default)]
pub struct SequenceTracker {
    expected: Option<u32>,
    gaps: Vec<Gap>,
}

impl SequenceTracker {
    /// A tracker expecting `entry` as the next sequence number — `None`
    /// locks onto the first datagram seen, `Some(prev end_seq)` continues
    /// a contiguous scan.
    pub fn new(entry: Option<u32>) -> SequenceTracker {
        SequenceTracker {
            expected: entry,
            gaps: Vec::new(),
        }
    }

    /// The next sequence number the tracker expects, once locked.
    pub fn expected(&self) -> Option<u32> {
        self.expected
    }

    /// Classify one datagram of `count` records starting at `first_seq`
    /// and update the gap book. The caller applies the returned deltas to
    /// its own counters and filters delivery through `admit`.
    pub fn observe(&mut self, first_seq: u32, count: u32) -> SeqObservation {
        let mut obs = SeqObservation::default();
        let next = first_seq.wrapping_add(count);
        let Some(expected) = self.expected else {
            self.expected = Some(next);
            return obs;
        };
        let delta = first_seq.wrapping_sub(expected);
        if delta == 0 {
            self.expected = Some(next);
        } else if delta <= u32::MAX / 2 {
            // Forward jump: a run of `delta` records never arrived (yet).
            obs.lost_flows = u64::from(delta);
            obs.sequence_gaps = 1;
            self.push_gap(Gap {
                start: expected,
                len: delta,
            });
            self.expected = Some(next);
        } else {
            // Backward jump: late reorder, duplicate, or a mix — decided
            // record-by-record against the outstanding gaps.
            self.classify_backward(first_seq, count, &mut obs);
        }
        obs
    }

    /// Intersect the backward datagram `[first, first + count)` with the
    /// gap book: overlapping stretches are recovered (and erased from the
    /// book), the rest are duplicates.
    fn classify_backward(&mut self, first: u32, count: u32, obs: &mut SeqObservation) {
        let mut ranges: Vec<(u32, u32)> = Vec::new();
        let mut remaining: Vec<Gap> = Vec::new();
        for gap in self.gaps.drain(..) {
            // Gap start relative to the datagram's first record, signed
            // across the wrap (distances are < 2^31 by construction).
            let fwd = gap.start.wrapping_sub(first);
            let off = if fwd <= u32::MAX / 2 {
                i64::from(fwd)
            } else {
                -i64::from(first.wrapping_sub(gap.start))
            };
            let lo = off.max(0);
            let hi = (off + i64::from(gap.len)).min(i64::from(count));
            if lo >= hi {
                remaining.push(gap);
                continue;
            }
            ranges.push((lo as u32, hi as u32));
            // Keep the unfilled slivers of the gap on the book.
            if off < lo {
                remaining.push(Gap {
                    start: gap.start,
                    len: (lo - off) as u32,
                });
            }
            let gap_end = off + i64::from(gap.len);
            if gap_end > hi {
                remaining.push(Gap {
                    start: first.wrapping_add(hi as u32),
                    len: (gap_end - hi) as u32,
                });
            }
        }
        self.gaps = remaining;
        ranges.sort_unstable();
        let recovered: u32 = ranges.iter().map(|&(lo, hi)| hi - lo).sum();
        obs.recovered_flows = u64::from(recovered);
        obs.duplicates = u64::from(count - recovered);
        if recovered == 0 {
            obs.admit = Admit::Nothing;
        } else {
            obs.reordered = 1;
            obs.admit = if recovered == count {
                Admit::All
            } else {
                Admit::Ranges(ranges)
            };
        }
    }

    fn push_gap(&mut self, gap: Gap) {
        if self.gaps.len() == MAX_GAPS {
            self.gaps.remove(0);
        }
        self.gaps.push(gap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_stream_is_all_fresh() {
        let mut t = SequenceTracker::new(None);
        for i in 0..5u32 {
            let obs = t.observe(i * 30, 30);
            assert_eq!(obs, SeqObservation::default(), "datagram {i}");
        }
        assert_eq!(t.expected(), Some(150));
    }

    #[test]
    fn forward_jump_books_loss_and_a_gap() {
        let mut t = SequenceTracker::new(None);
        t.observe(0, 30);
        let obs = t.observe(60, 30);
        assert_eq!(obs.lost_flows, 30);
        assert_eq!(obs.sequence_gaps, 1);
        assert_eq!(obs.admit, Admit::All);
    }

    #[test]
    fn late_arrival_repays_the_gap() {
        let mut t = SequenceTracker::new(None);
        t.observe(0, 30);
        t.observe(60, 30); // books [30, 60) lost
        let obs = t.observe(30, 30); // the missing datagram shows up late
        assert_eq!(obs.recovered_flows, 30);
        assert_eq!(obs.duplicates, 0);
        assert_eq!(obs.reordered, 1);
        assert_eq!(obs.admit, Admit::All);
        // A second copy of the same datagram is now a pure duplicate.
        let obs = t.observe(30, 30);
        assert_eq!(obs.duplicates, 30);
        assert_eq!(obs.recovered_flows, 0);
        assert_eq!(obs.reordered, 0);
        assert_eq!(obs.admit, Admit::Nothing);
    }

    #[test]
    fn exact_redelivery_is_a_duplicate() {
        let mut t = SequenceTracker::new(None);
        t.observe(0, 30);
        let obs = t.observe(0, 30);
        assert_eq!(obs.duplicates, 30);
        assert_eq!(obs.admit, Admit::Nothing);
        assert_eq!(obs.lost_flows, 0, "no wrapped-loss catastrophe");
        // The high-water expectation is unchanged: the in-order successor
        // is still fresh.
        let obs = t.observe(30, 30);
        assert_eq!(obs, SeqObservation::default());
    }

    #[test]
    fn partial_overlap_splits_the_datagram() {
        let mut t = SequenceTracker::new(None);
        t.observe(0, 30);
        t.observe(45, 30); // books [30, 45) lost
                           // A re-sent datagram [15, 45): records 0..15 were delivered in the
                           // first datagram, records 15..30 repay the gap.
        let obs = t.observe(15, 30);
        assert_eq!(obs.recovered_flows, 15);
        assert_eq!(obs.duplicates, 15);
        assert_eq!(obs.reordered, 1);
        assert_eq!(obs.admit, Admit::Ranges(vec![(15, 30)]));
        assert!(!obs.admit.admits(0) && obs.admit.admits(15) && obs.admit.admits(29));
        assert_eq!(obs.admit.admitted(30), 15);
        // The gap is fully repaid: replaying the same datagram again now
        // yields pure duplicates.
        let obs = t.observe(15, 30);
        assert_eq!(obs.duplicates, 30);
        assert_eq!(obs.admit, Admit::Nothing);
    }

    #[test]
    fn gap_split_keeps_unfilled_slivers() {
        let mut t = SequenceTracker::new(None);
        t.observe(0, 10);
        t.observe(100, 10); // books [10, 100) lost
                            // Fill the middle [40, 50) of the gap.
        let obs = t.observe(40, 10);
        assert_eq!(obs.recovered_flows, 10);
        // Both slivers are still on the book.
        assert_eq!(t.observe(10, 30).recovered_flows, 30);
        assert_eq!(t.observe(50, 50).recovered_flows, 50);
        // Nothing outstanding now: everything backward is a duplicate.
        assert_eq!(t.observe(40, 10).duplicates, 10);
    }

    #[test]
    fn accounting_identity_under_loss_reorder_and_duplication() {
        // Send datagrams 0..20 (30 records each); drop some, deliver some
        // late, duplicate some — the identity must balance exactly.
        let mut t = SequenceTracker::new(None);
        let mut delivered = 0u64;
        let mut lost = 0u64;
        let mut recovered = 0u64;
        let mut dups = 0u64;
        let order: &[u32] = &[0, 1, 3, 4, 3, 2, 6, 6, 8, 9, 7, 9, 5];
        for &i in order {
            let obs = t.observe(i * 30, 30);
            delivered += u64::from(obs.admit.admitted(30));
            lost += obs.lost_flows;
            recovered += obs.recovered_flows;
            dups += obs.duplicates;
        }
        // Unique datagrams sent: 0..=9 → 300 records.
        assert_eq!(delivered + lost - recovered, 300);
        assert!(dups > 0, "the replayed datagrams were caught");
    }

    #[test]
    fn wraparound_sequences_classify_correctly() {
        let start = u32::MAX - 45;
        let mut t = SequenceTracker::new(Some(start));
        assert_eq!(t.observe(start, 30), SeqObservation::default());
        // Gap straddling the wrap: [MAX-15, MAX+15 mod 2^32).
        let obs = t.observe(start.wrapping_add(60), 30);
        assert_eq!(obs.lost_flows, 30);
        // Late fill straddles the wrap too.
        let obs = t.observe(start.wrapping_add(30), 30);
        assert_eq!(obs.recovered_flows, 30);
        assert_eq!(obs.duplicates, 0);
        // And a replay of the first datagram is a duplicate.
        let obs = t.observe(start, 30);
        assert_eq!(obs.duplicates, 30);
    }

    #[test]
    fn gap_book_is_bounded() {
        let mut t = SequenceTracker::new(None);
        t.observe(0, 1);
        // Open far more gaps than the book holds: every other record lost.
        for i in 1..(MAX_GAPS as u32 * 2 + 10) {
            t.observe(i * 2, 1);
        }
        assert!(t.gaps.len() <= MAX_GAPS);
    }
}
