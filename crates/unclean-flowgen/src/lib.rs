//! # unclean-flowgen
//!
//! The NetFlow substrate for the uncleanliness reproduction.
//!
//! The paper's §6 analysis runs over Cisco NetFlow V5 logs of a large edge
//! network. This crate supplies the equivalent synthetic pipeline:
//!
//! * [`record`] — the actual NetFlow V5 wire format (24-byte header +
//!   48-byte records, big-endian), encodable and decodable;
//! * [`session`] — the in-pipeline [`session::Flow`] type with the
//!   paper's payload-bearing test (TCP, ≥36 estimated payload bytes,
//!   ≥1 ACK — including the TCP-options pitfall the paper documents);
//! * [`generator`] — deterministic expansion of netmodel activity events
//!   into border flows (benign sessions, SYN sweeps, slow scans,
//!   ephemeral probes, SMTP bursts);
//! * [`collector`] — streaming per-source aggregation: candidate evidence
//!   for the §6 partition, plus a capped raw-flow store for inspection;
//! * [`faults`] — seeded drop/duplicate/corrupt fault injection, for
//!   proving the analyses degrade gracefully under real telemetry loss;
//! * [`archive`] — framed on-disk spooling of V5 export streams with
//!   sequence-gap accounting on replay (the v1 format);
//! * [`indexed`] — archive format v2: per-day CRC'd segments of varint
//!   delta-compressed datagrams behind a footer index, zero-copy segment
//!   cursors, and executor-parallel replay with per-segment quarantine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
pub mod collector;
pub mod faults;
pub mod generator;
pub mod indexed;
pub mod record;
pub mod seq;
pub mod session;
pub mod source;
pub mod spool;

pub use archive::{ArchiveError, ArchiveReader, ArchiveTelemetry, ArchiveWriter};
pub use collector::{CandidateCollector, FlowStore, SrcEvidence};
pub use faults::{FaultConfig, FaultInjector, FaultStats};
pub use generator::{FlowGenerator, GeneratorConfig};
pub use indexed::{
    ArchiveIndex, FlowArchive, FlowView, IndexedArchive, IndexedArchiveWriter, IndexedError,
    QuarantinedSegment, Replay, SegmentCursor, SegmentInfo, SegmentOutput, SegmentReader,
};
pub use record::{
    decode_datagram, encode_datagram, DecodeError, V5Header, V5Record, V5_HEADER_LEN,
    V5_MAX_RECORDS, V5_RECORD_LEN,
};
pub use seq::{Admit, SeqObservation, SequenceTracker};
pub use session::Flow;
pub use source::{
    ArchiveFlowSource, BatchStatus, FlowRing, FlowSource, RingTelemetry, ShedPolicy,
    SourceCheckpoint, SourceError, UdpFlowSource, UdpSourceConfig,
};
pub use spool::{RecoveryReport, SpoolError, WalCheckpoint, WalSpool};
