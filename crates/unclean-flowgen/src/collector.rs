//! Flow collection and per-source aggregation.
//!
//! Border traffic at realistic scale is far too voluminous to retain, so —
//! exactly like an operational SiLK/NetFlow pipeline — flows stream through
//! aggregators:
//!
//! * [`CandidateCollector`] watches the /24s of an old bot report and
//!   accumulates the per-source evidence §6.1 needs (any TCP record?
//!   any payload-bearing record?) to build the candidate partition;
//! * [`FlowStore`] retains raw flows matching a block filter, for
//!   hand-examination (the paper's authors did the same to find the slow
//!   scanners) and for tests.

use crate::session::Flow;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use unclean_core::{BlockSet, Candidate, Day, Ip};
use unclean_telemetry::{Counter, Registry};

/// Per-source evidence accumulated over an observation window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SrcEvidence {
    /// Total flows seen.
    pub flows: u32,
    /// TCP flows seen (§6.1 requires at least one to be a candidate).
    pub tcp_flows: u32,
    /// Payload-bearing flows (§6.1's 36-byte + ACK test).
    pub payload_flows: u32,
    /// Ephemeral-to-ephemeral flows (suspicion signal).
    pub probe_flows: u32,
    /// First day seen (Day.0).
    pub first_day: i32,
    /// Last day seen (Day.0).
    pub last_day: i32,
}

impl SrcEvidence {
    /// Fold another window's evidence for the same source into this one.
    /// Order-insensitive (counts sum, day bounds min/max), so sharded
    /// collectors merge to exactly what one sequential pass would hold.
    pub fn merge(&mut self, other: &SrcEvidence) {
        if other.flows == 0 {
            return;
        }
        if self.flows == 0 {
            *self = *other;
            return;
        }
        self.first_day = self.first_day.min(other.first_day);
        self.last_day = self.last_day.max(other.last_day);
        self.flows += other.flows;
        self.tcp_flows += other.tcp_flows;
        self.payload_flows += other.payload_flows;
        self.probe_flows += other.probe_flows;
    }

    fn observe(&mut self, flow: &Flow) {
        let day = flow.day().0;
        if self.flows == 0 {
            self.first_day = day;
            self.last_day = day;
        } else {
            self.first_day = self.first_day.min(day);
            self.last_day = self.last_day.max(day);
        }
        self.flows += 1;
        if flow.proto == crate::record::proto::TCP {
            self.tcp_flows += 1;
        }
        if flow.payload_bearing() {
            self.payload_flows += 1;
        }
        if flow.ephemeral_to_ephemeral() && !flow.payload_bearing() {
            self.probe_flows += 1;
        }
    }
}

/// Streams flows and keeps evidence only for sources inside a block set
/// (the candidate /24s).
#[derive(Debug, Clone)]
pub struct CandidateCollector {
    blocks: BlockSet,
    evidence: HashMap<u32, SrcEvidence>,
    observed: u64,
    matched: u64,
    flows_observed: Counter,
    flows_matched: Counter,
}

impl CandidateCollector {
    /// Watch the given blocks (typically `C_24(R_bot-test)`).
    pub fn new(blocks: BlockSet) -> CandidateCollector {
        CandidateCollector {
            blocks,
            evidence: HashMap::new(),
            observed: 0,
            matched: 0,
            flows_observed: Counter::disabled(),
            flows_matched: Counter::disabled(),
        }
    }

    /// Record ingest counts onto `registry`: `collector.flows_observed`
    /// (every flow fed in) and `collector.flows_matched` (flows whose
    /// source fell inside the watched blocks).
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.flows_observed = registry.counter("collector.flows_observed");
        self.flows_matched = registry.counter("collector.flows_matched");
    }

    /// The watched block set.
    pub fn blocks(&self) -> &BlockSet {
        &self.blocks
    }

    /// Feed one flow.
    pub fn observe(&mut self, flow: &Flow) {
        self.observed += 1;
        self.flows_observed.inc();
        if self.blocks.contains(flow.src) {
            self.matched += 1;
            self.flows_matched.inc();
            self.evidence
                .entry(flow.src.raw())
                .or_default()
                .observe(flow);
        }
    }

    /// Flows fed in so far (counted regardless of telemetry level).
    pub fn flows_observed(&self) -> u64 {
        self.observed
    }

    /// Flows whose source fell inside the watched blocks.
    pub fn flows_matched(&self) -> u64 {
        self.matched
    }

    /// Fold a shard's collection into this one. Evidence merging is
    /// order-insensitive, so parallel per-segment collectors folded in
    /// any order equal one sequential pass; ingest counts (and any
    /// attached registry counters) sum as well.
    pub fn merge(&mut self, other: &CandidateCollector) {
        self.observed += other.observed;
        self.matched += other.matched;
        self.flows_observed.add(other.observed);
        self.flows_matched.add(other.matched);
        for (&addr, ev) in &other.evidence {
            self.evidence.entry(addr).or_default().merge(ev);
        }
    }

    /// Number of distinct sources seen so far.
    pub fn len(&self) -> usize {
        self.evidence.len()
    }

    /// Whether nothing matched yet.
    pub fn is_empty(&self) -> bool {
        self.evidence.is_empty()
    }

    /// Evidence for one source.
    pub fn evidence_for(&self, ip: Ip) -> Option<&SrcEvidence> {
        self.evidence.get(&ip.raw())
    }

    /// Build the §6.1 candidate list: sources with at least one TCP record,
    /// tagged with whether they ever exchanged payload. Sorted by address
    /// for determinism.
    pub fn candidates(&self) -> Vec<Candidate> {
        let mut out: Vec<Candidate> = self
            .evidence
            .iter()
            .filter(|(_, ev)| ev.tcp_flows > 0)
            .map(|(&addr, ev)| Candidate {
                ip: Ip(addr),
                payload_bearing: ev.payload_flows > 0,
            })
            .collect();
        out.sort_by_key(|c| c.ip);
        out
    }
}

/// Retains raw flows whose source matches a filter, bounded by a cap.
#[derive(Debug, Clone)]
pub struct FlowStore {
    blocks: Option<BlockSet>,
    cap: usize,
    flows: Vec<Flow>,
    dropped: u64,
    stored_counter: Counter,
    dropped_counter: Counter,
}

impl FlowStore {
    /// Retain flows from sources in `blocks` (or all flows when `None`),
    /// keeping at most `cap` (further flows are counted, not stored).
    pub fn new(blocks: Option<BlockSet>, cap: usize) -> FlowStore {
        FlowStore {
            blocks,
            cap,
            flows: Vec::new(),
            dropped: 0,
            stored_counter: Counter::disabled(),
            dropped_counter: Counter::disabled(),
        }
    }

    /// Record retention onto `registry`: `store.flows_stored` and
    /// `store.flows_dropped` (matching flows past the cap). Declaring
    /// both up front means a clean run exports `store.flows_dropped 0`
    /// rather than omitting the series.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.stored_counter = registry.counter("store.flows_stored");
        self.dropped_counter = registry.counter("store.flows_dropped");
    }

    /// Feed one flow.
    pub fn observe(&mut self, flow: &Flow) {
        if let Some(b) = &self.blocks {
            if !b.contains(flow.src) {
                return;
            }
        }
        if self.flows.len() < self.cap {
            self.flows.push(*flow);
            self.stored_counter.inc();
        } else {
            self.dropped += 1;
            self.dropped_counter.inc();
        }
    }

    /// Stored flows.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// Matching flows that exceeded the cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Stored flows from one source.
    pub fn flows_from(&self, src: Ip) -> Vec<&Flow> {
        self.flows.iter().filter(|f| f.src == src).collect()
    }

    /// Stored flows on one day.
    pub fn flows_on(&self, day: Day) -> Vec<&Flow> {
        self.flows.iter().filter(|f| f.day() == day).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{proto, tcp_flags};
    use unclean_core::IpSet;

    fn flow(src: &str, payload: bool, day: i32) -> Flow {
        Flow {
            src: src.parse().expect("ok"),
            dst: "30.0.0.1".parse().expect("ok"),
            src_port: 40_000,
            dst_port: if payload { 80 } else { 445 },
            proto: proto::TCP,
            packets: 5,
            octets: if payload { 5 * 40 + 500 } else { 5 * 40 },
            flags: if payload {
                tcp_flags::SYN | tcp_flags::ACK | tcp_flags::PSH
            } else {
                tcp_flags::SYN
            },
            start_secs: day as i64 * 86_400 + 100,
            duration_secs: 1,
        }
    }

    fn watch(addrs: &[&str]) -> BlockSet {
        BlockSet::of(
            &IpSet::from_ips(addrs.iter().map(|s| s.parse::<Ip>().expect("ok"))),
            24,
        )
    }

    #[test]
    fn collector_filters_by_block() {
        let mut c = CandidateCollector::new(watch(&["9.1.1.5"]));
        c.observe(&flow("9.1.1.200", true, 273)); // inside
        c.observe(&flow("9.1.2.200", true, 273)); // outside
        assert_eq!(c.len(), 1);
        assert!(c.evidence_for("9.1.1.200".parse().expect("ok")).is_some());
        assert!(c.evidence_for("9.1.2.200".parse().expect("ok")).is_none());
    }

    #[test]
    fn evidence_accumulates() {
        let mut c = CandidateCollector::new(watch(&["9.1.1.5"]));
        let ip = "9.1.1.7";
        c.observe(&flow(ip, false, 273));
        c.observe(&flow(ip, false, 275));
        c.observe(&flow(ip, true, 274));
        let ev = c.evidence_for(ip.parse().expect("ok")).expect("seen");
        assert_eq!(ev.flows, 3);
        assert_eq!(ev.tcp_flows, 3);
        assert_eq!(ev.payload_flows, 1);
        assert_eq!(ev.first_day, 273);
        assert_eq!(ev.last_day, 275);
    }

    #[test]
    fn candidates_partition_inputs() {
        let mut c = CandidateCollector::new(watch(&["9.1.1.5"]));
        c.observe(&flow("9.1.1.10", true, 273));
        c.observe(&flow("9.1.1.20", false, 273));
        let cands = c.candidates();
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[0].ip.to_string(), "9.1.1.10");
        assert!(cands[0].payload_bearing);
        assert!(!cands[1].payload_bearing);
    }

    #[test]
    fn non_tcp_sources_are_not_candidates() {
        let mut c = CandidateCollector::new(watch(&["9.1.1.5"]));
        let mut f = flow("9.1.1.30", false, 273);
        f.proto = proto::UDP;
        c.observe(&f);
        assert_eq!(c.len(), 1, "evidence retained");
        assert!(
            c.candidates().is_empty(),
            "but no TCP record → not a candidate"
        );
    }

    #[test]
    fn probe_flows_counted() {
        let mut c = CandidateCollector::new(watch(&["9.1.1.5"]));
        let mut f = flow("9.1.1.40", false, 273);
        f.dst_port = 44_123;
        c.observe(&f);
        let ev = c
            .evidence_for("9.1.1.40".parse().expect("ok"))
            .expect("seen");
        assert_eq!(ev.probe_flows, 1);
    }

    #[test]
    fn merged_shards_equal_sequential_collection() {
        let watch_set = watch(&["9.1.1.5", "9.1.2.5"]);
        let flows: Vec<Flow> = (0..40)
            .map(|i| {
                flow(
                    if i % 2 == 0 { "9.1.1.7" } else { "9.1.2.9" },
                    i % 3 == 0,
                    273 + (i % 5),
                )
            })
            .collect();
        let mut sequential = CandidateCollector::new(watch_set.clone());
        for f in &flows {
            sequential.observe(f);
        }
        // Shard by thirds, observe independently, merge in order.
        let mut merged = CandidateCollector::new(watch_set.clone());
        for chunk in flows.chunks(13) {
            let mut shard = CandidateCollector::new(watch_set.clone());
            for f in chunk {
                shard.observe(f);
            }
            merged.merge(&shard);
        }
        assert_eq!(merged.candidates(), sequential.candidates());
        assert_eq!(merged.flows_observed(), sequential.flows_observed());
        assert_eq!(merged.flows_matched(), sequential.flows_matched());
        for ip in ["9.1.1.7", "9.1.2.9"] {
            let ip: Ip = ip.parse().expect("ok");
            assert_eq!(merged.evidence_for(ip), sequential.evidence_for(ip));
        }
    }

    #[test]
    fn merge_feeds_attached_counters() {
        let registry = Registry::full();
        let mut master = CandidateCollector::new(watch(&["9.1.1.5"]));
        master.attach_telemetry(&registry);
        let mut shard = CandidateCollector::new(watch(&["9.1.1.5"]));
        shard.observe(&flow("9.1.1.200", true, 273)); // inside
        shard.observe(&flow("9.1.2.200", true, 273)); // outside
        master.merge(&shard);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["collector.flows_observed"], 2);
        assert_eq!(snap.counters["collector.flows_matched"], 1);
        assert_eq!(master.flows_observed(), 2);
        assert_eq!(master.flows_matched(), 1);
    }

    #[test]
    fn store_caps_and_counts() {
        let mut s = FlowStore::new(Some(watch(&["9.1.1.5"])), 2);
        for i in 0..5 {
            s.observe(&flow("9.1.1.9", false, 273 + i));
        }
        s.observe(&flow("8.0.0.1", false, 273)); // filtered out entirely
        assert_eq!(s.flows().len(), 2);
        assert_eq!(s.dropped(), 3);
    }

    #[test]
    fn store_queries() {
        let mut s = FlowStore::new(None, 100);
        s.observe(&flow("9.1.1.9", false, 273));
        s.observe(&flow("9.1.1.9", true, 274));
        s.observe(&flow("9.2.2.2", true, 273));
        assert_eq!(s.flows_from("9.1.1.9".parse().expect("ok")).len(), 2);
        assert_eq!(s.flows_on(Day(273)).len(), 2);
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn telemetry_counts_ingest_and_drops() {
        let registry = Registry::full();
        let mut c = CandidateCollector::new(watch(&["9.1.1.5"]));
        c.attach_telemetry(&registry);
        c.observe(&flow("9.1.1.200", true, 273)); // inside
        c.observe(&flow("9.1.2.200", true, 273)); // outside
        let mut s = FlowStore::new(None, 1);
        s.attach_telemetry(&registry);
        s.observe(&flow("9.1.1.9", false, 273));
        s.observe(&flow("9.1.1.9", false, 274)); // past cap
        let snap = registry.snapshot();
        assert_eq!(snap.counters["collector.flows_observed"], 2);
        assert_eq!(snap.counters["collector.flows_matched"], 1);
        assert_eq!(snap.counters["store.flows_stored"], 1);
        assert_eq!(snap.counters["store.flows_dropped"], 1);
        assert_eq!(s.dropped(), 1, "counter and field agree");
    }
}
