//! The [`FlowSource`] trait: one pull interface over every way flows
//! reach the pipeline.
//!
//! The analyses were built against archive replay — a finite, seekable
//! spool. Live ingest adds a second shape: an unbounded UDP export stream
//! that arrives whether or not the consumer keeps up. [`FlowSource`]
//! unifies them behind three questions a consumer may ask:
//!
//! * [`FlowSource::next_batch`] — give me what you have (bounded wait);
//! * [`FlowSource::telemetry`] — what did the wire do to the stream
//!   (loss, gaps, reorders, duplicates — the
//!   [`ArchiveTelemetry`] accounting, identical across sources);
//! * [`FlowSource::checkpoint`] — where are we, durably resumable.
//!
//! [`ArchiveFlowSource`] adapts both archive vintages (v2 replays
//! executor-parallel with day-ordered merge, so batches are byte-identical
//! at any thread count); [`UdpFlowSource`] binds a socket, decodes V5
//! datagrams with the existing codec, and feeds a bounded [`FlowRing`]
//! whose shed policy is explicit and *counted* — backpressure never turns
//! into silent loss.

use crate::archive::{ArchiveReader, ArchiveTelemetry};
use crate::indexed::{FlowArchive, IndexedError};
use crate::record::decode_datagram;
use crate::seq::SequenceTracker;
use crate::session::Flow;
use crossbeam::executor::Executor;
use std::collections::VecDeque;
use std::io;
use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Errors surfaced by a flow source.
#[derive(Debug)]
pub enum SourceError {
    /// Socket or file I/O failed.
    Io(io::Error),
    /// An archive could not be opened or replayed.
    Archive(String),
}

impl std::fmt::Display for SourceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SourceError::Io(e) => write!(f, "source I/O error: {e}"),
            SourceError::Archive(msg) => write!(f, "source archive error: {msg}"),
        }
    }
}

impl std::error::Error for SourceError {}

impl From<io::Error> for SourceError {
    fn from(e: io::Error) -> SourceError {
        SourceError::Io(e)
    }
}

impl From<IndexedError> for SourceError {
    fn from(e: IndexedError) -> SourceError {
        SourceError::Archive(e.to_string())
    }
}

/// What one [`FlowSource::next_batch`] call produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchStatus {
    /// This many flows were appended to the caller's buffer.
    Delivered(usize),
    /// Nothing available right now; the source is still live — poll again.
    Idle,
    /// The source is drained: archives at end-of-spool, live sources
    /// after shutdown once the ring is empty. No more flows will come.
    Exhausted,
}

/// A resumable position in the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SourceCheckpoint {
    /// The next V5 sequence number the source expects, once locked onto
    /// the stream.
    pub expected_seq: Option<u32>,
    /// Flows delivered to the consumer so far.
    pub delivered: u64,
}

/// One pull interface over archive replay and live ingest.
pub trait FlowSource {
    /// Append the next batch of flows to `out`. Live sources block for at
    /// most a short poll interval; `Idle` means "nothing yet, still
    /// live", `Exhausted` means no flow will ever come again.
    fn next_batch(&mut self, out: &mut Vec<Flow>) -> Result<BatchStatus, SourceError>;

    /// Wire-level accounting so far: the same loss/gap/reorder/duplicate
    /// bookkeeping whichever shape the source is.
    fn telemetry(&self) -> ArchiveTelemetry;

    /// Where the stream stands, for durable resume.
    fn checkpoint(&self) -> SourceCheckpoint;
}

// ---------------------------------------------------------------------------
// Archive replay as a FlowSource
// ---------------------------------------------------------------------------

/// Archive replay behind the [`FlowSource`] interface. Both vintages are
/// accepted; v2 archives replay one executor worker per day segment with
/// the batches merged in day order, so the delivered stream is
/// byte-identical at any thread count.
#[derive(Debug)]
pub struct ArchiveFlowSource {
    batches: VecDeque<Vec<Flow>>,
    telemetry: ArchiveTelemetry,
    quarantined: usize,
    end_seq: Option<u32>,
    delivered: u64,
}

impl ArchiveFlowSource {
    /// Replay `data` (v2 sniffed by trailer, v1 fallback decoded against
    /// `boot_unix_secs`) on `threads` workers. Lenient: a v2 segment that
    /// fails its CRC is quarantined (counted, skipped) rather than
    /// aborting the source.
    pub fn open(
        data: &[u8],
        boot_unix_secs: u32,
        threads: usize,
    ) -> Result<ArchiveFlowSource, SourceError> {
        match FlowArchive::open(data)? {
            FlowArchive::V2(archive) => {
                let pool = Executor::new(threads);
                let replay = archive.replay_with(&pool, None, true, |_, cursor| {
                    let mut flows = Vec::new();
                    cursor.for_each_flow(|f| flows.push(*f))?;
                    Ok(flows)
                })?;
                let batches: VecDeque<Vec<Flow>> = replay
                    .outputs
                    .iter()
                    .filter_map(|o| o.output.clone())
                    .collect();
                let end_seq = archive.segments().last().map(|s| s.end_seq);
                Ok(ArchiveFlowSource {
                    batches,
                    telemetry: replay.telemetry,
                    quarantined: replay.quarantined.len(),
                    end_seq,
                    delivered: 0,
                })
            }
            FlowArchive::V1(bytes) => {
                let mut reader = ArchiveReader::new(bytes, boot_unix_secs);
                let mut batches = VecDeque::new();
                loop {
                    match reader.next_datagram() {
                        Ok(Some(batch)) => {
                            if !batch.is_empty() {
                                batches.push_back(batch);
                            }
                        }
                        Ok(None) => break,
                        Err(e) => return Err(SourceError::Archive(e.to_string())),
                    }
                }
                Ok(ArchiveFlowSource {
                    batches,
                    telemetry: reader.telemetry(),
                    quarantined: 0,
                    end_seq: None,
                    delivered: 0,
                })
            }
        }
    }

    /// Segments skipped by the lenient v2 replay.
    pub fn quarantined(&self) -> usize {
        self.quarantined
    }
}

impl FlowSource for ArchiveFlowSource {
    fn next_batch(&mut self, out: &mut Vec<Flow>) -> Result<BatchStatus, SourceError> {
        match self.batches.pop_front() {
            Some(batch) => {
                let n = batch.len();
                self.delivered += n as u64;
                out.extend(batch);
                Ok(BatchStatus::Delivered(n))
            }
            None => Ok(BatchStatus::Exhausted),
        }
    }

    fn telemetry(&self) -> ArchiveTelemetry {
        self.telemetry
    }

    fn checkpoint(&self) -> SourceCheckpoint {
        SourceCheckpoint {
            expected_seq: self.end_seq,
            delivered: self.delivered,
        }
    }
}

// ---------------------------------------------------------------------------
// The bounded ring
// ---------------------------------------------------------------------------

/// What to do when the ring is full and another flow arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Evict the oldest queued flow to admit the new one (favor
    /// freshness — the rescore window wants recent flows).
    DropOldest,
    /// Refuse the new flow (favor what's already queued).
    DropNewest,
}

impl std::str::FromStr for ShedPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<ShedPolicy, String> {
        match s {
            "oldest" | "drop-oldest" => Ok(ShedPolicy::DropOldest),
            "newest" | "drop-newest" => Ok(ShedPolicy::DropNewest),
            other => Err(format!("unknown shed policy '{other}' (oldest|newest)")),
        }
    }
}

/// The ring's accounting: every shed is counted — backpressure is
/// visible, never silent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingTelemetry {
    /// Flows accepted into the ring.
    pub pushed: u64,
    /// Flows handed to the consumer.
    pub popped: u64,
    /// Queued flows evicted by [`ShedPolicy::DropOldest`].
    pub shed_oldest: u64,
    /// Arriving flows refused by [`ShedPolicy::DropNewest`].
    pub shed_newest: u64,
    /// Deepest the queue ever got.
    pub high_water: u64,
}

impl RingTelemetry {
    /// Total flows shed, either policy.
    pub fn shed(&self) -> u64 {
        self.shed_oldest + self.shed_newest
    }
}

#[derive(Debug)]
struct RingInner {
    queue: VecDeque<Flow>,
    telemetry: RingTelemetry,
    closed: bool,
}

/// A bounded flow queue between the socket reader and the spooler, with
/// an explicit, counted shed policy.
#[derive(Debug)]
pub struct FlowRing {
    inner: Mutex<RingInner>,
    readable: Condvar,
    capacity: usize,
    policy: ShedPolicy,
}

impl FlowRing {
    /// A ring holding at most `capacity` flows, shedding per `policy`.
    pub fn new(capacity: usize, policy: ShedPolicy) -> FlowRing {
        assert!(capacity > 0, "ring capacity must be positive");
        FlowRing {
            inner: Mutex::new(RingInner {
                queue: VecDeque::with_capacity(capacity.min(65_536)),
                telemetry: RingTelemetry::default(),
                closed: false,
            }),
            readable: Condvar::new(),
            capacity,
            policy,
        }
    }

    /// Push `flows`, shedding per policy when full. Returns how many were
    /// shed (already counted in the telemetry).
    pub fn push_batch(&self, flows: &[Flow]) -> u64 {
        let mut inner = self.inner.lock().expect("flow ring");
        if inner.closed {
            // A closed ring sheds everything: the consumer is gone.
            inner.telemetry.shed_newest += flows.len() as u64;
            return flows.len() as u64;
        }
        let mut shed = 0u64;
        for f in flows {
            if inner.queue.len() == self.capacity {
                match self.policy {
                    ShedPolicy::DropOldest => {
                        inner.queue.pop_front();
                        inner.telemetry.shed_oldest += 1;
                        shed += 1;
                    }
                    ShedPolicy::DropNewest => {
                        inner.telemetry.shed_newest += 1;
                        shed += 1;
                        continue;
                    }
                }
            }
            inner.queue.push_back(*f);
            inner.telemetry.pushed += 1;
        }
        let depth = inner.queue.len() as u64;
        inner.telemetry.high_water = inner.telemetry.high_water.max(depth);
        drop(inner);
        self.readable.notify_one();
        shed
    }

    /// Pop up to `max` flows into `out`, waiting up to `timeout` for the
    /// first. Returns `Delivered`/`Idle`, or `Exhausted` once the ring is
    /// closed *and* empty — a close never strands queued flows.
    pub fn pop_batch(&self, out: &mut Vec<Flow>, max: usize, timeout: Duration) -> BatchStatus {
        let mut inner = self.inner.lock().expect("flow ring");
        if inner.queue.is_empty() {
            if inner.closed {
                return BatchStatus::Exhausted;
            }
            let (guard, _) = self
                .readable
                .wait_timeout(inner, timeout)
                .expect("flow ring");
            inner = guard;
        }
        if inner.queue.is_empty() {
            return if inner.closed {
                BatchStatus::Exhausted
            } else {
                BatchStatus::Idle
            };
        }
        let n = inner.queue.len().min(max);
        out.extend(inner.queue.drain(..n));
        inner.telemetry.popped += n as u64;
        BatchStatus::Delivered(n)
    }

    /// Close the ring: no more pushes are admitted; queued flows remain
    /// poppable until drained.
    pub fn close(&self) {
        self.inner.lock().expect("flow ring").closed = true;
        self.readable.notify_all();
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("flow ring").queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's shed/depth accounting.
    pub fn telemetry(&self) -> RingTelemetry {
        self.inner.lock().expect("flow ring").telemetry
    }
}

// ---------------------------------------------------------------------------
// Live UDP ingest as a FlowSource
// ---------------------------------------------------------------------------

/// Configuration for a [`UdpFlowSource`].
#[derive(Debug, Clone)]
pub struct UdpSourceConfig {
    /// Address to bind, e.g. `127.0.0.1:9995` (port 0 for ephemeral).
    pub bind: String,
    /// Exporter boot anchor used to decode flow timestamps.
    pub boot_unix_secs: u32,
    /// Ring capacity in flows.
    pub ring_capacity: usize,
    /// What to shed when the ring is full.
    pub shed: ShedPolicy,
    /// Socket read timeout — the reader thread's shutdown poll interval.
    pub read_timeout: Duration,
    /// How long [`FlowSource::next_batch`] waits before reporting `Idle`.
    pub poll_timeout: Duration,
    /// Most flows delivered per `next_batch` call.
    pub max_batch: usize,
}

impl Default for UdpSourceConfig {
    fn default() -> UdpSourceConfig {
        UdpSourceConfig {
            bind: "127.0.0.1:0".to_string(),
            boot_unix_secs: crate::record::EPOCH_UNIX_SECS,
            ring_capacity: 65_536,
            shed: ShedPolicy::DropOldest,
            read_timeout: Duration::from_millis(50),
            poll_timeout: Duration::from_millis(50),
            max_batch: 4_096,
        }
    }
}

/// Shared state between the socket reader thread and the consumer.
#[derive(Debug)]
struct UdpShared {
    ring: FlowRing,
    telemetry: Mutex<ArchiveTelemetry>,
    decode_errors: AtomicU64,
    // Next expected sequence, encoded as value+1 (0 = not locked yet) so
    // the checkpoint needs no lock.
    expected_seq: AtomicU64,
    stop: AtomicBool,
}

/// A live V5 collector: binds a UDP socket, decodes datagrams with the
/// archive codec, runs the shared [`SequenceTracker`]
/// loss/reorder/duplicate accounting, and feeds the bounded ring.
#[derive(Debug)]
pub struct UdpFlowSource {
    shared: Arc<UdpShared>,
    local_addr: std::net::SocketAddr,
    reader: Option<std::thread::JoinHandle<()>>,
    poll_timeout: Duration,
    max_batch: usize,
    delivered: u64,
}

impl UdpFlowSource {
    /// Bind the socket and start the reader thread.
    pub fn bind(config: UdpSourceConfig) -> Result<UdpFlowSource, SourceError> {
        let socket = UdpSocket::bind(&config.bind)?;
        socket.set_read_timeout(Some(config.read_timeout))?;
        let local_addr = socket.local_addr()?;
        let shared = Arc::new(UdpShared {
            ring: FlowRing::new(config.ring_capacity, config.shed),
            telemetry: Mutex::new(ArchiveTelemetry::default()),
            decode_errors: AtomicU64::new(0),
            expected_seq: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let reader = {
            let shared = Arc::clone(&shared);
            let boot = config.boot_unix_secs;
            std::thread::Builder::new()
                .name("udp-flow-source".to_string())
                .spawn(move || reader_loop(&socket, &shared, boot))
                .map_err(SourceError::Io)?
        };
        Ok(UdpFlowSource {
            shared,
            local_addr,
            reader: Some(reader),
            poll_timeout: config.poll_timeout,
            max_batch: config.max_batch,
            delivered: 0,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Datagrams that failed to decode (truncated or corrupt on the
    /// wire). Their flows surface later as sequence-gap loss.
    pub fn decode_errors(&self) -> u64 {
        self.shared.decode_errors.load(Ordering::Relaxed)
    }

    /// The ring's shed/depth accounting.
    pub fn ring_telemetry(&self) -> RingTelemetry {
        self.shared.ring.telemetry()
    }

    /// Stop receiving: the socket reader exits and the ring closes, but
    /// queued flows stay poppable — [`FlowSource::next_batch`] keeps
    /// delivering until it reports `Exhausted`, so a drain loses nothing.
    pub fn stop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.reader.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for UdpFlowSource {
    fn drop(&mut self) {
        self.stop();
    }
}

impl FlowSource for UdpFlowSource {
    fn next_batch(&mut self, out: &mut Vec<Flow>) -> Result<BatchStatus, SourceError> {
        let status = self
            .shared
            .ring
            .pop_batch(out, self.max_batch, self.poll_timeout);
        if let BatchStatus::Delivered(n) = status {
            self.delivered += n as u64;
        }
        Ok(status)
    }

    fn telemetry(&self) -> ArchiveTelemetry {
        *self.shared.telemetry.lock().expect("udp telemetry")
    }

    fn checkpoint(&self) -> SourceCheckpoint {
        let enc = self.shared.expected_seq.load(Ordering::Relaxed);
        SourceCheckpoint {
            expected_seq: enc.checked_sub(1).map(|v| v as u32),
            delivered: self.delivered,
        }
    }
}

/// The socket reader: one datagram per `recv`, decoded, sequence-checked,
/// admitted flows pushed to the ring. Exits when `stop` is set, then
/// closes the ring so the consumer can drain what's queued.
fn reader_loop(socket: &UdpSocket, shared: &UdpShared, boot_unix_secs: u32) {
    let mut tracker = SequenceTracker::new(None);
    let mut buf = [0u8; 65_535];
    let mut batch: Vec<Flow> = Vec::with_capacity(crate::record::V5_MAX_RECORDS);
    while !shared.stop.load(Ordering::SeqCst) {
        let len = match socket.recv_from(&mut buf) {
            Ok((len, _)) => len,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        };
        let (header, records) = match decode_datagram(&buf[..len]) {
            Ok(decoded) => decoded,
            Err(_) => {
                shared.decode_errors.fetch_add(1, Ordering::Relaxed);
                continue;
            }
        };
        let obs = tracker.observe(header.flow_sequence, records.len() as u32);
        if let Some(expected) = tracker.expected() {
            shared
                .expected_seq
                .store(u64::from(expected) + 1, Ordering::Relaxed);
        }
        batch.clear();
        batch.extend(
            records
                .iter()
                .enumerate()
                .filter(|(k, _)| obs.admit.admits(*k as u32))
                .map(|(_, r)| Flow::from_v5(r, boot_unix_secs)),
        );
        {
            let mut t = shared.telemetry.lock().expect("udp telemetry");
            t.apply(&obs);
            t.datagrams += 1;
            t.flows += batch.len() as u64;
        }
        shared.ring.push_batch(&batch);
    }
    shared.ring.close();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::ArchiveWriter;
    use crate::indexed::IndexedArchiveWriter;
    use crate::record::{encode_datagram, proto, tcp_flags, EPOCH_UNIX_SECS};
    use crate::session::Flow;
    use unclean_core::Ip;

    fn boot() -> u32 {
        EPOCH_UNIX_SECS
    }

    fn flow(day: u32, i: u32) -> Flow {
        Flow {
            src: Ip(0x0901_0000 + i),
            dst: Ip(0x1e00_0001),
            src_port: 40_000,
            dst_port: 445,
            proto: proto::TCP,
            packets: 1,
            octets: 40,
            flags: tcp_flags::SYN,
            start_secs: i64::from(day) * 86_400 + i64::from(i),
            duration_secs: 0,
        }
    }

    fn drain(source: &mut impl FlowSource) -> Vec<Flow> {
        let mut out = Vec::new();
        loop {
            match source.next_batch(&mut out).expect("batch") {
                BatchStatus::Delivered(_) | BatchStatus::Idle => {}
                BatchStatus::Exhausted => return out,
            }
        }
    }

    #[test]
    fn archive_source_replays_both_vintages() {
        // v2
        let mut w = IndexedArchiveWriter::new(Vec::new(), boot());
        let mut expected = Vec::new();
        for day in 0..3 {
            for i in 0..70u32 {
                let f = flow(day, i);
                w.push(&f).expect("write");
                expected.push(f);
            }
        }
        let (v2, _) = w.finish().expect("finish");
        let mut src = ArchiveFlowSource::open(&v2, boot(), 2).expect("open v2");
        assert_eq!(drain(&mut src), expected);
        assert_eq!(src.telemetry().flows, 210);
        assert_eq!(src.checkpoint().delivered, 210);
        assert!(src.checkpoint().expected_seq.is_some());

        // v1
        let mut w = ArchiveWriter::new(Vec::new(), boot());
        for f in &expected[..95] {
            w.push(f).expect("write");
        }
        let (v1, _) = w.finish().expect("finish");
        let mut src = ArchiveFlowSource::open(&v1, boot(), 1).expect("open v1");
        assert_eq!(drain(&mut src), &expected[..95]);
    }

    #[test]
    fn archive_source_is_thread_count_invariant() {
        let mut w = IndexedArchiveWriter::new(Vec::new(), boot());
        for day in 0..5 {
            for i in 0..123u32 {
                w.push(&flow(day, i)).expect("write");
            }
        }
        let (bytes, _) = w.finish().expect("finish");
        let mut one = ArchiveFlowSource::open(&bytes, boot(), 1).expect("open");
        let mut eight = ArchiveFlowSource::open(&bytes, boot(), 8).expect("open");
        let (t1, t8) = (one.telemetry(), eight.telemetry());
        assert_eq!(drain(&mut one), drain(&mut eight));
        assert_eq!(t1, t8);
    }

    #[test]
    fn ring_sheds_oldest_with_counts() {
        let ring = FlowRing::new(4, ShedPolicy::DropOldest);
        let flows: Vec<Flow> = (0..6).map(|i| flow(0, i)).collect();
        let shed = ring.push_batch(&flows);
        assert_eq!(shed, 2);
        let mut out = Vec::new();
        ring.pop_batch(&mut out, 100, Duration::from_millis(1));
        // The oldest two were evicted; the newest four survive.
        assert_eq!(out, &flows[2..]);
        let t = ring.telemetry();
        assert_eq!(t.shed_oldest, 2);
        assert_eq!(t.shed_newest, 0);
        assert_eq!(t.pushed, 6);
        assert_eq!(t.popped, 4);
        assert_eq!(t.high_water, 4);
    }

    #[test]
    fn ring_sheds_newest_with_counts() {
        let ring = FlowRing::new(4, ShedPolicy::DropNewest);
        let flows: Vec<Flow> = (0..6).map(|i| flow(0, i)).collect();
        assert_eq!(ring.push_batch(&flows), 2);
        let mut out = Vec::new();
        ring.pop_batch(&mut out, 100, Duration::from_millis(1));
        // The arriving overflow was refused; the oldest four survive.
        assert_eq!(out, &flows[..4]);
        let t = ring.telemetry();
        assert_eq!(t.shed_newest, 2);
        assert_eq!(t.shed_oldest, 0);
    }

    #[test]
    fn closed_ring_drains_then_exhausts() {
        let ring = FlowRing::new(16, ShedPolicy::DropOldest);
        let flows: Vec<Flow> = (0..5).map(|i| flow(0, i)).collect();
        ring.push_batch(&flows);
        ring.close();
        // Pushes after close are refused (and counted).
        assert_eq!(ring.push_batch(&flows[..2]), 2);
        let mut out = Vec::new();
        assert_eq!(
            ring.pop_batch(&mut out, 3, Duration::from_millis(1)),
            BatchStatus::Delivered(3)
        );
        assert_eq!(
            ring.pop_batch(&mut out, 100, Duration::from_millis(1)),
            BatchStatus::Delivered(2)
        );
        assert_eq!(
            ring.pop_batch(&mut out, 100, Duration::from_millis(1)),
            BatchStatus::Exhausted
        );
        assert_eq!(out, flows);
    }

    /// Send `datagrams` (each a (first_seq, flows) pair) to `addr` from an
    /// ephemeral socket.
    fn send_datagrams(addr: std::net::SocketAddr, datagrams: &[(u32, Vec<Flow>)]) {
        let sock = UdpSocket::bind("127.0.0.1:0").expect("sender socket");
        for (seq, flows) in datagrams {
            let records: Vec<_> = flows.iter().map(|f| f.to_v5(boot())).collect();
            let header = crate::record::V5Header {
                count: records.len() as u16,
                sys_uptime_ms: 0,
                unix_secs: boot(),
                unix_nsecs: 0,
                flow_sequence: *seq,
                engine_type: 0,
                engine_id: 0,
                sampling_interval: 0,
            };
            let wire = encode_datagram(&header, &records);
            sock.send_to(&wire, addr).expect("send");
        }
    }

    /// Pump `next_batch` until `want` flows arrived or ~2s elapsed.
    fn pump(source: &mut UdpFlowSource, want: usize) -> Vec<Flow> {
        let mut out = Vec::new();
        for _ in 0..200 {
            let _ = source.next_batch(&mut out).expect("batch");
            if out.len() >= want {
                break;
            }
        }
        out
    }

    #[test]
    fn udp_source_delivers_and_accounts_duplicates() {
        let mut src = UdpFlowSource::bind(UdpSourceConfig {
            poll_timeout: Duration::from_millis(10),
            ..UdpSourceConfig::default()
        })
        .expect("bind");
        let addr = src.local_addr();
        let d0: Vec<Flow> = (0..30).map(|i| flow(0, i)).collect();
        let d1: Vec<Flow> = (30..60).map(|i| flow(0, i)).collect();
        // Send 0, 1, then 1 again (a duplicated export datagram).
        send_datagrams(addr, &[(0, d0.clone()), (30, d1.clone()), (30, d1.clone())]);
        let got = pump(&mut src, 60);
        assert_eq!(got.len(), 60, "duplicate withheld, originals delivered");
        assert_eq!(&got[..30], &d0[..]);
        assert_eq!(&got[30..], &d1[..]);
        // Allow the third datagram to be processed before reading counts.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while src.telemetry().datagrams < 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let t = src.telemetry();
        assert_eq!(t.datagrams, 3);
        assert_eq!(t.flows, 60);
        assert_eq!(t.duplicates, 30);
        assert_eq!(t.lost_flows, 0);
        assert_eq!(src.checkpoint().expected_seq, Some(60));
        src.stop();
    }

    #[test]
    fn udp_source_books_gaps_and_drains_on_stop() {
        let mut src = UdpFlowSource::bind(UdpSourceConfig {
            poll_timeout: Duration::from_millis(10),
            ..UdpSourceConfig::default()
        })
        .expect("bind");
        let addr = src.local_addr();
        let d0: Vec<Flow> = (0..30).map(|i| flow(0, i)).collect();
        let d2: Vec<Flow> = (60..90).map(|i| flow(0, i)).collect();
        // Datagram 1 (seq 30..60) never arrives: a gap.
        send_datagrams(addr, &[(0, d0.clone()), (60, d2.clone())]);
        // Wait for both datagrams to be ingested, then stop *without*
        // draining first: the queued flows must survive the stop.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while src.telemetry().datagrams < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        src.stop();
        let mut out = Vec::new();
        while !matches!(
            src.next_batch(&mut out).expect("batch"),
            BatchStatus::Exhausted
        ) {}
        assert_eq!(out.len(), 60, "stop + drain loses zero queued flows");
        let t = src.telemetry();
        assert_eq!(t.lost_flows, 30);
        assert_eq!(t.sequence_gaps, 1);
        assert_eq!(src.ring_telemetry().shed(), 0);
    }

    #[test]
    fn undecodable_datagrams_are_counted_not_fatal() {
        let mut src = UdpFlowSource::bind(UdpSourceConfig {
            poll_timeout: Duration::from_millis(10),
            ..UdpSourceConfig::default()
        })
        .expect("bind");
        let addr = src.local_addr();
        let sock = UdpSocket::bind("127.0.0.1:0").expect("sender");
        sock.send_to(b"garbage", addr).expect("send");
        let d0: Vec<Flow> = (0..30).map(|i| flow(0, i)).collect();
        send_datagrams(addr, &[(0, d0.clone())]);
        let got = pump(&mut src, 30);
        assert_eq!(got, d0, "the good datagram still lands");
        assert_eq!(src.decode_errors(), 1);
        src.stop();
    }
}
