//! Activity-event → flow expansion.
//!
//! Each [`ActivityEvent`] from the netmodel becomes the NetFlow-visible
//! traffic it implies at the observed network's border:
//!
//! * benign sessions → payload-bearing TCP to the observed servers;
//! * fast scans → SYN-only probe trains across many targets within one
//!   hour (some padded with TCP options — the 36-byte pitfall);
//! * slow scans → the same probes, spread thinly across the day;
//! * probes → ephemeral-to-ephemeral connection attempts;
//! * spam bursts → payload-bearing SMTP to the mail servers;
//! * C&C check-ins → nothing (that traffic never crosses the observed
//!   border; the bot monitor sees it out-of-band).
//!
//! Expansion is deterministic: every field derives from stable hashes of
//! (source, day, nonce), so regenerating any day yields identical flows.

use crate::record::{proto, tcp_flags};
use crate::session::Flow;
use serde::{Deserialize, Serialize};
use unclean_core::{Day, Ip};
use unclean_netmodel::observed::ObservedNetwork;
use unclean_netmodel::randutil::{index_hash, uniform_hash};
use unclean_netmodel::{ActivityEvent, ActivityKind, ActivityModel};
use unclean_stats::SeedTree;
use unclean_telemetry::{Counter, Registry};

/// Generator tunables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// How many distinct public servers the observed network runs.
    pub server_count: u32,
    /// How many of those are mail exchangers (targets of spam).
    pub mail_server_count: u32,
    /// Service ports benign clients hit, sampled uniformly.
    pub benign_ports: Vec<u16>,
    /// Ports scanned by sweeps, one per sweep.
    pub scan_ports: Vec<u16>,
}

impl Default for GeneratorConfig {
    fn default() -> GeneratorConfig {
        GeneratorConfig {
            server_count: 48,
            mail_server_count: 6,
            benign_ports: vec![80, 80, 80, 443, 443, 25, 110, 143, 22, 53],
            scan_ports: vec![135, 139, 445, 1025, 1433, 2967, 4899, 5900],
        }
    }
}

/// The flow generator.
#[derive(Debug, Clone)]
pub struct FlowGenerator<'a> {
    observed: &'a ObservedNetwork,
    config: GeneratorConfig,
    seeds: SeedTree,
    events_counter: Counter,
    flows_counter: Counter,
    truncated_counter: Counter,
}

impl<'a> FlowGenerator<'a> {
    /// A generator over the given observed network.
    pub fn new(observed: &'a ObservedNetwork, config: GeneratorConfig, seeds: SeedTree) -> Self {
        assert!(config.server_count > 0, "need at least one server");
        assert!(
            config.mail_server_count > 0 && config.mail_server_count <= config.server_count,
            "mail servers are a subset of servers"
        );
        assert!(!config.benign_ports.is_empty() && !config.scan_ports.is_empty());
        FlowGenerator {
            observed,
            config,
            seeds,
            events_counter: Counter::disabled(),
            flows_counter: Counter::disabled(),
            truncated_counter: Counter::disabled(),
        }
    }

    /// Record expansion counts onto `registry`:
    /// `flowgen.events_expanded` (activity events fed in),
    /// `flowgen.flows_generated` (border flows emitted), and
    /// `flowgen.flows_truncated` (spam messages past the per-burst
    /// expansion cap, i.e. deliberately not turned into flows).
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.events_counter = registry.counter("flowgen.events_expanded");
        self.flows_counter = registry.counter("flowgen.flows_generated");
        self.truncated_counter = registry.counter("flowgen.flows_truncated");
    }

    /// Address of public server `idx`.
    pub fn server_addr(&self, idx: u32) -> Ip {
        let base = self.observed.blocks()[0].first().raw();
        Ip(base + 10 + idx % self.config.server_count)
    }

    /// Address of mail server `idx`.
    pub fn mail_addr(&self, idx: u32) -> Ip {
        self.server_addr(idx % self.config.mail_server_count)
    }

    /// Expand one event into flows.
    pub fn expand(&self, event: &ActivityEvent, mut sink: impl FnMut(Flow)) {
        self.events_counter.inc();
        let mut emitted = 0u64;
        let mut sink = |f: Flow| {
            emitted += 1;
            sink(f)
        };
        let src = event.src;
        let e = src.raw();
        let d = event.day.0;
        let day_base = event.day.0 as i64 * 86_400;
        match event.kind {
            ActivityKind::Benign { sessions } => {
                for k in 0..sessions as u32 {
                    let u =
                        |label: &str| uniform_hash(&self.seeds, e ^ k.rotate_left(13), d, label);
                    let server = index_hash(
                        &self.seeds,
                        e ^ k,
                        d,
                        "b-server",
                        self.config.server_count as usize,
                    );
                    let port = self.config.benign_ports[index_hash(
                        &self.seeds,
                        e ^ k,
                        d,
                        "b-port",
                        self.config.benign_ports.len(),
                    )];
                    let packets = 8 + (u("b-pkts") * 52.0) as u32;
                    let payload = 200 + (u("b-bytes") * 19_800.0) as u32;
                    sink(Flow {
                        src,
                        dst: self.server_addr(server as u32),
                        src_port: ephemeral(u("b-sport")),
                        dst_port: port,
                        proto: proto::TCP,
                        packets,
                        octets: packets * 40 + payload,
                        flags: tcp_flags::SYN | tcp_flags::ACK | tcp_flags::PSH | tcp_flags::FIN,
                        start_secs: day_base + (u("b-time") * 86_000.0) as i64,
                        duration_secs: 1 + (u("b-dur") * 300.0) as u32,
                    });
                }
            }
            ActivityKind::Scan { targets } => {
                // One sweep: a single port, targets spread across one hour.
                let port = self.config.scan_ports
                    [index_hash(&self.seeds, e, d, "s-port", self.config.scan_ports.len())];
                let hour_base =
                    day_base + (uniform_hash(&self.seeds, e, d, "s-hour") * 23.0) as i64 * 3600;
                for t in 0..targets as u32 {
                    let u = |label: &str| uniform_hash(&self.seeds, e ^ t.rotate_left(7), d, label);
                    let packets = 1 + (u("s-pkts") * 2.0) as u32;
                    // Some stacks add 12 bytes of options per SYN.
                    let per_packet = if u("s-opts") < 0.5 { 52 } else { 40 };
                    sink(Flow {
                        src,
                        dst: self.observed.target_addr(&self.seeds, e, d, t),
                        src_port: ephemeral(u("s-sport")),
                        dst_port: port,
                        proto: proto::TCP,
                        packets,
                        octets: packets * per_packet,
                        flags: tcp_flags::SYN,
                        start_secs: hour_base + (u("s-time") * 3_500.0) as i64,
                        duration_secs: 0,
                    });
                }
            }
            ActivityKind::SlowScan { targets } => {
                for t in 0..targets as u32 {
                    let u = |label: &str| uniform_hash(&self.seeds, e ^ t.rotate_left(7), d, label);
                    let port = self.config.scan_ports[index_hash(
                        &self.seeds,
                        e ^ t,
                        d,
                        "ss-port",
                        self.config.scan_ports.len(),
                    )];
                    let per_packet = if u("ss-opts") < 0.5 { 52 } else { 40 };
                    sink(Flow {
                        src,
                        dst: self
                            .observed
                            .target_addr(&self.seeds, e, d, 0x8000_0000 | t),
                        src_port: ephemeral(u("ss-sport")),
                        dst_port: port,
                        proto: proto::TCP,
                        packets: 1,
                        octets: per_packet,
                        flags: tcp_flags::SYN,
                        start_secs: day_base + (u("ss-time") * 86_000.0) as i64,
                        duration_secs: 0,
                    });
                }
            }
            ActivityKind::Probe => {
                let n = 1 + index_hash(&self.seeds, e, d, "p-count", 2) as u32;
                for t in 0..n {
                    let u = |label: &str| uniform_hash(&self.seeds, e ^ t.rotate_left(9), d, label);
                    let packets = 1 + (u("p-pkts") * 2.0) as u32;
                    sink(Flow {
                        src,
                        dst: self
                            .observed
                            .target_addr(&self.seeds, e, d, 0x4000_0000 | t),
                        src_port: ephemeral(u("p-sport")),
                        dst_port: ephemeral(u("p-dport")),
                        proto: proto::TCP,
                        packets,
                        octets: packets * 40,
                        flags: tcp_flags::SYN,
                        start_secs: day_base + (u("p-time") * 86_000.0) as i64,
                        duration_secs: 0,
                    });
                }
            }
            ActivityKind::Spam { messages } => {
                // A message ≈ one SMTP delivery flow; cap the expansion so a
                // burst never floods the pipeline.
                let flows = (messages as u32).min(60);
                self.truncated_counter
                    .add(u64::from(messages as u32) - u64::from(flows));
                for t in 0..flows {
                    let u =
                        |label: &str| uniform_hash(&self.seeds, e ^ t.rotate_left(11), d, label);
                    let mx = index_hash(
                        &self.seeds,
                        e ^ t,
                        d,
                        "m-server",
                        self.config.mail_server_count as usize,
                    );
                    let packets = 10 + (u("m-pkts") * 20.0) as u32;
                    let payload = 2_000 + (u("m-bytes") * 6_000.0) as u32;
                    sink(Flow {
                        src,
                        dst: self.mail_addr(mx as u32),
                        src_port: ephemeral(u("m-sport")),
                        dst_port: 25,
                        proto: proto::TCP,
                        packets,
                        octets: packets * 40 + payload,
                        flags: tcp_flags::SYN | tcp_flags::ACK | tcp_flags::PSH | tcp_flags::FIN,
                        start_secs: day_base + (u("m-time") * 86_000.0) as i64,
                        duration_secs: 2 + (u("m-dur") * 60.0) as u32,
                    });
                }
            }
            ActivityKind::C2Checkin { .. } => {
                // C&C rendezvous does not transit the observed border.
            }
        }
        self.flows_counter.add(emitted);
    }

    /// Expand one event into `arena`, returning how many flows it added.
    ///
    /// Batch-collection variant of [`expand`](Self::expand): flows are
    /// bump-allocated into chunks the arena retains across
    /// [`reset`](arena::Arena::reset), so a caller that recycles one
    /// arena per day reaches a steady state where expansion performs no
    /// heap allocation at all.
    pub fn expand_into(&self, event: &ActivityEvent, arena: &mut arena::Arena<Flow>) -> usize {
        let before = arena.len();
        self.expand(event, |f| {
            arena.alloc(f);
        });
        arena.len() - before
    }

    /// Generate all border flows for one day into `arena`: hostile
    /// activity plus (optionally) benign clients. Returns the number of
    /// flows added. See [`expand_into`](Self::expand_into) for the
    /// allocation-recycling contract.
    pub fn flows_on_into(
        &self,
        model: &ActivityModel<'_>,
        day: Day,
        include_benign: bool,
        arena: &mut arena::Arena<Flow>,
    ) -> usize {
        let before = arena.len();
        self.flows_on(model, day, include_benign, |f| {
            arena.alloc(f);
        });
        arena.len() - before
    }

    /// Generate all border flows for one day: hostile activity plus
    /// (optionally) benign clients.
    pub fn flows_on(
        &self,
        model: &ActivityModel<'_>,
        day: Day,
        include_benign: bool,
        mut sink: impl FnMut(Flow),
    ) {
        model.hostile_events_on(day, |e| self.expand(&e, &mut sink));
        if include_benign {
            model.benign_events_on(day, |e| self.expand(&e, &mut sink));
        }
    }
}

/// An ephemeral source port derived from a uniform draw.
fn ephemeral(u: f64) -> u16 {
    1024 + (u * (65_535.0 - 1024.0)) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_fixture() -> (ObservedNetwork, GeneratorConfig) {
        (ObservedNetwork::paper_default(), GeneratorConfig::default())
    }

    fn event(kind: ActivityKind) -> ActivityEvent {
        ActivityEvent {
            day: Day(273),
            src: "9.1.2.3".parse().expect("ok"),
            kind,
        }
    }

    fn expand_all(kind: ActivityKind) -> Vec<Flow> {
        let (net, cfg) = gen_fixture();
        let generator = FlowGenerator::new(&net, cfg, SeedTree::new(1));
        let mut batch = arena::Arena::with_chunk_capacity(64);
        let n = generator.expand_into(&event(kind), &mut batch);
        assert_eq!(n, batch.len(), "fresh arena holds exactly this batch");
        let via_arena: Vec<Flow> = batch.iter().copied().collect();
        let mut via_sink = Vec::new();
        generator.expand(&event(kind), |f| via_sink.push(f));
        assert_eq!(via_arena, via_sink, "arena batch mirrors the sink path");
        via_sink
    }

    #[test]
    fn arena_reset_recycles_capacity_across_batches() {
        let (net, cfg) = gen_fixture();
        let generator = FlowGenerator::new(&net, cfg, SeedTree::new(1));
        let mut batch = arena::Arena::with_chunk_capacity(64);
        generator.expand_into(&event(ActivityKind::Scan { targets: 150 }), &mut batch);
        let cap = batch.capacity();
        batch.reset();
        assert_eq!(batch.len(), 0);
        let n = generator.expand_into(&event(ActivityKind::Scan { targets: 150 }), &mut batch);
        assert!(n > 0);
        assert_eq!(batch.capacity(), cap, "reset keeps chunk capacity");
    }

    #[test]
    fn benign_flows_are_payload_bearing_service_traffic() {
        let flows = expand_all(ActivityKind::Benign { sessions: 4 });
        assert_eq!(flows.len(), 4);
        let (net, cfg) = gen_fixture();
        for f in &flows {
            assert!(f.payload_bearing(), "benign exchanges payload");
            assert!(net.contains(f.dst), "targets the observed network");
            assert!(cfg.benign_ports.contains(&f.dst_port));
            assert!(f.src_port >= 1024);
            assert_eq!(f.day(), Day(273));
        }
    }

    #[test]
    fn scan_flows_are_syn_only_within_one_hour() {
        let flows = expand_all(ActivityKind::Scan { targets: 150 });
        assert_eq!(flows.len(), 150);
        let hours: std::collections::HashSet<u32> = flows.iter().map(Flow::hour).collect();
        assert!(hours.len() <= 2, "sweep is hour-scale: {hours:?}");
        let ports: std::collections::HashSet<u16> = flows.iter().map(|f| f.dst_port).collect();
        assert_eq!(ports.len(), 1, "one port per sweep");
        let dsts: std::collections::HashSet<u32> = flows.iter().map(|f| f.dst.raw()).collect();
        assert!(dsts.len() > 140, "targets are distinct: {}", dsts.len());
        for f in &flows {
            assert!(!f.payload_bearing(), "SYN scans never bear payload");
            assert_eq!(f.flags, tcp_flags::SYN);
        }
        // The 36-byte option pitfall appears in roughly half the flows.
        let padded = flows.iter().filter(|f| f.payload_estimate() > 0).count();
        assert!(
            padded > 30 && padded < 120,
            "option padding present: {padded}"
        );
    }

    #[test]
    fn slow_scan_spreads_over_the_day() {
        let flows = expand_all(ActivityKind::SlowScan { targets: 20 });
        assert_eq!(flows.len(), 20);
        let hours: std::collections::HashSet<u32> = flows.iter().map(Flow::hour).collect();
        assert!(hours.len() >= 5, "slow scan spans the day: {hours:?}");
        assert!(flows.iter().all(|f| !f.payload_bearing()));
    }

    #[test]
    fn probes_are_ephemeral_to_ephemeral() {
        let flows = expand_all(ActivityKind::Probe);
        assert!(!flows.is_empty() && flows.len() <= 2);
        for f in &flows {
            assert!(f.ephemeral_to_ephemeral());
            assert!(!f.payload_bearing());
        }
    }

    #[test]
    fn spam_targets_mail_servers_with_payload() {
        let flows = expand_all(ActivityKind::Spam { messages: 30 });
        assert_eq!(flows.len(), 30);
        for f in &flows {
            assert_eq!(f.dst_port, 25);
            assert!(f.payload_bearing(), "SMTP carries payload");
        }
        let mxes: std::collections::HashSet<u32> = flows.iter().map(|f| f.dst.raw()).collect();
        assert!(mxes.len() <= 6, "bounded MX set");
    }

    #[test]
    fn spam_expansion_is_capped() {
        let flows = expand_all(ActivityKind::Spam { messages: 500 });
        assert_eq!(flows.len(), 60);
    }

    #[test]
    fn c2_produces_no_border_flows() {
        assert!(expand_all(ActivityKind::C2Checkin { channel: 3 }).is_empty());
    }

    #[test]
    fn expansion_is_deterministic() {
        let a = expand_all(ActivityKind::Scan { targets: 40 });
        let b = expand_all(ActivityKind::Scan { targets: 40 });
        assert_eq!(a, b);
    }

    #[test]
    fn server_addresses_are_inside_and_stable() {
        let (net, cfg) = gen_fixture();
        let generator = FlowGenerator::new(&net, cfg, SeedTree::new(2));
        for i in 0..100 {
            assert!(net.contains(generator.server_addr(i)));
            assert!(net.contains(generator.mail_addr(i)));
        }
        assert_eq!(generator.server_addr(3), generator.server_addr(3 + 48));
    }

    #[test]
    fn telemetry_counts_events_flows_and_truncation() {
        let (net, cfg) = gen_fixture();
        let registry = Registry::full();
        let mut generator = FlowGenerator::new(&net, cfg, SeedTree::new(1));
        generator.attach_telemetry(&registry);
        let mut n = 0usize;
        generator.expand(&event(ActivityKind::Scan { targets: 40 }), |_| n += 1);
        generator.expand(&event(ActivityKind::Spam { messages: 500 }), |_| n += 1);
        let snap = registry.snapshot();
        assert_eq!(snap.counters["flowgen.events_expanded"], 2);
        assert_eq!(snap.counters["flowgen.flows_generated"], n as u64);
        assert_eq!(snap.counters["flowgen.flows_generated"], 40 + 60);
        assert_eq!(
            snap.counters["flowgen.flows_truncated"], 440,
            "spam messages past the 60-flow cap"
        );
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let net = ObservedNetwork::paper_default();
        let cfg = GeneratorConfig {
            server_count: 0,
            ..GeneratorConfig::default()
        };
        let _ = FlowGenerator::new(&net, cfg, SeedTree::new(1));
    }
}
