//! The durable WAL spooler: live flows sealed into v2 indexed segments.
//!
//! A live collector cannot use [`crate::IndexedArchiveWriter`] directly:
//! that format's index lives in a footer written at `finish()`, so a
//! crash mid-day loses the *whole* spool's index. [`WalSpool`] splits the
//! archive into its two durability domains, one file each:
//!
//! ```text
//! spool-dir/
//!   segments.dat   append-only v2 segment data (varint-framed datagrams)
//!   index.wal      "UNCLWAL1" header, then one CRC'd record per *sealed*
//!                  segment — appended only after segments.dat is fsynced
//! ```
//!
//! The seal protocol is the WAL invariant: data fsync *then* index append
//! *then* index fsync. An index record therefore proves its segment is
//! durable. Recovery ([`WalSpool::open`]) replays `index.wal`, stops at
//! the first record that is torn or whose segment bytes fail their CRC,
//! quarantines everything past the sealed prefix into `torn_tail.bin`,
//! and resumes writing from the last sealed `end_seq` — a flow is never
//! double-counted and a torn tail is never silently dropped.
//!
//! [`WalSpool::sealed_image`] re-assembles the sealed prefix plus a
//! synthesized footer into a byte-exact v2 archive image, so the rescore
//! loop replays the WAL through the ordinary [`crate::IndexedArchive`]
//! readers (CRC checks, day-range selection, parallel replay) unchanged.

use crate::indexed::{crc32, ArchiveIndex, Crc32, SegmentInfo};
use crate::record::{encode_datagram_v2, get_uvarint, put_uvarint, unzigzag32, zigzag32};
use crate::record::{V5Header, V5Record, V5_MAX_RECORDS};
use crate::session::Flow;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use unclean_core::Day;
use unclean_telemetry::{Registry, TraceEvent, TraceKind};

/// Magic leading `index.wal`.
const WAL_MAGIC: &[u8; 8] = b"UNCLWAL1";

/// Data file name inside the spool directory.
pub const SEGMENTS_FILE: &str = "segments.dat";
/// Index WAL file name inside the spool directory.
pub const INDEX_FILE: &str = "index.wal";
/// Where a recovery quarantines torn tail bytes.
pub const TORN_TAIL_FILE: &str = "torn_tail.bin";

/// Errors surfaced by the spooler.
#[derive(Debug)]
pub enum SpoolError {
    /// Filesystem failure (including injected write faults / disk full).
    Io(io::Error),
    /// The WAL's own framing is unusable (bad magic/header).
    Corrupt(String),
}

impl std::fmt::Display for SpoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpoolError::Io(e) => write!(f, "spool I/O error: {e}"),
            SpoolError::Corrupt(msg) => write!(f, "spool corrupt: {msg}"),
        }
    }
}

impl std::error::Error for SpoolError {}

impl From<io::Error> for SpoolError {
    fn from(e: io::Error) -> SpoolError {
        SpoolError::Io(e)
    }
}

/// A durable position in the spool: everything up to here survives a
/// crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalCheckpoint {
    /// Sealed segments on disk.
    pub sealed_segments: usize,
    /// Sealed data bytes in `segments.dat`.
    pub sealed_bytes: u64,
    /// The sequence number the next sealed flow will carry.
    pub end_seq: u32,
    /// Flows inside sealed segments.
    pub sealed_flows: u64,
    /// Flows pushed but not yet sealed (lost if we crash now).
    pub unsealed_flows: u64,
}

/// What [`WalSpool::open`] found and did.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Intact sealed segments recovered.
    pub sealed_segments: usize,
    /// Flows inside them.
    pub sealed_flows: u64,
    /// The sequence number writing resumes from.
    pub resumed_end_seq: u32,
    /// Data bytes past the sealed prefix, moved to `torn_tail.bin`.
    pub torn_tail_bytes: u64,
    /// Trailing `index.wal` bytes discarded (a torn index append, or
    /// records whose segment bytes failed their CRC).
    pub torn_index_bytes: u64,
}

/// Injectable fault hook: called before every data-file write with the
/// cumulative bytes already written and the size about to be written;
/// returning an error aborts the write — a crash or a full disk,
/// on demand, at byte granularity.
pub type WriteFault = Box<dyn FnMut(u64, usize) -> io::Result<()> + Send>;

/// In-progress state of the segment being written (mirrors the indexed
/// writer's `OpenSegment`).
#[derive(Debug)]
struct OpenSegment {
    day: Day,
    start: u64,
    datagrams: u64,
    flows: u64,
    first_seq: u32,
    crc: Crc32,
}

/// The WAL-style durable spooler.
pub struct WalSpool {
    dir: PathBuf,
    data: File,
    index: File,
    boot_unix_secs: u32,
    pending: Vec<V5Record>,
    sequence: u32,
    /// Total data bytes written (sealed + unsealed).
    offset: u64,
    sealed: Vec<SegmentInfo>,
    sealed_bytes: u64,
    open: Option<OpenSegment>,
    body: Vec<u8>,
    frame_len: Vec<u8>,
    written_total: u64,
    fault: Option<WriteFault>,
    telemetry: Registry,
}

impl std::fmt::Debug for WalSpool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalSpool")
            .field("dir", &self.dir)
            .field("sealed_segments", &self.sealed.len())
            .field("sealed_bytes", &self.sealed_bytes)
            .field("sequence", &self.sequence)
            .finish_non_exhaustive()
    }
}

impl WalSpool {
    /// Create a fresh spool in `dir` (created if missing; existing spool
    /// files are truncated).
    pub fn create(dir: &Path, boot_unix_secs: u32) -> Result<WalSpool, SpoolError> {
        std::fs::create_dir_all(dir)?;
        let data = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(dir.join(SEGMENTS_FILE))?;
        let mut index = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(dir.join(INDEX_FILE))?;
        let mut header = Vec::with_capacity(16);
        header.extend_from_slice(WAL_MAGIC);
        put_uvarint(&mut header, u64::from(boot_unix_secs));
        index.write_all(&header)?;
        index.sync_all()?;
        Ok(WalSpool {
            dir: dir.to_path_buf(),
            data,
            index,
            boot_unix_secs,
            pending: Vec::with_capacity(V5_MAX_RECORDS),
            sequence: 0,
            offset: 0,
            sealed: Vec::new(),
            sealed_bytes: 0,
            open: None,
            body: Vec::new(),
            frame_len: Vec::new(),
            written_total: 0,
            fault: None,
            telemetry: Registry::off(),
        })
    }

    /// Reopen an existing spool, recovering the sealed prefix: index
    /// records are replayed until one is torn or its segment bytes fail
    /// their CRC; everything past the sealed prefix is quarantined into
    /// `torn_tail.bin` and both files are truncated back to durable
    /// state. Writing resumes from the last sealed `end_seq`.
    pub fn open(dir: &Path) -> Result<(WalSpool, RecoveryReport), SpoolError> {
        let index_path = dir.join(INDEX_FILE);
        let data_path = dir.join(SEGMENTS_FILE);
        let index_bytes = std::fs::read(&index_path)?;
        if index_bytes.len() < WAL_MAGIC.len() || &index_bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Err(SpoolError::Corrupt(format!(
                "{} lacks the WAL magic",
                index_path.display()
            )));
        }
        let mut pos = WAL_MAGIC.len();
        let boot_unix_secs = u32::try_from(
            get_uvarint(&index_bytes, &mut pos)
                .map_err(|e| SpoolError::Corrupt(format!("WAL header: {e}")))?,
        )
        .map_err(|_| SpoolError::Corrupt("WAL boot anchor overflows u32".to_string()))?;

        let mut data = OpenOptions::new().read(true).write(true).open(&data_path)?;
        let data_len = data.metadata()?.len();

        // Replay index records until one is torn, inconsistent, or its
        // segment bytes are not durably intact.
        let mut sealed: Vec<SegmentInfo> = Vec::new();
        let mut expected_offset = 0u64;
        let mut valid_index_end = pos;
        let mut segment_buf = Vec::new();
        while let Some(info) = parse_index_record(&index_bytes, &mut pos) {
            if info.offset != expected_offset {
                break;
            }
            let end = info.offset.saturating_add(info.len);
            if end > data_len {
                break;
            }
            // CRC the segment's bytes straight off disk.
            segment_buf.resize(info.len as usize, 0);
            data.seek(SeekFrom::Start(info.offset))?;
            if data.read_exact(&mut segment_buf).is_err() {
                break;
            }
            if crc32(&segment_buf) != info.crc {
                break;
            }
            if let Some(prev) = sealed.last() {
                if info.first_seq != prev.end_seq {
                    break;
                }
            }
            expected_offset = end;
            valid_index_end = pos;
            sealed.push(info);
        }

        // Quarantine whatever data lies past the sealed prefix, then
        // truncate both files back to the durable state.
        let sealed_bytes = expected_offset;
        let torn_tail_bytes = data_len.saturating_sub(sealed_bytes);
        if torn_tail_bytes > 0 {
            let mut tail = vec![0u8; torn_tail_bytes as usize];
            data.seek(SeekFrom::Start(sealed_bytes))?;
            data.read_exact(&mut tail)?;
            std::fs::write(dir.join(TORN_TAIL_FILE), &tail)?;
        }
        data.set_len(sealed_bytes)?;
        data.sync_all()?;
        let torn_index_bytes = (index_bytes.len() - valid_index_end) as u64;
        let index = OpenOptions::new().write(true).open(&index_path)?;
        index.set_len(valid_index_end as u64)?;
        index.sync_all()?;
        let mut index = index;
        index.seek(SeekFrom::End(0))?;
        data.seek(SeekFrom::End(0))?;

        let report = RecoveryReport {
            sealed_segments: sealed.len(),
            sealed_flows: sealed.iter().map(|s| s.flows).sum(),
            resumed_end_seq: sealed.last().map_or(0, |s| s.end_seq),
            torn_tail_bytes,
            torn_index_bytes,
        };
        let spool = WalSpool {
            dir: dir.to_path_buf(),
            data,
            index,
            boot_unix_secs,
            pending: Vec::with_capacity(V5_MAX_RECORDS),
            sequence: report.resumed_end_seq,
            offset: sealed_bytes,
            sealed_bytes,
            sealed,
            open: None,
            body: Vec::new(),
            frame_len: Vec::new(),
            written_total: 0,
            fault: None,
            telemetry: Registry::off(),
        };
        Ok((spool, report))
    }

    /// Install a fault hook on the data path (see [`WriteFault`]) — the
    /// injectable spool writer the crash-recovery tests drive.
    pub fn set_write_fault(&mut self, fault: WriteFault) {
        self.fault = Some(fault);
    }

    /// Attach a telemetry registry: every durable seal from here on
    /// emits a [`TraceKind::WalSeal`] event (carrying the segment's flow
    /// sequence range) onto the registry's trace ring, if one is
    /// installed — the WAL link in the flow→blocklist lineage chain.
    pub fn attach_telemetry(&mut self, registry: &Registry) {
        self.telemetry = registry.clone();
    }

    /// The sequence number the next pushed flow will eventually carry
    /// (pending, unflushed flows included). Bracketing a push batch with
    /// two calls yields the batch's exclusive-end WAL sequence range —
    /// the causal id an ingest-batch trace event carries.
    pub fn next_seq(&self) -> u32 {
        self.sequence.wrapping_add(self.pending.len() as u32)
    }

    /// The exporter boot anchor flows are encoded against.
    pub fn boot_unix_secs(&self) -> u32 {
        self.boot_unix_secs
    }

    /// The spool directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Sealed-segment index entries, in seal order.
    pub fn sealed_segments(&self) -> &[SegmentInfo] {
        &self.sealed
    }

    /// Where the spool stands.
    pub fn checkpoint(&self) -> WalCheckpoint {
        let open_flows = self.open.as_ref().map_or(0, |o| o.flows);
        WalCheckpoint {
            sealed_segments: self.sealed.len(),
            sealed_bytes: self.sealed_bytes,
            end_seq: self.sealed.last().map_or(0, |s| s.end_seq),
            sealed_flows: self.sealed.iter().map(|s| s.flows).sum(),
            unsealed_flows: open_flows + self.pending.len() as u64,
        }
    }

    fn write_data(&mut self, bytes: &[u8]) -> io::Result<()> {
        if let Some(fault) = self.fault.as_mut() {
            fault(self.written_total, bytes.len())?;
        }
        self.data.write_all(bytes)?;
        self.written_total += bytes.len() as u64;
        Ok(())
    }

    /// Queue one flow. A day change seals the current segment durably;
    /// 30 queued records flush a datagram to the data file.
    pub fn push(&mut self, flow: &Flow) -> Result<(), SpoolError> {
        let day = flow.day();
        if self.open.as_ref().is_some_and(|s| s.day != day) {
            self.seal()?;
        }
        if self.open.is_none() {
            self.open = Some(OpenSegment {
                day,
                start: self.offset,
                datagrams: 0,
                flows: 0,
                first_seq: self.sequence,
                crc: Crc32::new(),
            });
        }
        self.pending.push(flow.to_v5(self.boot_unix_secs));
        if self.pending.len() == V5_MAX_RECORDS {
            self.flush_datagram()?;
        }
        Ok(())
    }

    /// Flush any partial datagram into the open segment (data file only —
    /// not yet durable; see [`WalSpool::seal`]).
    pub fn flush_datagram(&mut self) -> Result<(), SpoolError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let header = V5Header {
            count: self.pending.len() as u16,
            sys_uptime_ms: 0,
            unix_secs: self.boot_unix_secs,
            unix_nsecs: 0,
            flow_sequence: self.sequence,
            engine_type: 0,
            engine_id: 0,
            sampling_interval: 0,
        };
        self.body.clear();
        let pending = std::mem::take(&mut self.pending);
        encode_datagram_v2(&header, &pending, &mut self.body);
        self.frame_len.clear();
        put_uvarint(&mut self.frame_len, self.body.len() as u64);
        let frame = std::mem::take(&mut self.frame_len);
        let body = std::mem::take(&mut self.body);
        let write = self
            .write_data(&frame)
            .and_then(|()| self.write_data(&body));
        let open = self
            .open
            .as_mut()
            .expect("pending records imply an open segment");
        if let Err(e) = write {
            // The data file may now hold a torn frame; the segment can
            // never seal. Recovery will quarantine it.
            self.frame_len = frame;
            self.body = body;
            self.pending = pending;
            return Err(SpoolError::Io(e));
        }
        open.crc.update(&frame);
        open.crc.update(&body);
        self.offset += (frame.len() + body.len()) as u64;
        open.datagrams += 1;
        open.flows += pending.len() as u64;
        self.sequence = self.sequence.wrapping_add(pending.len() as u32);
        self.frame_len = frame;
        self.body = body;
        self.pending = pending;
        self.pending.clear();
        Ok(())
    }

    /// Seal the open segment durably: flush the partial datagram, fsync
    /// the data file, append the segment's index record, fsync the index.
    /// Returns the sealed entry (`None` when there was nothing to seal).
    pub fn seal(&mut self) -> Result<Option<SegmentInfo>, SpoolError> {
        self.flush_datagram()?;
        let Some(open) = self.open.take() else {
            return Ok(None);
        };
        if open.flows == 0 {
            return Ok(None);
        }
        let info = SegmentInfo {
            day: open.day,
            offset: open.start,
            len: self.offset - open.start,
            datagrams: open.datagrams,
            flows: open.flows,
            first_seq: open.first_seq,
            end_seq: self.sequence,
            crc: open.crc.finish(),
        };
        // WAL invariant: the data must be durable before the index record
        // that vouches for it exists.
        self.data.sync_all()?;
        let mut record = Vec::with_capacity(64);
        encode_index_record(&info, &mut record);
        self.index.write_all(&record)?;
        self.index.sync_all()?;
        self.sealed_bytes = self.offset;
        self.sealed.push(info);
        self.telemetry.trace_event(
            TraceEvent::now(TraceKind::WalSeal)
                .seq_range(u64::from(info.first_seq), u64::from(info.end_seq))
                .field("day", info.day)
                .field("flows", info.flows)
                .field("datagrams", info.datagrams)
                .field("bytes", info.len),
        );
        Ok(Some(info))
    }

    /// Assemble the sealed prefix into a complete, self-contained v2
    /// archive image (data + synthesized footer + trailer) — byte-exact
    /// what `IndexedArchiveWriter` would have produced for the same
    /// flows, ready for [`crate::IndexedArchive::open`].
    pub fn sealed_image(&self) -> Result<Vec<u8>, SpoolError> {
        let mut file = File::open(self.dir.join(SEGMENTS_FILE))?;
        let mut data = vec![0u8; self.sealed_bytes as usize];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut data)?;
        let index = ArchiveIndex {
            boot_unix_secs: self.boot_unix_secs,
            segments: self.sealed.clone(),
        };
        index.seal_image(&mut data);
        Ok(data)
    }
}

/// Serialize one sealed-segment record: varint fields, the segment CRC,
/// then a CRC over the record itself, all behind a varint length so a
/// torn append is detectable.
fn encode_index_record(info: &SegmentInfo, out: &mut Vec<u8>) {
    let mut body = Vec::with_capacity(48);
    put_uvarint(&mut body, zigzag32(info.day.0));
    put_uvarint(&mut body, info.offset);
    put_uvarint(&mut body, info.len);
    put_uvarint(&mut body, info.datagrams);
    put_uvarint(&mut body, info.flows);
    put_uvarint(&mut body, u64::from(info.first_seq));
    put_uvarint(&mut body, u64::from(info.end_seq));
    body.extend_from_slice(&info.crc.to_le_bytes());
    body.extend_from_slice(&crc32(&body).to_le_bytes());
    put_uvarint(out, body.len() as u64);
    out.extend_from_slice(&body);
}

/// Parse one index record at `*pos`; `None` when the bytes are exhausted,
/// torn, or fail the record CRC (recovery stops there).
fn parse_index_record(bytes: &[u8], pos: &mut usize) -> Option<SegmentInfo> {
    if *pos == bytes.len() {
        return None;
    }
    let mut p = *pos;
    let len = get_uvarint(bytes, &mut p).ok()? as usize;
    let body = bytes.get(p..p.checked_add(len)?)?;
    if len < 8 {
        return None;
    }
    let (fields, crc_bytes) = body.split_at(len - 4);
    let record_crc = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    if crc32(fields) != record_crc {
        return None;
    }
    let mut fp = 0usize;
    let day = Day(unzigzag32(get_uvarint(fields, &mut fp).ok()?).ok()?);
    let offset = get_uvarint(fields, &mut fp).ok()?;
    let seg_len = get_uvarint(fields, &mut fp).ok()?;
    let datagrams = get_uvarint(fields, &mut fp).ok()?;
    let flows = get_uvarint(fields, &mut fp).ok()?;
    let first_seq = u32::try_from(get_uvarint(fields, &mut fp).ok()?).ok()?;
    let end_seq = u32::try_from(get_uvarint(fields, &mut fp).ok()?).ok()?;
    let seg_crc_bytes = fields.get(fp..fp + 4)?;
    if fp + 4 != fields.len() {
        return None;
    }
    let crc = u32::from_le_bytes([
        seg_crc_bytes[0],
        seg_crc_bytes[1],
        seg_crc_bytes[2],
        seg_crc_bytes[3],
    ]);
    *pos = p + len;
    Some(SegmentInfo {
        day,
        offset,
        len: seg_len,
        datagrams,
        flows,
        first_seq,
        end_seq,
        crc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indexed::{IndexedArchive, IndexedArchiveWriter};
    use crate::record::{proto, tcp_flags, EPOCH_UNIX_SECS};
    use unclean_core::Ip;

    fn boot() -> u32 {
        EPOCH_UNIX_SECS
    }

    fn flow(day: u32, i: u32) -> Flow {
        Flow {
            src: Ip(0x0901_0000 + i),
            dst: Ip(0x1e00_0001),
            src_port: 40_000,
            dst_port: 445,
            proto: proto::TCP,
            packets: 1,
            octets: 40,
            flags: tcp_flags::SYN,
            start_secs: i64::from(day) * 86_400 + i64::from(i),
            duration_secs: 0,
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("unclean-wal-spool")
            .join(format!("{name}-{:?}", std::thread::current().id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn sealed_image_is_byte_identical_to_indexed_writer() {
        let dir = tmp_dir("image");
        let mut spool = WalSpool::create(&dir, boot()).expect("create");
        let mut reference = IndexedArchiveWriter::new(Vec::new(), boot());
        for day in 0..3 {
            for i in 0..77u32 {
                let f = flow(day, i);
                spool.push(&f).expect("push");
                reference.push(&f).expect("push");
            }
        }
        spool.seal().expect("seal");
        let (expected, _) = reference.finish().expect("finish");
        let image = spool.sealed_image().expect("image");
        assert_eq!(image, expected, "WAL assembles the exact v2 image");
        let archive = IndexedArchive::open(&image).expect("parse").expect("v2");
        assert_eq!(archive.index().total_flows(), 231);
    }

    #[test]
    fn reopen_resumes_from_sealed_state() {
        let dir = tmp_dir("resume");
        let mut spool = WalSpool::create(&dir, boot()).expect("create");
        for i in 0..100u32 {
            spool.push(&flow(0, i)).expect("push");
        }
        spool.seal().expect("seal");
        let cp = spool.checkpoint();
        assert_eq!(cp.sealed_flows, 100);
        assert_eq!(cp.end_seq, 100);
        drop(spool);

        let (mut spool, report) = WalSpool::open(&dir).expect("reopen");
        assert_eq!(report.sealed_segments, 1);
        assert_eq!(report.sealed_flows, 100);
        assert_eq!(report.resumed_end_seq, 100);
        assert_eq!(report.torn_tail_bytes, 0);
        // Resumed writes continue the sequence space with no overlap.
        for i in 0..50u32 {
            spool.push(&flow(1, i)).expect("push");
        }
        spool.seal().expect("seal");
        let segs = spool.sealed_segments();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[1].first_seq, 100);
        assert_eq!(segs[1].end_seq, 150);
        let image = spool.sealed_image().expect("image");
        let archive = IndexedArchive::open(&image).expect("parse").expect("v2");
        let (flows, t) = archive.read_day_range(None).expect("read");
        assert_eq!(flows.len(), 150);
        assert_eq!(t.lost_flows, 0);
        assert_eq!(t.duplicates, 0);
    }

    #[test]
    fn torn_tail_is_quarantined_and_sealed_prefix_survives() {
        let dir = tmp_dir("torn");
        let mut spool = WalSpool::create(&dir, boot()).expect("create");
        for i in 0..60u32 {
            spool.push(&flow(0, i)).expect("push");
        }
        spool.seal().expect("seal");
        let sealed_image = spool.sealed_image().expect("image");
        // More flows spooled but never sealed — then "crash".
        for i in 0..45u32 {
            spool.push(&flow(1, i)).expect("push");
        }
        spool.flush_datagram().expect("flush");
        drop(spool);

        let (spool, report) = WalSpool::open(&dir).expect("recover");
        assert_eq!(report.sealed_segments, 1);
        assert_eq!(report.sealed_flows, 60);
        assert_eq!(report.resumed_end_seq, 60);
        assert!(report.torn_tail_bytes > 0, "unsealed day-1 bytes");
        let tail = std::fs::read(dir.join(TORN_TAIL_FILE)).expect("quarantine file");
        assert_eq!(tail.len() as u64, report.torn_tail_bytes);
        // The recovered archive equals the uninterrupted sealed prefix,
        // byte for byte.
        assert_eq!(spool.sealed_image().expect("image"), sealed_image);
    }

    #[test]
    fn torn_index_append_is_discarded() {
        let dir = tmp_dir("torn-index");
        let mut spool = WalSpool::create(&dir, boot()).expect("create");
        for i in 0..30u32 {
            spool.push(&flow(0, i)).expect("push");
        }
        spool.seal().expect("seal");
        drop(spool);
        // Append half an index record: a crash mid-append.
        let mut index = OpenOptions::new()
            .append(true)
            .open(dir.join(INDEX_FILE))
            .expect("open index");
        index.write_all(&[17, 1, 2, 3]).expect("torn append");
        drop(index);
        let (_, report) = WalSpool::open(&dir).expect("recover");
        assert_eq!(report.sealed_segments, 1);
        assert_eq!(report.torn_index_bytes, 4);
    }

    #[test]
    fn write_fault_surfaces_and_recovery_matches_uninterrupted_run() {
        let dir = tmp_dir("fault");
        // Uninterrupted reference: the first 90 flows, sealed.
        let ref_dir = tmp_dir("fault-ref");
        let mut reference = WalSpool::create(&ref_dir, boot()).expect("create");
        for i in 0..90u32 {
            reference.push(&flow(0, i)).expect("push");
        }
        reference.seal().expect("seal");
        let reference_image = reference.sealed_image().expect("image");

        let mut spool = WalSpool::create(&dir, boot()).expect("create");
        for i in 0..90u32 {
            spool.push(&flow(0, i)).expect("push");
        }
        spool.seal().expect("seal");
        let sealed_so_far = spool.checkpoint().sealed_bytes;
        // Fail after ~64 more data bytes: mid-segment, like a yanked disk.
        spool.set_write_fault(Box::new(move |written, _| {
            if written >= sealed_so_far + 64 {
                Err(io::Error::new(io::ErrorKind::StorageFull, "disk full"))
            } else {
                Ok(())
            }
        }));
        let mut failed = false;
        for i in 0..600u32 {
            if spool.push(&flow(0, 90 + i)).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "the injected fault fired");
        // Sealing now must fail too (flushing the pending datagram hits
        // the same full disk) — the error path is loud, not silent.
        assert!(matches!(spool.seal(), Err(SpoolError::Io(_))));
        drop(spool);

        let (spool, report) = WalSpool::open(&dir).expect("recover");
        assert_eq!(report.sealed_segments, 1);
        assert_eq!(report.sealed_flows, 90);
        assert!(report.torn_tail_bytes > 0, "the torn mid-segment bytes");
        assert_eq!(
            spool.sealed_image().expect("image"),
            reference_image,
            "recovered flow set == sealed prefix of an uninterrupted run"
        );
    }

    #[test]
    fn recovery_rejects_flipped_data_bytes() {
        let dir = tmp_dir("bitrot");
        let mut spool = WalSpool::create(&dir, boot()).expect("create");
        for day in 0..2 {
            for i in 0..40u32 {
                spool.push(&flow(day, i)).expect("push");
            }
        }
        spool.seal().expect("seal");
        drop(spool);
        // Flip a byte inside the *second* sealed segment.
        let data_path = dir.join(SEGMENTS_FILE);
        let mut bytes = std::fs::read(&data_path).expect("read");
        let seg2_mid = bytes.len() - 10;
        bytes[seg2_mid] ^= 0x40;
        std::fs::write(&data_path, &bytes).expect("write");
        let (_, report) = WalSpool::open(&dir).expect("recover");
        assert_eq!(
            report.sealed_segments, 1,
            "the damaged segment and everything after it is quarantined"
        );
        assert!(report.torn_tail_bytes > 0);
        assert!(report.torn_index_bytes > 0, "its index record too");
    }

    #[test]
    fn empty_spool_recovers_empty() {
        let dir = tmp_dir("empty");
        let spool = WalSpool::create(&dir, boot()).expect("create");
        drop(spool);
        let (spool, report) = WalSpool::open(&dir).expect("recover");
        assert_eq!(report, RecoveryReport::default());
        assert_eq!(spool.checkpoint(), WalCheckpoint::default());
    }
}
