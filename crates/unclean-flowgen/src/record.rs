//! Cisco NetFlow V5 wire format.
//!
//! §6.1: "The traffic data used in this analysis consists of CISCO NetFlow
//! V5 records. NetFlow records are a representation of approximate sessions
//! consisting of a log of all identically addressed packets within a
//! limited time. Flow records are a compact representation of traffic, but
//! do not contain payload."
//!
//! This module implements the actual V5 export datagram layout — a 24-byte
//! header followed by up to 30 48-byte flow records — so that synthetic
//! traffic can round-trip through the same representation an operational
//! collector would store.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// NetFlow V5 protocol version constant.
pub const V5_VERSION: u16 = 5;
/// Size of the export header in bytes.
pub const V5_HEADER_LEN: usize = 24;
/// Size of one flow record in bytes.
pub const V5_RECORD_LEN: usize = 48;
/// Maximum records per datagram, per the Cisco specification.
pub const V5_MAX_RECORDS: usize = 30;

/// Unix timestamp of the scenario epoch, 2006-01-01T00:00:00Z.
pub const EPOCH_UNIX_SECS: u32 = 1_136_073_600;

/// TCP flag bits as they appear in the `tcp_flags` record field.
pub mod tcp_flags {
    /// FIN.
    pub const FIN: u8 = 0x01;
    /// SYN.
    pub const SYN: u8 = 0x02;
    /// RST.
    pub const RST: u8 = 0x04;
    /// PSH.
    pub const PSH: u8 = 0x08;
    /// ACK.
    pub const ACK: u8 = 0x10;
    /// URG.
    pub const URG: u8 = 0x20;
}

/// IP protocol numbers used by the generator.
pub mod proto {
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
    /// ICMP.
    pub const ICMP: u8 = 1;
}

/// The V5 export header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct V5Header {
    /// Record count in this datagram (1–30).
    pub count: u16,
    /// Milliseconds since the exporting device booted.
    pub sys_uptime_ms: u32,
    /// Export time, Unix seconds.
    pub unix_secs: u32,
    /// Export time, residual nanoseconds.
    pub unix_nsecs: u32,
    /// Total flows seen by the exporter (sequence number).
    pub flow_sequence: u32,
    /// Exporter engine type.
    pub engine_type: u8,
    /// Exporter engine slot.
    pub engine_id: u8,
    /// Sampling mode and interval.
    pub sampling_interval: u16,
}

/// One V5 flow record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct V5Record {
    /// Source IPv4 address.
    pub srcaddr: u32,
    /// Destination IPv4 address.
    pub dstaddr: u32,
    /// Next-hop router address.
    pub nexthop: u32,
    /// SNMP input interface index.
    pub input: u16,
    /// SNMP output interface index.
    pub output: u16,
    /// Packets in the flow.
    pub d_pkts: u32,
    /// Total layer-3 octets in the flow.
    pub d_octets: u32,
    /// SysUptime at flow start (ms).
    pub first: u32,
    /// SysUptime at flow end (ms).
    pub last: u32,
    /// Source port.
    pub srcport: u16,
    /// Destination port.
    pub dstport: u16,
    /// Cumulative OR of TCP flags.
    pub tcp_flags: u8,
    /// IP protocol.
    pub prot: u8,
    /// Type of service.
    pub tos: u8,
    /// Source AS number.
    pub src_as: u16,
    /// Destination AS number.
    pub dst_as: u16,
    /// Source prefix mask bits.
    pub src_mask: u8,
    /// Destination prefix mask bits.
    pub dst_mask: u8,
}

/// Errors from decoding a V5 datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input shorter than a header.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// Version field was not 5.
    BadVersion(u16),
    /// Record count outside 1..=30 or inconsistent with the payload size.
    BadCount(u16),
    /// A varint ran past 10 bytes or overflowed 64 bits (v2 framing).
    BadVarint,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { needed, got } => {
                write!(f, "truncated datagram: need {needed} bytes, have {got}")
            }
            DecodeError::BadVersion(v) => write!(f, "not a NetFlow V5 datagram (version {v})"),
            DecodeError::BadCount(c) => write!(f, "invalid record count {c}"),
            DecodeError::BadVarint => write!(f, "malformed varint"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encode a header + records into one export datagram.
///
/// Panics if `records` is empty or exceeds [`V5_MAX_RECORDS`], or if
/// `header.count` disagrees with `records.len()`.
pub fn encode_datagram(header: &V5Header, records: &[V5Record]) -> Bytes {
    assert!(
        !records.is_empty() && records.len() <= V5_MAX_RECORDS,
        "V5 datagrams carry 1..=30 records, got {}",
        records.len()
    );
    assert_eq!(
        header.count as usize,
        records.len(),
        "header count mismatch"
    );
    let mut buf = BytesMut::with_capacity(V5_HEADER_LEN + records.len() * V5_RECORD_LEN);
    buf.put_u16(V5_VERSION);
    buf.put_u16(header.count);
    buf.put_u32(header.sys_uptime_ms);
    buf.put_u32(header.unix_secs);
    buf.put_u32(header.unix_nsecs);
    buf.put_u32(header.flow_sequence);
    buf.put_u8(header.engine_type);
    buf.put_u8(header.engine_id);
    buf.put_u16(header.sampling_interval);
    for r in records {
        buf.put_u32(r.srcaddr);
        buf.put_u32(r.dstaddr);
        buf.put_u32(r.nexthop);
        buf.put_u16(r.input);
        buf.put_u16(r.output);
        buf.put_u32(r.d_pkts);
        buf.put_u32(r.d_octets);
        buf.put_u32(r.first);
        buf.put_u32(r.last);
        buf.put_u16(r.srcport);
        buf.put_u16(r.dstport);
        buf.put_u8(0); // pad1
        buf.put_u8(r.tcp_flags);
        buf.put_u8(r.prot);
        buf.put_u8(r.tos);
        buf.put_u16(r.src_as);
        buf.put_u16(r.dst_as);
        buf.put_u8(r.src_mask);
        buf.put_u8(r.dst_mask);
        buf.put_u16(0); // pad2
    }
    buf.freeze()
}

/// Decode one export datagram.
pub fn decode_datagram(mut data: &[u8]) -> Result<(V5Header, Vec<V5Record>), DecodeError> {
    if data.len() < V5_HEADER_LEN {
        return Err(DecodeError::Truncated {
            needed: V5_HEADER_LEN,
            got: data.len(),
        });
    }
    let version = data.get_u16();
    if version != V5_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let count = data.get_u16();
    if count == 0 || count as usize > V5_MAX_RECORDS {
        return Err(DecodeError::BadCount(count));
    }
    let header = V5Header {
        count,
        sys_uptime_ms: data.get_u32(),
        unix_secs: data.get_u32(),
        unix_nsecs: data.get_u32(),
        flow_sequence: data.get_u32(),
        engine_type: data.get_u8(),
        engine_id: data.get_u8(),
        sampling_interval: data.get_u16(),
    };
    let needed = count as usize * V5_RECORD_LEN;
    if data.len() < needed {
        return Err(DecodeError::Truncated {
            needed: V5_HEADER_LEN + needed,
            got: V5_HEADER_LEN + data.len(),
        });
    }
    let mut records = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let srcaddr = data.get_u32();
        let dstaddr = data.get_u32();
        let nexthop = data.get_u32();
        let input = data.get_u16();
        let output = data.get_u16();
        let d_pkts = data.get_u32();
        let d_octets = data.get_u32();
        let first = data.get_u32();
        let last = data.get_u32();
        let srcport = data.get_u16();
        let dstport = data.get_u16();
        let _pad1 = data.get_u8();
        let tcp_flags = data.get_u8();
        let prot = data.get_u8();
        let tos = data.get_u8();
        let src_as = data.get_u16();
        let dst_as = data.get_u16();
        let src_mask = data.get_u8();
        let dst_mask = data.get_u8();
        let _pad2 = data.get_u16();
        records.push(V5Record {
            srcaddr,
            dstaddr,
            nexthop,
            input,
            output,
            d_pkts,
            d_octets,
            first,
            last,
            srcport,
            dstport,
            tcp_flags,
            prot,
            tos,
            src_as,
            dst_as,
            src_mask,
            dst_mask,
        });
    }
    Ok((header, records))
}

/// Append `v` as an LEB128 varint (7 bits per byte, high bit = continue).
#[inline]
pub fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read an LEB128 varint from `data` at `*pos`, advancing `*pos`.
#[inline]
pub fn get_uvarint(data: &[u8], pos: &mut usize) -> Result<u64, DecodeError> {
    // Single-byte fast path: the dominant case for delta-encoded fields.
    if let Some(&byte) = data.get(*pos) {
        if byte & 0x80 == 0 {
            *pos += 1;
            return Ok(u64::from(byte));
        }
    }
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = data.get(*pos) else {
            return Err(DecodeError::Truncated {
                needed: *pos + 1,
                got: data.len(),
            });
        };
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(DecodeError::BadVarint);
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(DecodeError::BadVarint);
        }
    }
}

/// Zigzag-map a signed 32-bit delta so small magnitudes of either sign
/// varint-encode short.
#[inline]
pub fn zigzag32(v: i32) -> u64 {
    (((v << 1) ^ (v >> 31)) as u32) as u64
}

/// Inverse of [`zigzag32`]; errors if the value does not fit 32 bits.
#[inline]
pub fn unzigzag32(v: u64) -> Result<i32, DecodeError> {
    let v = u32::try_from(v).map_err(|_| DecodeError::BadVarint)?;
    Ok(((v >> 1) as i32) ^ -((v & 1) as i32))
}

/// Delta of `cur` against `prev` on the u32 circle, zigzagged so the
/// common close-together case stays short and the wrap case stays exact.
#[inline]
fn delta32(cur: u32, prev: u32) -> u64 {
    zigzag32(cur.wrapping_sub(prev) as i32)
}

/// Apply an encoded [`delta32`] to `prev`.
#[inline]
fn apply_delta32(prev: u32, encoded: u64) -> Result<u32, DecodeError> {
    Ok(prev.wrapping_add(unzigzag32(encoded)? as u32))
}

/// Encode a header + records as a **v2 compressed datagram body** (no
/// frame length — the segment writer prepends a varint frame).
///
/// Every u32 field is a zigzag varint delta against the previous record
/// (the first record deltas against an all-zero record), which is where
/// the compression comes from: consecutive records in a datagram share
/// address prefixes and near-identical timestamps. `last` is carried as a
/// delta against the record's own `first` (the flow duration). u16 fields
/// are plain varints and u8 fields raw bytes.
///
/// Panics under the same preconditions as [`encode_datagram`].
pub fn encode_datagram_v2(header: &V5Header, records: &[V5Record], out: &mut Vec<u8>) {
    assert!(
        !records.is_empty() && records.len() <= V5_MAX_RECORDS,
        "V5 datagrams carry 1..=30 records, got {}",
        records.len()
    );
    assert_eq!(
        header.count as usize,
        records.len(),
        "header count mismatch"
    );
    put_uvarint(out, u64::from(header.count));
    put_uvarint(out, u64::from(header.sys_uptime_ms));
    put_uvarint(out, u64::from(header.unix_secs));
    put_uvarint(out, u64::from(header.unix_nsecs));
    put_uvarint(out, u64::from(header.flow_sequence));
    out.push(header.engine_type);
    out.push(header.engine_id);
    put_uvarint(out, u64::from(header.sampling_interval));
    let mut prev = V5Record::default();
    for r in records {
        put_uvarint(out, delta32(r.srcaddr, prev.srcaddr));
        put_uvarint(out, delta32(r.dstaddr, prev.dstaddr));
        put_uvarint(out, delta32(r.nexthop, prev.nexthop));
        put_uvarint(out, u64::from(r.input));
        put_uvarint(out, u64::from(r.output));
        put_uvarint(out, delta32(r.d_pkts, prev.d_pkts));
        put_uvarint(out, delta32(r.d_octets, prev.d_octets));
        put_uvarint(out, delta32(r.first, prev.first));
        put_uvarint(out, delta32(r.last, r.first));
        put_uvarint(out, u64::from(r.srcport));
        put_uvarint(out, u64::from(r.dstport));
        out.push(r.tcp_flags);
        out.push(r.prot);
        out.push(r.tos);
        put_uvarint(out, u64::from(r.src_as));
        put_uvarint(out, u64::from(r.dst_as));
        out.push(r.src_mask);
        out.push(r.dst_mask);
        prev = *r;
    }
}

/// Decode the v2 datagram header at `*pos`, leaving `*pos` on the first
/// record. Use a [`V2RecordCursor`] over the same slice to walk records.
pub fn decode_header_v2(data: &[u8], pos: &mut usize) -> Result<V5Header, DecodeError> {
    let count_raw = get_uvarint(data, pos)?;
    let count = u16::try_from(count_raw).map_err(|_| DecodeError::BadCount(u16::MAX))?;
    if count == 0 || count as usize > V5_MAX_RECORDS {
        return Err(DecodeError::BadCount(count));
    }
    let read_u32 = |data: &[u8], pos: &mut usize| -> Result<u32, DecodeError> {
        u32::try_from(get_uvarint(data, pos)?).map_err(|_| DecodeError::BadVarint)
    };
    let sys_uptime_ms = read_u32(data, pos)?;
    let unix_secs = read_u32(data, pos)?;
    let unix_nsecs = read_u32(data, pos)?;
    let flow_sequence = read_u32(data, pos)?;
    let (engine_type, engine_id) = match (data.get(*pos), data.get(*pos + 1)) {
        (Some(&t), Some(&i)) => (t, i),
        _ => {
            return Err(DecodeError::Truncated {
                needed: *pos + 2,
                got: data.len(),
            })
        }
    };
    *pos += 2;
    let sampling_interval =
        u16::try_from(get_uvarint(data, pos)?).map_err(|_| DecodeError::BadVarint)?;
    Ok(V5Header {
        count,
        sys_uptime_ms,
        unix_secs,
        unix_nsecs,
        flow_sequence,
        engine_type,
        engine_id,
        sampling_interval,
    })
}

/// Zero-allocation walk over the delta-encoded records of one v2
/// datagram. Borrows the datagram bytes; each [`V5Record`] is produced by
/// value (it is `Copy`), so draining a datagram allocates nothing.
#[derive(Debug)]
pub struct V2RecordCursor<'a> {
    data: &'a [u8],
    pos: usize,
    remaining: u16,
    prev: V5Record,
}

impl<'a> V2RecordCursor<'a> {
    /// A cursor starting at `pos` (just past the header) with `count`
    /// records ahead.
    pub fn new(data: &'a [u8], pos: usize, count: u16) -> V2RecordCursor<'a> {
        V2RecordCursor {
            data,
            pos,
            remaining: count,
            prev: V5Record::default(),
        }
    }

    /// Position in the underlying slice after the records consumed so far.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Records not yet decoded.
    pub fn remaining(&self) -> u16 {
        self.remaining
    }

    /// Decode the next record; `Ok(None)` once `count` records were read.
    pub fn next_record(&mut self) -> Result<Option<V5Record>, DecodeError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let data = self.data;
        let pos = &mut self.pos;
        let u8_at = |data: &[u8], pos: &mut usize| -> Result<u8, DecodeError> {
            let Some(&b) = data.get(*pos) else {
                return Err(DecodeError::Truncated {
                    needed: *pos + 1,
                    got: data.len(),
                });
            };
            *pos += 1;
            Ok(b)
        };
        let u16_var = |data: &[u8], pos: &mut usize| -> Result<u16, DecodeError> {
            u16::try_from(get_uvarint(data, pos)?).map_err(|_| DecodeError::BadVarint)
        };
        let srcaddr = apply_delta32(self.prev.srcaddr, get_uvarint(data, pos)?)?;
        let dstaddr = apply_delta32(self.prev.dstaddr, get_uvarint(data, pos)?)?;
        let nexthop = apply_delta32(self.prev.nexthop, get_uvarint(data, pos)?)?;
        let input = u16_var(data, pos)?;
        let output = u16_var(data, pos)?;
        let d_pkts = apply_delta32(self.prev.d_pkts, get_uvarint(data, pos)?)?;
        let d_octets = apply_delta32(self.prev.d_octets, get_uvarint(data, pos)?)?;
        let first = apply_delta32(self.prev.first, get_uvarint(data, pos)?)?;
        let last = apply_delta32(first, get_uvarint(data, pos)?)?;
        let srcport = u16_var(data, pos)?;
        let dstport = u16_var(data, pos)?;
        let tcp_flags = u8_at(data, pos)?;
        let prot = u8_at(data, pos)?;
        let tos = u8_at(data, pos)?;
        let src_as = u16_var(data, pos)?;
        let dst_as = u16_var(data, pos)?;
        let src_mask = u8_at(data, pos)?;
        let dst_mask = u8_at(data, pos)?;
        let record = V5Record {
            srcaddr,
            dstaddr,
            nexthop,
            input,
            output,
            d_pkts,
            d_octets,
            first,
            last,
            srcport,
            dstport,
            tcp_flags,
            prot,
            tos,
            src_as,
            dst_as,
            src_mask,
            dst_mask,
        };
        self.prev = record;
        self.remaining -= 1;
        Ok(Some(record))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(i: u32) -> V5Record {
        V5Record {
            srcaddr: 0x0a00_0001 + i,
            dstaddr: 0x1e00_0001,
            nexthop: 0x1e00_00fe,
            input: 1,
            output: 2,
            d_pkts: 3 + i,
            d_octets: 180 + i,
            first: 1000,
            last: 2000,
            srcport: (1024 + i) as u16,
            dstport: 80,
            tcp_flags: tcp_flags::SYN | tcp_flags::ACK,
            prot: proto::TCP,
            tos: 0,
            src_as: 65000,
            dst_as: 64999,
            src_mask: 24,
            dst_mask: 16,
        }
    }

    fn header(n: u16) -> V5Header {
        V5Header {
            count: n,
            sys_uptime_ms: 123_456,
            unix_secs: EPOCH_UNIX_SECS,
            unix_nsecs: 42,
            flow_sequence: 7,
            engine_type: 0,
            engine_id: 1,
            sampling_interval: 0,
        }
    }

    #[test]
    fn round_trip_single() {
        let recs = vec![record(0)];
        let bytes = encode_datagram(&header(1), &recs);
        assert_eq!(bytes.len(), V5_HEADER_LEN + V5_RECORD_LEN);
        let (h, r) = decode_datagram(&bytes).expect("valid");
        assert_eq!(h, header(1));
        assert_eq!(r, recs);
    }

    #[test]
    fn round_trip_full_datagram() {
        let recs: Vec<V5Record> = (0..30).map(record).collect();
        let bytes = encode_datagram(&header(30), &recs);
        assert_eq!(bytes.len(), V5_HEADER_LEN + 30 * V5_RECORD_LEN);
        let (h, r) = decode_datagram(&bytes).expect("valid");
        assert_eq!(h.count, 30);
        assert_eq!(r, recs);
    }

    #[test]
    fn wire_layout_is_big_endian_and_versioned() {
        let bytes = encode_datagram(&header(1), &[record(0)]);
        assert_eq!(&bytes[0..2], &[0, 5], "version 5, network order");
        assert_eq!(&bytes[2..4], &[0, 1], "count 1");
        // srcaddr at offset 24.
        assert_eq!(&bytes[24..28], &[0x0a, 0, 0, 1]);
        // dstport at offset 24 + 34 = 58.
        assert_eq!(&bytes[58..60], &[0, 80]);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(
            decode_datagram(&[]),
            Err(DecodeError::Truncated { .. })
        ));
        assert!(matches!(
            decode_datagram(&[0u8; V5_HEADER_LEN - 1]),
            Err(DecodeError::Truncated { .. })
        ));
        // Wrong version.
        let mut bytes = encode_datagram(&header(1), &[record(0)]).to_vec();
        bytes[1] = 9;
        assert_eq!(decode_datagram(&bytes), Err(DecodeError::BadVersion(9)));
        // Count beyond payload.
        let mut bytes = encode_datagram(&header(1), &[record(0)]).to_vec();
        bytes[3] = 5;
        assert!(matches!(
            decode_datagram(&bytes),
            Err(DecodeError::Truncated { .. })
        ));
        // Zero count.
        let mut bytes = encode_datagram(&header(1), &[record(0)]).to_vec();
        bytes[3] = 0;
        assert_eq!(decode_datagram(&bytes), Err(DecodeError::BadCount(0)));
    }

    #[test]
    #[should_panic(expected = "1..=30 records")]
    fn encode_rejects_oversized() {
        let recs: Vec<V5Record> = (0..31).map(record).collect();
        let _ = encode_datagram(&header(31), &recs);
    }

    #[test]
    #[should_panic(expected = "count mismatch")]
    fn encode_rejects_count_mismatch() {
        let _ = encode_datagram(&header(2), &[record(0)]);
    }

    #[test]
    fn error_messages() {
        assert!(DecodeError::BadVersion(9).to_string().contains("version 9"));
        assert!(DecodeError::BadCount(0).to_string().contains('0'));
        assert!(DecodeError::Truncated { needed: 24, got: 3 }
            .to_string()
            .contains("24"));
        assert!(DecodeError::BadVarint.to_string().contains("varint"));
    }

    #[test]
    fn uvarint_round_trip() {
        let mut buf = Vec::new();
        let values = [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        for &v in &values {
            put_uvarint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_uvarint(&buf, &mut pos).expect("valid"), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn uvarint_rejects_overlong_and_truncated() {
        // 10 continuation bytes with a high final byte overflow 64 bits.
        let overlong = [0xffu8; 11];
        let mut pos = 0;
        assert_eq!(
            get_uvarint(&overlong, &mut pos),
            Err(DecodeError::BadVarint)
        );
        // A dangling continuation bit truncates.
        let mut pos = 0;
        assert!(matches!(
            get_uvarint(&[0x80], &mut pos),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i32, 1, -1, 63, -64, i32::MAX, i32::MIN] {
            assert_eq!(unzigzag32(zigzag32(v)).expect("fits"), v);
        }
        assert_eq!(zigzag32(0), 0);
        assert_eq!(zigzag32(-1), 1, "small magnitudes encode short");
        assert!(unzigzag32(u64::from(u32::MAX) + 1).is_err());
    }

    fn decode_v2(body: &[u8]) -> (V5Header, Vec<V5Record>) {
        let mut pos = 0;
        let header = decode_header_v2(body, &mut pos).expect("header");
        let mut cursor = V2RecordCursor::new(body, pos, header.count);
        let mut records = Vec::new();
        while let Some(r) = cursor.next_record().expect("record") {
            records.push(r);
        }
        assert_eq!(cursor.pos(), body.len(), "cursor consumed the body");
        (header, records)
    }

    #[test]
    fn v2_round_trip_typical() {
        let recs: Vec<V5Record> = (0..30).map(record).collect();
        let mut body = Vec::new();
        encode_datagram_v2(&header(30), &recs, &mut body);
        let (h, r) = decode_v2(&body);
        assert_eq!(h, header(30));
        assert_eq!(r, recs);
        // Consecutive near-identical records delta-compress well below the
        // fixed 48-byte wire records.
        assert!(
            body.len() < V5_HEADER_LEN + 30 * V5_RECORD_LEN * 2 / 3,
            "compressed body {} bytes",
            body.len()
        );
    }

    /// The satellite regression: a 30-record datagram at worst-case field
    /// widths. Every u32 delta alternates across the full circle (5-byte
    /// varints everywhere), so this body is *larger* than the fixed v1
    /// encoding — the exact shape whose frame length a u16 prefix cannot
    /// be trusted to carry as fields grow. v2's varint frames and this
    /// round trip are the guard.
    #[test]
    fn v2_round_trip_worst_case_widths() {
        // Alternating 0 ↔ 2^31 maximizes every zigzag delta magnitude
        // (|delta| = 2^31 → 5-byte varints), unlike 0 ↔ u32::MAX whose
        // wrapping delta is ±1.
        const HALF: u32 = 1 << 31;
        let recs: Vec<V5Record> = (0..30)
            .map(|i| {
                let hi = i % 2 == 0;
                V5Record {
                    srcaddr: if hi { HALF } else { 0 },
                    dstaddr: if hi { 0 } else { HALF },
                    nexthop: if hi { HALF } else { 0 },
                    input: u16::MAX,
                    output: u16::MAX,
                    d_pkts: if hi { HALF } else { 0 },
                    d_octets: if hi { 0 } else { HALF },
                    first: if hi { HALF } else { 0 },
                    last: if hi { 0 } else { HALF },
                    srcport: u16::MAX,
                    dstport: u16::MAX,
                    tcp_flags: 0xff,
                    prot: 0xff,
                    tos: 0xff,
                    src_as: u16::MAX,
                    dst_as: u16::MAX,
                    src_mask: 32,
                    dst_mask: 32,
                }
            })
            .collect();
        let h = V5Header {
            count: 30,
            sys_uptime_ms: u32::MAX,
            unix_secs: u32::MAX,
            unix_nsecs: u32::MAX,
            flow_sequence: u32::MAX,
            engine_type: u8::MAX,
            engine_id: u8::MAX,
            sampling_interval: u16::MAX,
        };
        let mut body = Vec::new();
        encode_datagram_v2(&h, &recs, &mut body);
        assert!(
            body.len() > V5_HEADER_LEN + 30 * V5_RECORD_LEN,
            "worst case ({} bytes) exceeds the fixed v1 datagram",
            body.len()
        );
        let (dh, dr) = decode_v2(&body);
        assert_eq!(dh, h);
        assert_eq!(dr, recs);
    }

    #[test]
    fn v2_decode_rejects_garbage() {
        let mut body = Vec::new();
        encode_datagram_v2(&header(2), &[record(0), record(1)], &mut body);
        // Truncate mid-record.
        let cut = &body[..body.len() - 4];
        let mut pos = 0;
        let h = decode_header_v2(cut, &mut pos).expect("header intact");
        let mut cursor = V2RecordCursor::new(cut, pos, h.count);
        assert!(cursor.next_record().expect("first record fits").is_some());
        assert!(matches!(
            cursor.next_record(),
            Err(DecodeError::Truncated { .. })
        ));
        // Zero count.
        let mut pos = 0;
        assert_eq!(
            decode_header_v2(&[0u8], &mut pos),
            Err(DecodeError::BadCount(0))
        );
        // Count over 30.
        let mut pos = 0;
        assert_eq!(
            decode_header_v2(&[31u8], &mut pos),
            Err(DecodeError::BadCount(31))
        );
    }
}
