//! Cisco NetFlow V5 wire format.
//!
//! §6.1: "The traffic data used in this analysis consists of CISCO NetFlow
//! V5 records. NetFlow records are a representation of approximate sessions
//! consisting of a log of all identically addressed packets within a
//! limited time. Flow records are a compact representation of traffic, but
//! do not contain payload."
//!
//! This module implements the actual V5 export datagram layout — a 24-byte
//! header followed by up to 30 48-byte flow records — so that synthetic
//! traffic can round-trip through the same representation an operational
//! collector would store.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// NetFlow V5 protocol version constant.
pub const V5_VERSION: u16 = 5;
/// Size of the export header in bytes.
pub const V5_HEADER_LEN: usize = 24;
/// Size of one flow record in bytes.
pub const V5_RECORD_LEN: usize = 48;
/// Maximum records per datagram, per the Cisco specification.
pub const V5_MAX_RECORDS: usize = 30;

/// Unix timestamp of the scenario epoch, 2006-01-01T00:00:00Z.
pub const EPOCH_UNIX_SECS: u32 = 1_136_073_600;

/// TCP flag bits as they appear in the `tcp_flags` record field.
pub mod tcp_flags {
    /// FIN.
    pub const FIN: u8 = 0x01;
    /// SYN.
    pub const SYN: u8 = 0x02;
    /// RST.
    pub const RST: u8 = 0x04;
    /// PSH.
    pub const PSH: u8 = 0x08;
    /// ACK.
    pub const ACK: u8 = 0x10;
    /// URG.
    pub const URG: u8 = 0x20;
}

/// IP protocol numbers used by the generator.
pub mod proto {
    /// TCP.
    pub const TCP: u8 = 6;
    /// UDP.
    pub const UDP: u8 = 17;
    /// ICMP.
    pub const ICMP: u8 = 1;
}

/// The V5 export header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct V5Header {
    /// Record count in this datagram (1–30).
    pub count: u16,
    /// Milliseconds since the exporting device booted.
    pub sys_uptime_ms: u32,
    /// Export time, Unix seconds.
    pub unix_secs: u32,
    /// Export time, residual nanoseconds.
    pub unix_nsecs: u32,
    /// Total flows seen by the exporter (sequence number).
    pub flow_sequence: u32,
    /// Exporter engine type.
    pub engine_type: u8,
    /// Exporter engine slot.
    pub engine_id: u8,
    /// Sampling mode and interval.
    pub sampling_interval: u16,
}

/// One V5 flow record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct V5Record {
    /// Source IPv4 address.
    pub srcaddr: u32,
    /// Destination IPv4 address.
    pub dstaddr: u32,
    /// Next-hop router address.
    pub nexthop: u32,
    /// SNMP input interface index.
    pub input: u16,
    /// SNMP output interface index.
    pub output: u16,
    /// Packets in the flow.
    pub d_pkts: u32,
    /// Total layer-3 octets in the flow.
    pub d_octets: u32,
    /// SysUptime at flow start (ms).
    pub first: u32,
    /// SysUptime at flow end (ms).
    pub last: u32,
    /// Source port.
    pub srcport: u16,
    /// Destination port.
    pub dstport: u16,
    /// Cumulative OR of TCP flags.
    pub tcp_flags: u8,
    /// IP protocol.
    pub prot: u8,
    /// Type of service.
    pub tos: u8,
    /// Source AS number.
    pub src_as: u16,
    /// Destination AS number.
    pub dst_as: u16,
    /// Source prefix mask bits.
    pub src_mask: u8,
    /// Destination prefix mask bits.
    pub dst_mask: u8,
}

/// Errors from decoding a V5 datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input shorter than a header.
    Truncated {
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// Version field was not 5.
    BadVersion(u16),
    /// Record count outside 1..=30 or inconsistent with the payload size.
    BadCount(u16),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { needed, got } => {
                write!(f, "truncated datagram: need {needed} bytes, have {got}")
            }
            DecodeError::BadVersion(v) => write!(f, "not a NetFlow V5 datagram (version {v})"),
            DecodeError::BadCount(c) => write!(f, "invalid record count {c}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encode a header + records into one export datagram.
///
/// Panics if `records` is empty or exceeds [`V5_MAX_RECORDS`], or if
/// `header.count` disagrees with `records.len()`.
pub fn encode_datagram(header: &V5Header, records: &[V5Record]) -> Bytes {
    assert!(
        !records.is_empty() && records.len() <= V5_MAX_RECORDS,
        "V5 datagrams carry 1..=30 records, got {}",
        records.len()
    );
    assert_eq!(
        header.count as usize,
        records.len(),
        "header count mismatch"
    );
    let mut buf = BytesMut::with_capacity(V5_HEADER_LEN + records.len() * V5_RECORD_LEN);
    buf.put_u16(V5_VERSION);
    buf.put_u16(header.count);
    buf.put_u32(header.sys_uptime_ms);
    buf.put_u32(header.unix_secs);
    buf.put_u32(header.unix_nsecs);
    buf.put_u32(header.flow_sequence);
    buf.put_u8(header.engine_type);
    buf.put_u8(header.engine_id);
    buf.put_u16(header.sampling_interval);
    for r in records {
        buf.put_u32(r.srcaddr);
        buf.put_u32(r.dstaddr);
        buf.put_u32(r.nexthop);
        buf.put_u16(r.input);
        buf.put_u16(r.output);
        buf.put_u32(r.d_pkts);
        buf.put_u32(r.d_octets);
        buf.put_u32(r.first);
        buf.put_u32(r.last);
        buf.put_u16(r.srcport);
        buf.put_u16(r.dstport);
        buf.put_u8(0); // pad1
        buf.put_u8(r.tcp_flags);
        buf.put_u8(r.prot);
        buf.put_u8(r.tos);
        buf.put_u16(r.src_as);
        buf.put_u16(r.dst_as);
        buf.put_u8(r.src_mask);
        buf.put_u8(r.dst_mask);
        buf.put_u16(0); // pad2
    }
    buf.freeze()
}

/// Decode one export datagram.
pub fn decode_datagram(mut data: &[u8]) -> Result<(V5Header, Vec<V5Record>), DecodeError> {
    if data.len() < V5_HEADER_LEN {
        return Err(DecodeError::Truncated {
            needed: V5_HEADER_LEN,
            got: data.len(),
        });
    }
    let version = data.get_u16();
    if version != V5_VERSION {
        return Err(DecodeError::BadVersion(version));
    }
    let count = data.get_u16();
    if count == 0 || count as usize > V5_MAX_RECORDS {
        return Err(DecodeError::BadCount(count));
    }
    let header = V5Header {
        count,
        sys_uptime_ms: data.get_u32(),
        unix_secs: data.get_u32(),
        unix_nsecs: data.get_u32(),
        flow_sequence: data.get_u32(),
        engine_type: data.get_u8(),
        engine_id: data.get_u8(),
        sampling_interval: data.get_u16(),
    };
    let needed = count as usize * V5_RECORD_LEN;
    if data.len() < needed {
        return Err(DecodeError::Truncated {
            needed: V5_HEADER_LEN + needed,
            got: V5_HEADER_LEN + data.len(),
        });
    }
    let mut records = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let srcaddr = data.get_u32();
        let dstaddr = data.get_u32();
        let nexthop = data.get_u32();
        let input = data.get_u16();
        let output = data.get_u16();
        let d_pkts = data.get_u32();
        let d_octets = data.get_u32();
        let first = data.get_u32();
        let last = data.get_u32();
        let srcport = data.get_u16();
        let dstport = data.get_u16();
        let _pad1 = data.get_u8();
        let tcp_flags = data.get_u8();
        let prot = data.get_u8();
        let tos = data.get_u8();
        let src_as = data.get_u16();
        let dst_as = data.get_u16();
        let src_mask = data.get_u8();
        let dst_mask = data.get_u8();
        let _pad2 = data.get_u16();
        records.push(V5Record {
            srcaddr,
            dstaddr,
            nexthop,
            input,
            output,
            d_pkts,
            d_octets,
            first,
            last,
            srcport,
            dstport,
            tcp_flags,
            prot,
            tos,
            src_as,
            dst_as,
            src_mask,
            dst_mask,
        });
    }
    Ok((header, records))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(i: u32) -> V5Record {
        V5Record {
            srcaddr: 0x0a00_0001 + i,
            dstaddr: 0x1e00_0001,
            nexthop: 0x1e00_00fe,
            input: 1,
            output: 2,
            d_pkts: 3 + i,
            d_octets: 180 + i,
            first: 1000,
            last: 2000,
            srcport: (1024 + i) as u16,
            dstport: 80,
            tcp_flags: tcp_flags::SYN | tcp_flags::ACK,
            prot: proto::TCP,
            tos: 0,
            src_as: 65000,
            dst_as: 64999,
            src_mask: 24,
            dst_mask: 16,
        }
    }

    fn header(n: u16) -> V5Header {
        V5Header {
            count: n,
            sys_uptime_ms: 123_456,
            unix_secs: EPOCH_UNIX_SECS,
            unix_nsecs: 42,
            flow_sequence: 7,
            engine_type: 0,
            engine_id: 1,
            sampling_interval: 0,
        }
    }

    #[test]
    fn round_trip_single() {
        let recs = vec![record(0)];
        let bytes = encode_datagram(&header(1), &recs);
        assert_eq!(bytes.len(), V5_HEADER_LEN + V5_RECORD_LEN);
        let (h, r) = decode_datagram(&bytes).expect("valid");
        assert_eq!(h, header(1));
        assert_eq!(r, recs);
    }

    #[test]
    fn round_trip_full_datagram() {
        let recs: Vec<V5Record> = (0..30).map(record).collect();
        let bytes = encode_datagram(&header(30), &recs);
        assert_eq!(bytes.len(), V5_HEADER_LEN + 30 * V5_RECORD_LEN);
        let (h, r) = decode_datagram(&bytes).expect("valid");
        assert_eq!(h.count, 30);
        assert_eq!(r, recs);
    }

    #[test]
    fn wire_layout_is_big_endian_and_versioned() {
        let bytes = encode_datagram(&header(1), &[record(0)]);
        assert_eq!(&bytes[0..2], &[0, 5], "version 5, network order");
        assert_eq!(&bytes[2..4], &[0, 1], "count 1");
        // srcaddr at offset 24.
        assert_eq!(&bytes[24..28], &[0x0a, 0, 0, 1]);
        // dstport at offset 24 + 34 = 58.
        assert_eq!(&bytes[58..60], &[0, 80]);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(matches!(
            decode_datagram(&[]),
            Err(DecodeError::Truncated { .. })
        ));
        assert!(matches!(
            decode_datagram(&[0u8; V5_HEADER_LEN - 1]),
            Err(DecodeError::Truncated { .. })
        ));
        // Wrong version.
        let mut bytes = encode_datagram(&header(1), &[record(0)]).to_vec();
        bytes[1] = 9;
        assert_eq!(decode_datagram(&bytes), Err(DecodeError::BadVersion(9)));
        // Count beyond payload.
        let mut bytes = encode_datagram(&header(1), &[record(0)]).to_vec();
        bytes[3] = 5;
        assert!(matches!(
            decode_datagram(&bytes),
            Err(DecodeError::Truncated { .. })
        ));
        // Zero count.
        let mut bytes = encode_datagram(&header(1), &[record(0)]).to_vec();
        bytes[3] = 0;
        assert_eq!(decode_datagram(&bytes), Err(DecodeError::BadCount(0)));
    }

    #[test]
    #[should_panic(expected = "1..=30 records")]
    fn encode_rejects_oversized() {
        let recs: Vec<V5Record> = (0..31).map(record).collect();
        let _ = encode_datagram(&header(31), &recs);
    }

    #[test]
    #[should_panic(expected = "count mismatch")]
    fn encode_rejects_count_mismatch() {
        let _ = encode_datagram(&header(2), &[record(0)]);
    }

    #[test]
    fn error_messages() {
        assert!(DecodeError::BadVersion(9).to_string().contains("version 9"));
        assert!(DecodeError::BadCount(0).to_string().contains('0'));
        assert!(DecodeError::Truncated { needed: 24, got: 3 }
            .to_string()
            .contains("24"));
    }
}
