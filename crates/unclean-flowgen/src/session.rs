//! The in-pipeline flow representation.
//!
//! [`Flow`] is what the generator emits and the detectors consume: one
//! unidirectional approximate session, carrying exactly the fields the §6
//! analysis needs (addresses, ports, protocol, packets, octets, flags,
//! timing). It converts losslessly to and from the V5 wire record given the
//! export epoch.

use crate::record::{proto, tcp_flags, V5Record, EPOCH_UNIX_SECS};
use serde::{Deserialize, Serialize};
use unclean_core::{Day, Ip};

/// Estimated bytes of L3+L4 header per packet used when deriving payload
/// from octet counts (IPv4 20 + TCP 20, options counted as payload — which
/// is precisely the 36-byte SYN-scan pitfall §6.1 describes).
pub const HEADER_BYTES_PER_PACKET: u32 = 40;

/// One unidirectional flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flow {
    /// Source address.
    pub src: Ip,
    /// Destination address.
    pub dst: Ip,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// IP protocol (6 = TCP).
    pub proto: u8,
    /// Packet count.
    pub packets: u32,
    /// Total octets.
    pub octets: u32,
    /// Cumulative TCP flags.
    pub flags: u8,
    /// Start time, seconds since the scenario epoch (2006-01-01T00:00Z).
    pub start_secs: i64,
    /// Duration in seconds.
    pub duration_secs: u32,
}

impl Flow {
    /// The day this flow started.
    pub fn day(&self) -> Day {
        Day(self.start_secs.div_euclid(86_400) as i32)
    }

    /// Second-of-day of the flow start.
    pub fn second_of_day(&self) -> u32 {
        self.start_secs.rem_euclid(86_400) as u32
    }

    /// Hour-of-day of the flow start (0–23), the scan detector's window.
    pub fn hour(&self) -> u32 {
        self.second_of_day() / 3600
    }

    /// Estimated payload octets: total minus 40 per packet, clamped at 0.
    /// TCP options inflate this — a 3-packet SYN retry train with 12 bytes
    /// of options per packet "carries" 36 bytes by this estimate while
    /// never completing a handshake.
    pub fn payload_estimate(&self) -> u32 {
        self.octets
            .saturating_sub(self.packets.saturating_mul(HEADER_BYTES_PER_PACKET))
    }

    /// Whether the ACK flag was ever set.
    pub fn has_ack(&self) -> bool {
        self.flags & tcp_flags::ACK != 0
    }

    /// §6.1's payload-bearing test: TCP, ≥36 bytes of estimated payload,
    /// and at least one ACK.
    pub fn payload_bearing(&self) -> bool {
        self.proto == proto::TCP && self.payload_estimate() >= 36 && self.has_ack()
    }

    /// Whether both ports are ephemeral (the §6.2 "communications from
    /// ephemeral ports to ephemeral ports" oddity).
    pub fn ephemeral_to_ephemeral(&self) -> bool {
        self.src_port >= 1024 && self.dst_port >= 1024
    }

    /// Convert to a V5 wire record. `boot_unix_secs` anchors the exporter's
    /// SysUptime clock; like a real exporter, the 32-bit millisecond
    /// counter wraps every ~49.7 days, so lossless round-tripping requires
    /// the boot time to sit within that horizon of the flow.
    pub fn to_v5(&self, boot_unix_secs: u32) -> V5Record {
        let unix_start = EPOCH_UNIX_SECS as i64 + self.start_secs;
        let first_ms = (((unix_start - boot_unix_secs as i64) * 1000).max(0) as u64
            % (u32::MAX as u64 + 1)) as u32;
        V5Record {
            srcaddr: self.src.raw(),
            dstaddr: self.dst.raw(),
            nexthop: 0,
            input: 1,
            output: 2,
            d_pkts: self.packets,
            d_octets: self.octets,
            first: first_ms,
            last: first_ms.wrapping_add(self.duration_secs.wrapping_mul(1000)),
            srcport: self.src_port,
            dstport: self.dst_port,
            tcp_flags: self.flags,
            prot: self.proto,
            tos: 0,
            src_as: 0,
            dst_as: 0,
            src_mask: 0,
            dst_mask: 0,
        }
    }

    /// Reconstruct from a V5 wire record and its exporter's boot time.
    pub fn from_v5(r: &V5Record, boot_unix_secs: u32) -> Flow {
        let unix_start = boot_unix_secs as i64 + (r.first / 1000) as i64;
        Flow {
            src: Ip(r.srcaddr),
            dst: Ip(r.dstaddr),
            src_port: r.srcport,
            dst_port: r.dstport,
            proto: r.prot,
            packets: r.d_pkts,
            octets: r.d_octets,
            flags: r.tcp_flags,
            start_secs: unix_start - EPOCH_UNIX_SECS as i64,
            // Wrapping difference: `last` may have wrapped past `first`
            // when a long flow straddles the 49.7-day uptime rollover.
            duration_secs: r.last.wrapping_sub(r.first) / 1000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_flow() -> Flow {
        Flow {
            src: "9.1.2.3".parse().expect("ok"),
            dst: "30.0.0.1".parse().expect("ok"),
            src_port: 40_000,
            dst_port: 80,
            proto: proto::TCP,
            packets: 10,
            octets: 40 * 10 + 500,
            flags: tcp_flags::SYN | tcp_flags::ACK | tcp_flags::PSH | tcp_flags::FIN,
            start_secs: 86_400 * 273 + 3_700, // 2006-10-01, 01:01:40
            duration_secs: 12,
        }
    }

    #[test]
    fn time_derivations() {
        let f = base_flow();
        assert_eq!(f.day().to_string(), "2006-10-01");
        assert_eq!(f.second_of_day(), 3_700);
        assert_eq!(f.hour(), 1);
    }

    #[test]
    fn payload_estimate_and_bearing() {
        let f = base_flow();
        assert_eq!(f.payload_estimate(), 500);
        assert!(f.payload_bearing());
    }

    #[test]
    fn syn_scan_with_options_is_not_payload_bearing() {
        // The paper's §6.1 trap: 3 SYN packets of 52 bytes each estimate
        // exactly 36 bytes of "payload" but carry no ACK.
        let f = Flow {
            flags: tcp_flags::SYN,
            packets: 3,
            octets: 3 * 52,
            ..base_flow()
        };
        assert_eq!(f.payload_estimate(), 36);
        assert!(!f.has_ack());
        assert!(!f.payload_bearing(), "no ACK, no payload verdict");
    }

    #[test]
    fn small_ack_flow_is_not_payload_bearing() {
        let f = Flow {
            packets: 3,
            octets: 3 * 40 + 20, // only 20 payload bytes
            ..base_flow()
        };
        assert!(!f.payload_bearing());
    }

    #[test]
    fn udp_is_never_payload_bearing() {
        let f = Flow {
            proto: proto::UDP,
            ..base_flow()
        };
        assert!(!f.payload_bearing());
    }

    #[test]
    fn payload_estimate_clamps_at_zero() {
        let f = Flow {
            packets: 100,
            octets: 50,
            ..base_flow()
        };
        assert_eq!(f.payload_estimate(), 0);
    }

    #[test]
    fn ephemeral_detection() {
        let f = base_flow();
        assert!(!f.ephemeral_to_ephemeral(), "dst port 80 is a service");
        let weird = Flow {
            dst_port: 33_001,
            ..f
        };
        assert!(weird.ephemeral_to_ephemeral());
    }

    #[test]
    fn v5_round_trip() {
        let f = base_flow();
        // Exporter booted shortly before the observation window (the
        // 32-bit SysUptime counter wraps every ~49.7 days).
        let boot = EPOCH_UNIX_SECS + 86_400 * 270;
        let rec = f.to_v5(boot);
        let back = Flow::from_v5(&rec, boot);
        assert_eq!(back, f);
    }

    #[test]
    fn v5_uptime_wraps_like_a_real_exporter() {
        // A flow ~273 days after boot overflows the 32-bit ms counter; the
        // encoder must wrap rather than saturate or panic.
        let f = base_flow();
        let rec = f.to_v5(EPOCH_UNIX_SECS - 10_000);
        let expected = ((f.start_secs + 10_000) as u64 * 1000) % (u32::MAX as u64 + 1);
        assert_eq!(rec.first as u64, expected);
    }

    #[test]
    fn v5_record_fields_populate() {
        let f = base_flow();
        let rec = f.to_v5(EPOCH_UNIX_SECS);
        assert_eq!(rec.srcaddr, f.src.raw());
        assert_eq!(rec.dstport, 80);
        assert_eq!(rec.prot, proto::TCP);
        assert_eq!(rec.d_octets, f.octets);
        assert_eq!(rec.last - rec.first, 12_000);
    }

    #[test]
    fn negative_epoch_times_day() {
        // Flows before the epoch (burn-in period) still resolve to the
        // correct calendar day.
        let f = Flow {
            start_secs: -1,
            ..base_flow()
        };
        assert_eq!(f.day(), Day(-1));
        assert_eq!(f.second_of_day(), 86_399);
    }
}
