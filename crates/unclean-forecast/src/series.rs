//! Per-/16 daily report-count series.
//!
//! The forecaster's unit of observation is the paper's: how many
//! *reported* addresses a network contributed on a day. Two builders
//! exist. [`DailySeries::from_archive`] counts distinct source addresses
//! per (network, day) out of the v2 indexed flow archive — the
//! production path, fed by whatever the collector recorded.
//! [`DailySeries::from_infections`] builds the same series from a
//! synthetic infection history with a per-(host, day) reporting
//! probability decided by stable hashing — the evaluation path, where
//! ground truth (planted hygiene) is known and determinism is exact.

use std::collections::BTreeSet;

use unclean_core::{DateRange, Day};
use unclean_flowgen::{ArchiveTelemetry, IndexedArchive, IndexedError};
use unclean_netmodel::randutil::uniform_hash;
use unclean_netmodel::Infection;
use unclean_stats::SeedTree;

/// Errors building a series.
#[derive(Debug)]
pub enum SeriesError {
    /// The archive bytes are not a v2 indexed archive (run
    /// `unclean archive index` to upgrade a v1 stream).
    NotIndexed,
    /// The archive failed to open or verify.
    Archive(IndexedError),
    /// The archive (or requested range) contains no flows.
    Empty,
}

impl std::fmt::Display for SeriesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeriesError::NotIndexed => {
                write!(
                    f,
                    "archive is not v2-indexed; run `unclean archive index` first"
                )
            }
            SeriesError::Archive(e) => write!(f, "archive error: {e}"),
            SeriesError::Empty => write!(f, "no flows in the selected day range"),
        }
    }
}

impl std::error::Error for SeriesError {}

impl From<IndexedError> for SeriesError {
    fn from(e: IndexedError) -> SeriesError {
        SeriesError::Archive(e)
    }
}

/// Daily report counts per /16 network over a contiguous span.
#[derive(Debug, Clone, PartialEq)]
pub struct DailySeries {
    span: DateRange,
    /// Sorted /16 prefixes (address >> 16) with at least one report.
    networks: Vec<u32>,
    /// `networks.len() × span.len_days()` counts, row-major per network.
    counts: Vec<f64>,
}

impl DailySeries {
    fn from_pairs(pairs: BTreeSet<(u32, i32, u32)>, span: DateRange) -> DailySeries {
        // pairs hold (net, day, addr) triples: distinct reported
        // addresses per (network, day).
        let mut networks: Vec<u32> = pairs.iter().map(|&(net, _, _)| net).collect();
        networks.dedup();
        let days = span.len_days() as usize;
        let mut counts = vec![0.0; networks.len() * days];
        for &(net, day, _) in &pairs {
            let row = networks.binary_search(&net).expect("net registered");
            let col = (day - span.start.0) as usize;
            counts[row * days + col] += 1.0;
        }
        DailySeries {
            span,
            networks,
            counts,
        }
    }

    /// Build from a v2 indexed archive: distinct source addresses per
    /// (/16, day), over `range` (the archive's whole span when `None`).
    pub fn from_archive(
        data: &[u8],
        range: Option<DateRange>,
    ) -> Result<(DailySeries, ArchiveTelemetry), SeriesError> {
        let archive = IndexedArchive::open(data)?.ok_or(SeriesError::NotIndexed)?;
        let (flows, telemetry) = archive.read_day_range(range)?;
        let mut pairs = BTreeSet::new();
        let mut lo = i32::MAX;
        let mut hi = i32::MIN;
        for f in &flows {
            let day = f.day().0;
            lo = lo.min(day);
            hi = hi.max(day);
            pairs.insert((f.src.raw() >> 16, day, f.src.raw()));
        }
        if pairs.is_empty() {
            return Err(SeriesError::Empty);
        }
        let span = match range {
            Some(r) => r,
            None => DateRange::new(Day(lo), Day(hi)),
        };
        Ok((DailySeries::from_pairs(pairs, span), telemetry))
    }

    /// Build from an infection history: an infected host is *reported*
    /// on a given day with probability `report_prob`, decided by a
    /// stable per-(host, day) hash under `seeds` — so the series is
    /// deterministic and independent of infection order.
    pub fn from_infections(
        infections: &[Infection],
        span: DateRange,
        report_prob: f64,
        seeds: &SeedTree,
    ) -> DailySeries {
        let seeds = seeds.child("report-series");
        let mut pairs = BTreeSet::new();
        for inf in infections {
            let lo = inf.start.max(span.start.0);
            let hi = inf.end.min(span.end.0);
            for day in lo..=hi {
                if uniform_hash(&seeds, inf.addr, day, "report") < report_prob {
                    pairs.insert((inf.addr >> 16, day, inf.addr));
                }
            }
        }
        DailySeries::from_pairs(pairs, span)
    }

    /// The covered span.
    pub fn span(&self) -> DateRange {
        self.span
    }

    /// Number of days covered.
    pub fn days(&self) -> usize {
        self.span.len_days() as usize
    }

    /// The /16 prefixes with reports, sorted, aligned with row indices.
    pub fn networks(&self) -> &[u32] {
        &self.networks
    }

    /// One network's counts, day by day.
    pub fn row(&self, net_idx: usize) -> &[f64] {
        let days = self.days();
        &self.counts[net_idx * days..(net_idx + 1) * days]
    }

    /// Count for network `net_idx` on day-offset `day_idx`.
    pub fn count(&self, net_idx: usize, day_idx: usize) -> f64 {
        self.row(net_idx)[day_idx]
    }

    /// Total reports across all networks on day-offset `day_idx`.
    pub fn day_total(&self, day_idx: usize) -> f64 {
        (0..self.networks.len())
            .map(|i| self.count(i, day_idx))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inf(addr: u32, start: i32, end: i32) -> Infection {
        Infection {
            addr,
            start,
            end,
            recruited: false,
            channel: 0,
        }
    }

    #[test]
    fn counts_distinct_hosts_per_network_day() {
        let span = DateRange::new(Day(0), Day(9));
        let infections = vec![
            inf(0x09010105, 0, 9),
            inf(0x09010206, 0, 4),
            inf(0x0A000001, 3, 3),
        ];
        // report_prob = 1: every infected host-day is a report.
        let s = DailySeries::from_infections(&infections, span, 1.0, &SeedTree::new(1));
        assert_eq!(s.networks(), &[0x0901, 0x0A00]);
        assert_eq!(s.count(0, 0), 2.0);
        assert_eq!(s.count(0, 5), 1.0);
        assert_eq!(s.count(1, 3), 1.0);
        assert_eq!(s.count(1, 4), 0.0);
        assert_eq!(s.day_total(0), 2.0);
    }

    #[test]
    fn thinning_is_deterministic_and_roughly_calibrated() {
        let span = DateRange::new(Day(0), Day(99));
        let infections: Vec<Infection> = (0..200).map(|i| inf(0x09010000 + i, 0, 99)).collect();
        let a = DailySeries::from_infections(&infections, span, 0.35, &SeedTree::new(7));
        let b = DailySeries::from_infections(&infections, span, 0.35, &SeedTree::new(7));
        assert_eq!(a, b);
        let mean: f64 = (0..a.days()).map(|d| a.day_total(d)).sum::<f64>() / a.days() as f64;
        assert!(
            (mean - 70.0).abs() < 10.0,
            "mean daily reports {mean} ≈ 200·0.35"
        );
        // Different seeds draw different reports.
        let c = DailySeries::from_infections(&infections, span, 0.35, &SeedTree::new(8));
        assert_ne!(a, c);
    }

    #[test]
    fn spans_clip_infection_intervals() {
        let span = DateRange::new(Day(10), Day(19));
        let infections = vec![inf(0x09010105, 0, 100)];
        let s = DailySeries::from_infections(&infections, span, 1.0, &SeedTree::new(1));
        assert_eq!(s.days(), 10);
        assert!((0..10).all(|d| s.count(0, d) == 1.0));
    }
}
