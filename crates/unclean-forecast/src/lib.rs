//! # unclean-forecast
//!
//! Longitudinal forecasting on top of the uncleanliness reproduction.
//!
//! The paper stops at one horizon: last month's unclean /24s predict next
//! month's botnet blocks. This crate pushes past it, in the direction the
//! related work points (per-network attack rates are spatiotemporally
//! predictable; coordinated remediation is measurable):
//!
//! * [`series`] — per-/16 daily report-count series, built from the v2
//!   indexed flow archive or directly from a synthetic infection history;
//! * [`model`] — a Holt-style level+trend smoother per network with a
//!   spatial neighbor term over adjacent /16s, fit deterministically
//!   across threads via the work-stealing executor;
//! * [`eval`] — Brier/MAE scoring on a held-out horizon against a
//!   persistence baseline;
//! * [`artifact`] — the generation-stamped, atomically published forecast
//!   file the serving daemon hot-reloads;
//! * [`simulate`] — remediation what-if runs: replay the same seeded
//!   epidemic with and without a notify-and-cleanup campaign and measure
//!   blocklist decay, false-positive cost, and score half-life.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod eval;
pub mod model;
pub mod series;
pub mod simulate;

pub use artifact::{publish_atomic, ArtifactError, ForecastArtifact};
pub use eval::{evaluate, EvalError, EvalReport};
pub use model::{ForecastConfig, ForecastModel, NetworkForecast};
pub use series::{DailySeries, SeriesError};
pub use simulate::{PeriodRow, SimulateConfig, SimulateReport};
