//! The published forecast artifact.
//!
//! Same contract as the blocklist the serving daemon already consumes: a
//! plain text file, comment header carrying `generation=` lineage (the
//! format [`unclean_core::blocklist::parse_header_meta`] validates), one
//! entry per line, written with tmp+fsync+rename so readers only ever
//! see a complete generation. Entries store the fitted state (`level`,
//! `trend`, `sigma`), not a single pre-computed rate, so the serving
//! endpoint can answer any `horizon=N` without a refit. Floats render in
//! Rust's shortest round-trip form: render → parse → render is
//! byte-identical.

use std::io::Write as _;
use std::path::Path;

use unclean_core::Cidr;

use crate::model::{score_half_life, NetworkForecast};

/// Errors reading an artifact.
#[derive(Debug)]
pub enum ArtifactError {
    /// The comment header failed validation (e.g. non-numeric
    /// `generation=`).
    Header(unclean_core::Error),
    /// An entry line failed to parse.
    Entry {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Header(e) => write!(f, "forecast header: {e}"),
            ArtifactError::Entry { line, message } => {
                write!(f, "forecast line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ArtifactError {}

/// A parsed (or about-to-be-rendered) forecast artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct ForecastArtifact {
    /// Label on the header line.
    pub name: String,
    /// Generation stamp, when published by a generation-aware writer.
    pub generation: Option<u64>,
    /// Publish wall-clock time (Unix milliseconds), when stamped.
    pub published_unix_ms: Option<u64>,
    /// Default horizon the model was fit for.
    pub horizon_days: u32,
    /// z-score for served confidence intervals.
    pub ci_z: f64,
    /// Per-network state, sorted by `network`.
    pub entries: Vec<NetworkForecast>,
}

impl ForecastArtifact {
    /// Wrap a fitted model for publication.
    pub fn from_model(model: &crate::model::ForecastModel, name: &str) -> ForecastArtifact {
        ForecastArtifact {
            name: name.to_string(),
            generation: None,
            published_unix_ms: None,
            horizon_days: model.config.horizon_days,
            ci_z: model.config.ci_z,
            entries: model.forecasts.clone(),
        }
    }

    /// The entry for a /16 prefix (address >> 16), if the model saw it.
    pub fn lookup(&self, prefix16: u32) -> Option<&NetworkForecast> {
        self.entries
            .binary_search_by_key(&prefix16, |e| e.network)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Render the artifact text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# forecast: {} ({} networks, horizon {} days)",
            self.name,
            self.entries.len(),
            self.horizon_days
        );
        out.push('#');
        if let Some(generation) = self.generation {
            let _ = write!(out, " generation={generation}");
        }
        if let Some(ms) = self.published_unix_ms {
            let _ = write!(out, " published_unix_ms={ms}");
        }
        let _ = write!(
            out,
            " horizon_days={} ci_z={}",
            self.horizon_days, self.ci_z
        );
        out.push('\n');
        for e in &self.entries {
            let _ = writeln!(
                out,
                "{}.{}.0.0/16 level={} trend={} sigma={} rate={}",
                e.network >> 8,
                e.network & 0xFF,
                e.level,
                e.trend,
                e.sigma,
                e.rate_at(self.horizon_days)
            );
        }
        out
    }

    /// Parse rendered text back. The header is validated with the same
    /// `parse_header_meta` the blocklist path uses; entry `rate=` tokens
    /// are derived values and ignored (recomputed from the state).
    pub fn parse(text: &str) -> Result<ForecastArtifact, ArtifactError> {
        let meta =
            unclean_core::blocklist::parse_header_meta(text).map_err(ArtifactError::Header)?;
        let name = text
            .lines()
            .next()
            .and_then(|l| l.strip_prefix("# forecast: "))
            .and_then(|l| l.rsplit_once(" ("))
            .map(|(name, _)| name.to_string())
            .unwrap_or_else(|| "unnamed".to_string());
        let generation = meta.get("generation").and_then(|g| g.parse().ok());
        let published_unix_ms = meta.get("published_unix_ms").and_then(|t| t.parse().ok());
        let horizon_days = meta
            .get("horizon_days")
            .and_then(|h| h.parse().ok())
            .unwrap_or(7);
        let ci_z = meta
            .get("ci_z")
            .and_then(|z| z.parse().ok())
            .unwrap_or(1.96);

        let mut entries = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let entry = |message: String| ArtifactError::Entry {
                line: lineno + 1,
                message,
            };
            let mut tokens = line.split_whitespace();
            let cidr: Cidr = tokens
                .next()
                .expect("non-empty line has a token")
                .parse()
                .map_err(|e| entry(format!("bad network: {e}")))?;
            if cidr.len() != 16 {
                return Err(entry(format!("expected a /16, got /{}", cidr.len())));
            }
            let mut level = None;
            let mut trend = None;
            let mut sigma = None;
            for token in tokens {
                let Some((key, value)) = token.split_once('=') else {
                    return Err(entry(format!("malformed token {token:?}")));
                };
                let slot = match key {
                    "level" => &mut level,
                    "trend" => &mut trend,
                    "sigma" => &mut sigma,
                    _ => continue, // rate= and future keys: derived/ignored
                };
                *slot = Some(
                    value
                        .parse::<f64>()
                        .map_err(|_| entry(format!("non-numeric {key}={value:?}")))?,
                );
            }
            let (Some(level), Some(trend), Some(sigma)) = (level, trend, sigma) else {
                return Err(entry("missing level=/trend=/sigma=".to_string()));
            };
            entries.push(NetworkForecast {
                network: cidr.base().raw() >> 16,
                level,
                trend,
                sigma,
                score_half_life: score_half_life(level, trend),
            });
        }
        entries.sort_by_key(|e| e.network);
        Ok(ForecastArtifact {
            name,
            generation,
            published_unix_ms,
            horizon_days,
            ci_z,
            entries,
        })
    }
}

/// Atomically publish `bytes` at `path`: write a sibling tmp file, fsync
/// it, rename over the target. Readers (and the serving daemon's
/// watcher) never observe a partial artifact.
pub fn publish_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::HALF_LIFE_CAP_DAYS;
    use proptest::prelude::*;

    fn artifact() -> ForecastArtifact {
        ForecastArtifact {
            name: "unclean-forecast".to_string(),
            generation: Some(3),
            published_unix_ms: Some(1754700000123),
            horizon_days: 7,
            ci_z: 1.96,
            entries: vec![
                NetworkForecast {
                    network: 0x0901,
                    level: 12.5,
                    trend: -0.25,
                    sigma: 1.75,
                    score_half_life: 25.0,
                },
                NetworkForecast {
                    network: 0x0B02,
                    level: 0.5,
                    trend: 0.0,
                    sigma: 0.25,
                    score_half_life: HALF_LIFE_CAP_DAYS,
                },
            ],
        }
    }

    #[test]
    fn render_parse_round_trips() {
        let a = artifact();
        let text = a.render();
        assert!(text.starts_with("# forecast: unclean-forecast (2 networks"));
        assert!(text.contains("generation=3"));
        assert!(text.contains("9.1.0.0/16 level=12.5 trend=-0.25 sigma=1.75"));
        let parsed = ForecastArtifact::parse(&text).expect("round trip");
        assert_eq!(parsed, a);
        assert_eq!(parsed.lookup(0x0901).expect("present").level, 12.5);
        assert!(parsed.lookup(0x0902).is_none());
    }

    #[test]
    fn corrupt_header_and_entries_are_typed_errors() {
        let bad_gen = "# forecast: x (0 networks, horizon 7 days)\n# generation=oops\n";
        assert!(matches!(
            ForecastArtifact::parse(bad_gen),
            Err(ArtifactError::Header(
                unclean_core::Error::MalformedHeaderMeta { .. }
            ))
        ));
        let bad_len = "# ok\n9.1.1.0/24 level=1 trend=0 sigma=0\n";
        assert!(matches!(
            ForecastArtifact::parse(bad_len),
            Err(ArtifactError::Entry { line: 2, .. })
        ));
        let missing = "9.1.0.0/16 level=1 trend=0\n";
        assert!(ForecastArtifact::parse(missing).is_err());
        let non_numeric = "9.1.0.0/16 level=abc trend=0 sigma=0\n";
        assert!(ForecastArtifact::parse(non_numeric).is_err());
    }

    #[test]
    fn publish_atomic_replaces_whole_file() {
        let dir = std::env::temp_dir().join(format!("unclean-forecast-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("forecast.txt");
        publish_atomic(&path, b"first generation\n").expect("publish");
        publish_atomic(&path, b"second\n").expect("republish");
        assert_eq!(std::fs::read(&path).expect("readable"), b"second\n");
        assert!(!path.with_extension("tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    proptest! {
        #[test]
        fn render_parse_round_trips_any_state(
            nets in proptest::collection::vec(0u32..=0xFFFF, 1..24),
            levels in proptest::collection::vec(0.0f64..1e6, 24usize),
            trends in proptest::collection::vec(-1e3f64..1e3, 24usize),
            sigmas in proptest::collection::vec(0.0f64..1e3, 24usize),
            generation in 0u64..1_000_000_000,
            horizon in 1u32..365,
        ) {
            let mut nets = nets;
            nets.sort_unstable();
            nets.dedup();
            let entries: Vec<NetworkForecast> = nets
                .iter()
                .enumerate()
                .map(|(i, &network)| NetworkForecast {
                    network,
                    level: levels[i],
                    trend: trends[i],
                    sigma: sigmas[i],
                    score_half_life: score_half_life(levels[i], trends[i]),
                })
                .collect();
            let a = ForecastArtifact {
                name: "prop".to_string(),
                // Exercise both the stamped and unstamped header forms.
                generation: (generation % 2 == 0).then_some(generation),
                published_unix_ms: Some(1754700000123),
                horizon_days: horizon,
                ci_z: 1.96,
                entries,
            };
            let text = a.render();
            let parsed = ForecastArtifact::parse(&text).expect("parses");
            prop_assert_eq!(&parsed, &a);
            // Render → parse → render is byte-identical.
            prop_assert_eq!(parsed.render(), text);
        }
    }
}
