//! Held-out scoring against a persistence baseline.
//!
//! The honest question for any forecaster is whether it beats the dumb
//! thing: carry the last observed day forward (persistence). Both
//! predictors answer the same two questions about each (network, horizon
//! day) pair and are scored the same way:
//!
//! * **Brier** — the predicted probability that the network emits at
//!   least one report that day, `p = 1 − exp(−rate)` for a Poisson
//!   arrival at the predicted rate, squared-error against the outcome;
//! * **MAE** — absolute error of the predicted daily rate against the
//!   realized count.

use crossbeam::executor::Executor;
use serde::{Deserialize, Serialize};

use crate::model::{ForecastConfig, ForecastModel};
use crate::series::DailySeries;

/// Errors splitting the series.
#[derive(Debug, PartialEq, Eq)]
pub enum EvalError {
    /// Fewer observed days than `train_days + horizon_days`.
    SeriesTooShort {
        /// Days available in the series.
        have: usize,
        /// Days the split requires.
        need: usize,
    },
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::SeriesTooShort { have, need } => {
                write!(f, "series has {have} days, need {need} for this split")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Side-by-side scores for the model and the persistence baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalReport {
    /// Networks scored.
    pub networks: usize,
    /// Training days per network.
    pub train_days: usize,
    /// Held-out horizon (days).
    pub horizon_days: u32,
    /// Mean Brier score of the model (lower is better).
    pub model_brier: f64,
    /// Mean Brier score of persistence.
    pub persistence_brier: f64,
    /// Mean absolute rate error of the model.
    pub model_mae: f64,
    /// Mean absolute rate error of persistence.
    pub persistence_mae: f64,
}

impl EvalReport {
    /// Whether the model beats persistence on Brier score.
    pub fn beats_persistence(&self) -> bool {
        self.model_brier < self.persistence_brier
    }

    /// Brier improvement over persistence as a fraction of the
    /// persistence score (positive = better).
    pub fn brier_skill(&self) -> f64 {
        if self.persistence_brier <= 0.0 {
            return 0.0;
        }
        1.0 - self.model_brier / self.persistence_brier
    }
}

/// Probability of at least one report in a day at `rate` arrivals/day.
fn p_report(rate: f64) -> f64 {
    1.0 - (-rate.max(0.0)).exp()
}

/// Fit on the first `train_days` of `series`, score model and
/// persistence on the following `config.horizon_days` days.
/// Deterministic at any `pool` width.
pub fn evaluate(
    series: &DailySeries,
    train_days: usize,
    config: &ForecastConfig,
    pool: &Executor,
) -> Result<EvalReport, EvalError> {
    let horizon = config.horizon_days as usize;
    let need = train_days + horizon;
    if train_days < 2 || series.days() < need {
        return Err(EvalError::SeriesTooShort {
            have: series.days(),
            need,
        });
    }
    let model = ForecastModel::fit_prefix(series, train_days, config, pool);

    let mut model_brier = 0.0;
    let mut pers_brier = 0.0;
    let mut model_mae = 0.0;
    let mut pers_mae = 0.0;
    let mut samples = 0usize;
    for (i, forecast) in model.forecasts.iter().enumerate() {
        let persistence_rate = series.count(i, train_days - 1);
        for h in 1..=horizon {
            let actual = series.count(i, train_days + h - 1);
            let outcome = if actual > 0.0 { 1.0 } else { 0.0 };
            let model_rate = forecast.rate_at(h as u32);
            model_brier += (p_report(model_rate) - outcome).powi(2);
            pers_brier += (p_report(persistence_rate) - outcome).powi(2);
            model_mae += (model_rate - actual).abs();
            pers_mae += (persistence_rate - actual).abs();
            samples += 1;
        }
    }
    let n = samples.max(1) as f64;
    Ok(EvalReport {
        networks: model.forecasts.len(),
        train_days,
        horizon_days: config.horizon_days,
        model_brier: model_brier / n,
        persistence_brier: pers_brier / n,
        model_mae: model_mae / n,
        persistence_mae: pers_mae / n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use unclean_core::{DateRange, Day};
    use unclean_netmodel::Infection;
    use unclean_stats::SeedTree;

    #[test]
    fn too_short_series_is_rejected() {
        let infections = vec![Infection {
            addr: 0x09010001,
            start: 0,
            end: 9,
            recruited: false,
            channel: 0,
        }];
        let series = DailySeries::from_infections(
            &infections,
            DateRange::new(Day(0), Day(9)),
            1.0,
            &SeedTree::new(1),
        );
        let err = evaluate(&series, 8, &ForecastConfig::default(), &Executor::new(1));
        assert_eq!(err, Err(EvalError::SeriesTooShort { have: 10, need: 15 }));
    }

    #[test]
    fn smoothing_beats_persistence_on_noisy_counts() {
        // Many small networks with thinned reporting: persistence chases
        // single-day binomial noise (and predicts p = 0 whenever the last
        // training day happened to be quiet); the smoother does not.
        let mut infections = Vec::new();
        for net in 0..48u32 {
            for host in 0..(2 + net % 5) {
                infections.push(Infection {
                    addr: ((0x0900 + net) << 16) | host,
                    start: 0,
                    end: 99,
                    recruited: false,
                    channel: 0,
                });
            }
        }
        let series = DailySeries::from_infections(
            &infections,
            DateRange::new(Day(0), Day(99)),
            0.3,
            &SeedTree::new(5),
        );
        let report = evaluate(&series, 60, &ForecastConfig::default(), &Executor::new(2))
            .expect("split fits");
        assert!(
            report.beats_persistence(),
            "model {} vs persistence {}",
            report.model_brier,
            report.persistence_brier
        );
        assert!(report.model_mae < report.persistence_mae);
        assert!(report.brier_skill() > 0.0);
    }
}
