//! The per-network forecaster: Holt level+trend with spatial smoothing.
//!
//! Chen et al.'s observation is that per-network attack rates carry
//! exploitable structure in both time (rates persist and drift slowly)
//! and space (adjacent networks attack alike — the same clustering the
//! paper's spatial uncleanliness measures). The model here is the
//! smallest one that uses both: an exponentially weighted level+trend
//! (Holt) per /16, then a blend of each network's state with its
//! immediately adjacent /16s. Everything is fit per network through the
//! deterministic executor, so results are byte-identical at any thread
//! count.

use crossbeam::executor::Executor;
use serde::{Deserialize, Serialize};

use crate::series::DailySeries;

/// Score half-lives are capped here (≈10 years) — "never decays" in a
/// finite rendering.
pub const HALF_LIFE_CAP_DAYS: f64 = 3650.0;

/// Forecaster tunables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForecastConfig {
    /// Default prediction horizon (days ahead of the last observed day).
    pub horizon_days: u32,
    /// Half-life (days) of the level smoother; smaller = more reactive.
    pub level_half_life: f64,
    /// Half-life (days) of the trend smoother.
    pub trend_half_life: f64,
    /// Weight of the adjacent-/16 spatial term in `[0, 1)`.
    pub neighbor_weight: f64,
    /// z-score of the confidence interval (1.96 ≈ 95%).
    pub ci_z: f64,
}

impl Default for ForecastConfig {
    fn default() -> ForecastConfig {
        ForecastConfig {
            horizon_days: 7,
            level_half_life: 7.0,
            trend_half_life: 14.0,
            neighbor_weight: 0.15,
            ci_z: 1.96,
        }
    }
}

/// One network's fitted state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkForecast {
    /// The /16 prefix (address >> 16).
    pub network: u32,
    /// Smoothed daily report rate at the end of the training window.
    pub level: f64,
    /// Smoothed daily change of the rate.
    pub trend: f64,
    /// EWMA standard deviation of one-step-ahead residuals.
    pub sigma: f64,
    /// Days until the predicted rate halves (capped at
    /// [`HALF_LIFE_CAP_DAYS`]; the cap means "not decaying").
    pub score_half_life: f64,
}

impl NetworkForecast {
    /// Predicted daily report rate `horizon` days ahead.
    pub fn rate_at(&self, horizon: u32) -> f64 {
        (self.level + self.trend * horizon as f64).max(0.0)
    }

    /// `(ci_low, ci_high)` around [`NetworkForecast::rate_at`], widening
    /// with the square root of the horizon.
    pub fn ci_at(&self, horizon: u32, z: f64) -> (f64, f64) {
        let rate = self.rate_at(horizon);
        let spread = z * self.sigma * (horizon as f64).sqrt();
        ((rate - spread).max(0.0), rate + spread)
    }
}

/// A fitted model: one [`NetworkForecast`] per series network, in
/// network order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForecastModel {
    /// The configuration the model was fit with.
    pub config: ForecastConfig,
    /// Per-network state, sorted by `network`.
    pub forecasts: Vec<NetworkForecast>,
}

impl ForecastModel {
    /// Fit on the whole series.
    pub fn fit(series: &DailySeries, config: &ForecastConfig, pool: &Executor) -> ForecastModel {
        ForecastModel::fit_prefix(series, series.days(), config, pool)
    }

    /// Fit on the first `days` observations of each network (the
    /// train/test split [`crate::eval`] uses). Per-network fits run on
    /// `pool`; the spatial blend is a sequential pass over the indexed
    /// results, so output is independent of thread count.
    pub fn fit_prefix(
        series: &DailySeries,
        days: usize,
        config: &ForecastConfig,
        pool: &Executor,
    ) -> ForecastModel {
        let days = days.min(series.days());
        let networks = series.networks();
        let raw: Vec<(f64, f64, f64)> =
            pool.run_indexed(networks.len(), |i| holt_fit(&series.row(i)[..days], config));

        let w = config.neighbor_weight.clamp(0.0, 0.99);
        let forecasts = networks
            .iter()
            .enumerate()
            .map(|(i, &network)| {
                let (level, trend, sigma) = raw[i];
                // Spatial term: mean state of the adjacent /16s (prefix
                // ±1) that appear in the series. Networks are sorted, so
                // adjacency is a neighbor-index check.
                let mut acc = (0.0, 0.0, 0usize);
                if i > 0 && networks[i - 1] + 1 == network {
                    acc = (acc.0 + raw[i - 1].0, acc.1 + raw[i - 1].1, acc.2 + 1);
                }
                if i + 1 < networks.len() && networks[i + 1] == network + 1 {
                    acc = (acc.0 + raw[i + 1].0, acc.1 + raw[i + 1].1, acc.2 + 1);
                }
                let (level, trend) = if acc.2 > 0 {
                    let n = acc.2 as f64;
                    (
                        (1.0 - w) * level + w * acc.0 / n,
                        (1.0 - w) * trend + w * acc.1 / n,
                    )
                } else {
                    (level, trend)
                };
                NetworkForecast {
                    network,
                    level,
                    trend,
                    sigma,
                    score_half_life: score_half_life(level, trend),
                }
            })
            .collect();
        ForecastModel {
            config: config.clone(),
            forecasts,
        }
    }
}

/// Days until `level + trend·d` reaches `level / 2`; capped, and the cap
/// when the rate is flat or growing.
pub fn score_half_life(level: f64, trend: f64) -> f64 {
    if trend < -1e-12 && level > 0.0 {
        (level / (-2.0 * trend)).min(HALF_LIFE_CAP_DAYS)
    } else {
        HALF_LIFE_CAP_DAYS
    }
}

/// Holt's linear method with half-life-parameterized smoothing factors.
/// Returns `(level, trend, residual_sigma)` after the last observation.
fn holt_fit(row: &[f64], config: &ForecastConfig) -> (f64, f64, f64) {
    let alpha = 1.0 - 0.5f64.powf(1.0 / config.level_half_life.max(1.0));
    let beta = 1.0 - 0.5f64.powf(1.0 / config.trend_half_life.max(1.0));
    let mut level = row.first().copied().unwrap_or(0.0);
    let mut trend = 0.0;
    let mut var = 0.0;
    for &y in row.iter().skip(1) {
        let predicted = level + trend;
        let resid = y - predicted;
        var = (1.0 - alpha) * var + alpha * resid * resid;
        let prev_level = level;
        level = alpha * y + (1.0 - alpha) * predicted;
        trend = beta * (level - prev_level) + (1.0 - beta) * trend;
    }
    (level.max(0.0), trend, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use unclean_core::{DateRange, Day};
    use unclean_netmodel::Infection;
    use unclean_stats::SeedTree;

    fn series_of(infections: &[Infection], days: i32) -> DailySeries {
        DailySeries::from_infections(
            infections,
            DateRange::new(Day(0), Day(days - 1)),
            1.0,
            &SeedTree::new(1),
        )
    }

    fn host_block(net: u32, hosts: u32, start: i32, end: i32) -> Vec<Infection> {
        (0..hosts)
            .map(|i| Infection {
                addr: (net << 16) | i,
                start,
                end,
                recruited: false,
                channel: 0,
            })
            .collect()
    }

    #[test]
    fn level_tracks_steady_rate_and_trend_sees_decay() {
        // Network 0x0901: steady 40 hosts. Network 0x0B02: hosts drop off
        // halfway (staggered cleanups ⇒ downward trend); the series ends
        // mid-decay so level is still positive while trend is negative.
        let mut infections = host_block(0x0901, 40, 0, 59);
        for (i, inf) in host_block(0x0B02, 40, 0, 59).iter().enumerate() {
            let mut inf = *inf;
            inf.end = 30 + (i as i32) % 20;
            infections.push(inf);
        }
        let series = series_of(&infections, 45);
        let model = ForecastModel::fit(&series, &ForecastConfig::default(), &Executor::new(1));
        let steady = model.forecasts[0];
        let decaying = model.forecasts[1];
        assert!((steady.level - 40.0).abs() < 2.0, "level {}", steady.level);
        assert!(steady.trend.abs() < 0.5, "steady trend {}", steady.trend);
        assert!(decaying.trend < -0.2, "decay trend {}", decaying.trend);
        assert!(decaying.score_half_life < HALF_LIFE_CAP_DAYS);
        assert!(steady.score_half_life == HALF_LIFE_CAP_DAYS);
        // Rates project the trend and never go negative.
        assert!(decaying.rate_at(400) == 0.0);
        let (lo, hi) = steady.ci_at(7, 1.96);
        assert!(lo <= steady.rate_at(7) && steady.rate_at(7) <= hi);
    }

    #[test]
    fn neighbor_term_pulls_adjacent_blocks_together() {
        // 0x0901 is hot; 0x0902 is adjacent and quiet; 0x0B02 is far and
        // quiet. The spatial term raises only the adjacent one.
        let mut infections = host_block(0x0901, 50, 0, 39);
        infections.extend(host_block(0x0902, 2, 0, 39));
        infections.extend(host_block(0x0B02, 2, 0, 39));
        let series = series_of(&infections, 40);
        let cfg = ForecastConfig {
            neighbor_weight: 0.3,
            ..ForecastConfig::default()
        };
        let model = ForecastModel::fit(&series, &cfg, &Executor::new(1));
        let adjacent = model.forecasts[1];
        let far = model.forecasts[2];
        assert_eq!(adjacent.network, 0x0902);
        assert_eq!(far.network, 0x0B02);
        assert!(
            adjacent.level > far.level + 5.0,
            "adjacent {} vs far {}",
            adjacent.level,
            far.level
        );
    }

    #[test]
    fn fit_is_thread_count_invariant() {
        let mut infections = Vec::new();
        for net in 0..64u32 {
            infections.extend(host_block(0x0900 + net, 1 + net % 13, 0, 89));
        }
        let series = DailySeries::from_infections(
            &infections,
            DateRange::new(Day(0), Day(89)),
            0.4,
            &SeedTree::new(3),
        );
        let cfg = ForecastConfig::default();
        let one = ForecastModel::fit(&series, &cfg, &Executor::new(1));
        let eight = ForecastModel::fit(&series, &cfg, &Executor::new(8));
        assert_eq!(one, eight);
    }
}
