//! Remediation what-if runs.
//!
//! The AbuseHUB question, answered on the synthetic world: if the worst
//! networks are notified at day D and some comply, how fast does the
//! operational blocklist shrink, and what does the defender pay in
//! false positives meanwhile? The same seeded epidemic is replayed twice
//! — untouched, and with a [`Remediation`] campaign applied — and both
//! histories are pushed through identical period-by-period blocklist
//! construction on the deterministic executor, so the difference is
//! exactly the campaign's causal effect and every number is reproducible
//! at any thread count.

use std::collections::BTreeMap;

use crossbeam::executor::Executor;
use serde::{Deserialize, Serialize};
use unclean_core::{DateRange, Day};
use unclean_netmodel::population::CascadeConfig;
use unclean_netmodel::randutil::uniform_hash;
use unclean_netmodel::{
    calibrate_base_hazard, generate_infections, ChannelDirectory, CompromiseConfig, Infection,
    Remediation, RemediationOutcome, World, WorldConfig,
};
use unclean_stats::SeedTree;

use crate::series::DailySeries;

/// What-if run tunables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimulateConfig {
    /// World/epidemic scale in `(0, 1]` (0.02 ≈ smoke).
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Simulated days (burn-in excluded).
    pub days: u32,
    /// Campaign day (offset into the span).
    pub remediate_day: i32,
    /// Probability a notified network complies.
    pub compliance: f64,
    /// Hygiene lift for complying networks.
    pub hygiene_lift: f64,
    /// How many worst-hygiene /16s the campaign targets.
    pub targets: usize,
    /// Blocklist rebuild period (days).
    pub period_days: u32,
    /// Reported host-days in a period required to list a /24.
    pub block_threshold: u32,
    /// Per-(host, day) reporting probability.
    pub report_prob: f64,
    /// Worker threads (0 = per core).
    pub threads: usize,
}

impl Default for SimulateConfig {
    fn default() -> SimulateConfig {
        SimulateConfig {
            scale: 0.02,
            seed: 42,
            days: 280,
            remediate_day: 140,
            compliance: 0.8,
            hygiene_lift: 0.7,
            targets: 24,
            period_days: 28,
            block_threshold: 3,
            report_prob: 0.35,
            threads: 0,
        }
    }
}

/// One blocklist rebuild period, both arms side by side.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodRow {
    /// First day of the period.
    pub start_day: i32,
    /// /24s listed without the campaign.
    pub baseline_blocks: usize,
    /// /24s listed with the campaign.
    pub treated_blocks: usize,
    /// Affinity-weighted benign hosts caught by the baseline list (the
    /// §6 false-positive cost proxy).
    pub baseline_fp_cost: f64,
    /// Same, with the campaign.
    pub treated_fp_cost: f64,
}

/// Everything a what-if run measured.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimulateReport {
    /// The run's configuration.
    pub config: SimulateConfig,
    /// What the campaign changed in the infection history.
    pub outcome: RemediationOutcome,
    /// Per-period blocklists, first to last.
    pub periods: Vec<PeriodRow>,
    /// Treated/baseline blocklist-size ratio over the last period
    /// (< 1 = the campaign shrank the list).
    pub blocklist_decay: f64,
    /// Treated/baseline false-positive cost ratio over the last period.
    pub fp_cost_decay: f64,
    /// Days after the campaign until the targeted networks' smoothed
    /// daily report count halves (None = never within the span).
    pub score_half_life_days: Option<u32>,
}

/// Run the what-if: generate one seeded epidemic, apply the campaign to
/// a copy, and measure both arms.
pub fn run(config: &SimulateConfig) -> SimulateReport {
    let seeds = SeedTree::new(config.seed);
    let world_cfg = WorldConfig {
        cascade: CascadeConfig {
            target_hosts: ((1_500_000.0 * config.scale) as usize).max(20_000),
            ..CascadeConfig::default()
        },
        ..WorldConfig::default()
    };
    let world = World::generate(&world_cfg, &seeds);
    let mut ccfg = CompromiseConfig::default();
    ccfg.base_hazard =
        calibrate_base_hazard(&world, &ccfg, (150_000.0 * config.scale).max(500.0), 14.0);
    let channels = ChannelDirectory::generate(&world, &ccfg, &seeds);
    let span = DateRange::new(Day(0), Day(config.days as i32 - 1));
    let baseline = generate_infections(&world, &channels, span, &ccfg, &seeds);

    let campaign = Remediation::targeting_worst(
        &world,
        config.targets,
        Day(config.remediate_day),
        config.compliance,
        config.hygiene_lift,
    );
    let mut treated_world = world.clone();
    let mut treated = baseline.clone();
    let outcome = campaign.apply(&mut treated_world, &mut treated, &ccfg, &seeds);

    // Period-by-period blocklists, one executor job per (period, arm).
    let pool = Executor::new(config.threads);
    let period_days = config.period_days.max(1) as i32;
    let period_count = (config.days as i32 + period_days - 1) / period_days;
    let affinity_hosts = block_affinity_index(&world);
    let arms: [&[Infection]; 2] = [&baseline, &treated];
    let per_arm: Vec<(usize, f64)> = pool.run_indexed(period_count as usize * 2, |job| {
        let period = (job / 2) as i32;
        let infections = arms[job % 2];
        let range = DateRange::new(
            Day(period * period_days),
            Day(((period + 1) * period_days - 1).min(span.end.0)),
        );
        period_blocklist(infections, &range, config, &seeds, &affinity_hosts)
    });
    let periods: Vec<PeriodRow> = (0..period_count as usize)
        .map(|p| PeriodRow {
            start_day: p as i32 * period_days,
            baseline_blocks: per_arm[p * 2].0,
            treated_blocks: per_arm[p * 2 + 1].0,
            baseline_fp_cost: per_arm[p * 2].1,
            treated_fp_cost: per_arm[p * 2 + 1].1,
        })
        .collect();

    let last = periods.last().expect("at least one period");
    let blocklist_decay = last.treated_blocks as f64 / last.baseline_blocks.max(1) as f64;
    let fp_cost_decay = if last.baseline_fp_cost > 0.0 {
        last.treated_fp_cost / last.baseline_fp_cost
    } else {
        1.0
    };

    let score_half_life_days =
        targeted_score_half_life(&treated, span, config, &seeds, &campaign.targets);

    SimulateReport {
        config: config.clone(),
        outcome,
        periods,
        blocklist_decay,
        fp_cost_decay,
        score_half_life_days,
    }
}

/// Per-/24 `(affinity, hosts)` for the false-positive cost: blocking a
/// /24 costs its legitimate visit mass, affinity × active hosts.
fn block_affinity_index(world: &World) -> BTreeMap<u32, f64> {
    (0..world.population.block_count())
        .map(|i| {
            let block = world.population.block(i);
            (
                block.prefix,
                world.block_affinity(i) * block.hosts.len() as f64,
            )
        })
        .collect()
}

/// Build one period's blocklist for one arm: /24s whose reported
/// host-days in the period reach the threshold. Returns
/// `(listed /24s, false-positive cost)`.
fn period_blocklist(
    infections: &[Infection],
    range: &DateRange,
    config: &SimulateConfig,
    seeds: &SeedTree,
    affinity_hosts: &BTreeMap<u32, f64>,
) -> (usize, f64) {
    // Identical hashing to `DailySeries::from_infections`, so the
    // blocklist arm and the forecaster see the same reports.
    let seeds = seeds.child("report-series");
    let mut per_block: BTreeMap<u32, u32> = BTreeMap::new();
    for inf in infections {
        let lo = inf.start.max(range.start.0);
        let hi = inf.end.min(range.end.0);
        for day in lo..=hi {
            if uniform_hash(&seeds, inf.addr, day, "report") < config.report_prob {
                *per_block.entry(inf.addr >> 8).or_insert(0) += 1;
            }
        }
    }
    let listed: Vec<u32> = per_block
        .into_iter()
        .filter(|&(_, n)| n >= config.block_threshold)
        .map(|(prefix, _)| prefix)
        .collect();
    let fp_cost = listed
        .iter()
        .map(|prefix| affinity_hosts.get(prefix).copied().unwrap_or(0.0))
        .sum();
    (listed.len(), fp_cost)
}

/// Days until the targeted networks' 7-day-smoothed report count halves
/// relative to the week before the campaign.
fn targeted_score_half_life(
    treated: &[Infection],
    span: DateRange,
    config: &SimulateConfig,
    seeds: &SeedTree,
    targets: &[u32],
) -> Option<u32> {
    let mut targets = targets.to_vec();
    targets.sort_unstable();
    let targeted: Vec<Infection> = treated
        .iter()
        .filter(|inf| targets.binary_search(&(inf.addr >> 16)).is_ok())
        .copied()
        .collect();
    if targeted.is_empty() {
        return None;
    }
    let series = DailySeries::from_infections(&targeted, span, config.report_prob, seeds);
    let day_idx = |d: i32| (d - span.start.0) as usize;
    let ma = |center: i32| -> f64 {
        let lo = center.max(span.start.0);
        let hi = (center + 6).min(span.end.0);
        if hi < lo {
            return 0.0;
        }
        (lo..=hi).map(|d| series.day_total(day_idx(d))).sum::<f64>() / (hi - lo + 1) as f64
    };
    let before = ma(config.remediate_day - 7);
    if before <= 0.0 {
        return None;
    }
    (config.remediate_day..=span.end.0)
        .find(|&d| ma(d) <= before / 2.0)
        .map(|d| (d - config.remediate_day) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke() -> SimulateConfig {
        SimulateConfig {
            scale: 0.01,
            days: 160,
            remediate_day: 80,
            compliance: 1.0,
            ..SimulateConfig::default()
        }
    }

    #[test]
    fn campaign_shrinks_the_blocklist_and_fp_cost() {
        let report = run(&smoke());
        assert!(report.outcome.complied > 0);
        let pre = &report.periods[1];
        assert_eq!(
            pre.baseline_blocks, pre.treated_blocks,
            "pre-campaign periods are identical"
        );
        assert!(
            report.blocklist_decay < 0.9,
            "campaign shrinks the final blocklist: {}",
            report.blocklist_decay
        );
        assert!(report.fp_cost_decay <= 1.0 + 1e-9);
        let half = report
            .score_half_life_days
            .expect("full-compliance campaign halves scores");
        assert!(half < 60, "score half-life {half} days");
    }

    #[test]
    fn run_is_deterministic_across_thread_counts() {
        let mut one = smoke();
        one.threads = 1;
        let mut eight = smoke();
        eight.threads = 8;
        let a = run(&one);
        let b = run(&eight);
        assert_eq!(a.periods, b.periods);
        assert_eq!(a.blocklist_decay, b.blocklist_decay);
        assert_eq!(a.score_half_life_days, b.score_half_life_days);
    }
}
