//! Integration tests for the crash-safe experiment supervisor: fault
//! isolation (a panicking experiment doesn't take the run down), atomic
//! result persistence (no observable `.tmp` leftovers, no torn JSON), the
//! manifest, and `--resume` re-running only what failed or rotted on disk.

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::process::Output;
use unclean_bench::runner::{
    atomic_write, can_skip, Fingerprint, Manifest, OutputFile, RunRecord, RunStatus,
};
use unclean_flowgen::ArchiveTelemetry;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("unclean-supervisor").join(name);
    // Start from scratch: stale results would make resume assertions lie.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// No `.tmp` spill file may ever be observable after a run completes.
fn assert_no_tmp_leftovers(dir: &Path) {
    for entry in std::fs::read_dir(dir).expect("read dir") {
        let path = entry.expect("entry").path();
        assert!(
            path.extension().map(|e| e != "tmp").unwrap_or(true),
            "leftover spill file: {}",
            path.display()
        );
    }
}

// ---------------------------------------------------------------------------
// Manifest + resume units (pure, no scenario generation)
// ---------------------------------------------------------------------------

proptest! {
    #[test]
    fn manifest_serialization_round_trips(
        seed in any::<u64>(),
        scale in 0.0001f64..1.0,
        trials in 1u64..10_000,
        attempts in 0u64..5,
        duration in 0.0f64..100_000.0,
        status_sel in 0u8..3,
        n_outputs in 0usize..4,
        hash_seed in any::<u64>(),
    ) {
        let status = match status_sel {
            0 => RunStatus::Ok,
            1 => RunStatus::Failed,
            _ => RunStatus::Resumed,
        };
        let outputs: Vec<OutputFile> = (0..n_outputs)
            .map(|i| OutputFile {
                file: format!("exp{i}.json"),
                hash: format!("{:016x}", hash_seed.wrapping_add(i as u64)),
            })
            .collect();
        let error = if status == RunStatus::Failed {
            // Panic payloads arrive with newlines and quotes; they must
            // survive the JSON round trip byte-for-byte.
            Some("assertion failed:\n  \"support\" was 0.93 < 0.95".to_string())
        } else {
            None
        };
        let manifest = Manifest {
            fingerprint: Fingerprint {
                crate_version: "0.1.0".into(),
                scale,
                seed,
                trials,
            },
            runs: vec![RunRecord {
                id: format!("exp-{}", seed % 10),
                status,
                attempts,
                duration_secs: duration,
                error,
                outputs,
                telemetry: None,
                peak_rss_kb: seed.is_multiple_of(2).then(|| (seed % (1 << 20)) + 1024),
            }],
            telemetry: Some(ArchiveTelemetry {
                datagrams: seed % 1_000,
                flows: seed % 30_000,
                lost_flows: seed % 100,
                sequence_gaps: seed % 7,
                reordered: seed % 3,
                recovered_flows: seed % 11,
                duplicates: seed % 5,
            }),
        };
        let text = serde_json::to_string_pretty(&manifest).expect("serialize");
        let back: Manifest = serde_json::from_str(&text).expect("parse back");
        prop_assert_eq!(back, manifest);
    }
}

#[test]
fn simulated_crash_truncated_tmp_is_invisible_to_readers() {
    // A crash mid-spill leaves a truncated .tmp; the final file must be
    // untouched and the next atomic write must clobber the wreckage.
    let dir = tmp_dir("crash-tmp");
    let path = dir.join("fig4.json");
    atomic_write(&path, b"{\"complete\": true}").expect("first write");
    // Crash: half a JSON document in the spill file.
    std::fs::write(dir.join("fig4.json.tmp"), "{\"complete\": fal").expect("simulate crash");
    // The durable file is still the last complete write.
    let text = std::fs::read_to_string(&path).expect("read");
    serde_json::from_str::<serde_json::Value>(&text).expect("final file parses");
    // Recovery: the next write replaces both.
    atomic_write(&path, b"{\"complete\": 2}").expect("recovery write");
    assert_no_tmp_leftovers(&dir);
    assert_eq!(
        std::fs::read_to_string(&path).expect("read"),
        "{\"complete\": 2}"
    );
}

#[test]
fn resume_rejects_corrupt_final_json() {
    // A result file truncated *after* a successful run (disk rot, hand
    // editing) must fail hash verification and force a re-run.
    let dir = tmp_dir("corrupt-final");
    let path = dir.join("table2.json");
    let hash = atomic_write(&path, b"{\"rows\": [1, 2, 3]}").expect("write");
    let fingerprint = Fingerprint {
        crate_version: env!("CARGO_PKG_VERSION").to_string(),
        scale: 0.02,
        seed: 1,
        trials: 10,
    };
    let manifest = Manifest {
        fingerprint: fingerprint.clone(),
        runs: vec![RunRecord {
            id: "table2".into(),
            status: RunStatus::Ok,
            attempts: 1,
            duration_secs: 1.0,
            error: None,
            outputs: vec![OutputFile {
                file: "table2.json".into(),
                hash,
            }],
            telemetry: None,
            peak_rss_kb: None,
        }],
        telemetry: None,
    };
    assert!(
        can_skip(&manifest, &fingerprint, "table2", &dir),
        "intact file skips"
    );
    let full = std::fs::read(&path).expect("read");
    std::fs::write(&path, &full[..full.len() / 2]).expect("truncate in place");
    assert!(
        !can_skip(&manifest, &fingerprint, "table2", &dir),
        "torn file re-runs"
    );
    std::fs::remove_file(&path).expect("remove");
    assert!(
        !can_skip(&manifest, &fingerprint, "table2", &dir),
        "missing file re-runs"
    );
}

// ---------------------------------------------------------------------------
// End-to-end: the run_all binary under an injected panic
// ---------------------------------------------------------------------------

fn run_all(out_dir: &Path, extra: &[&str]) -> Output {
    let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_run_all"));
    cmd.args(["--scale", "0.001", "--trials", "20", "--out"])
        .arg(out_dir)
        .args(["--only", "table1,selftest", "--self-test-panic"])
        .args(extra);
    cmd.output().expect("spawn run_all")
}

fn load_manifest(dir: &Path) -> Manifest {
    Manifest::load(dir).expect("manifest present and well-formed")
}

#[test]
fn panic_isolation_partial_results_and_resume() {
    let dir = tmp_dir("e2e");

    // Pass 1: the injected experiment panics (no retries). The run must
    // finish, persist table1, record the failure, and exit 3.
    let out = run_all(&dir, &[]);
    assert_eq!(out.status.code(), Some(3), "partial run exits 3");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("injected panic"),
        "failure summary names the panic: {stderr}"
    );
    assert_no_tmp_leftovers(&dir);

    let table1_text = std::fs::read_to_string(dir.join("table1.json")).expect("table1 persisted");
    serde_json::from_str::<serde_json::Value>(&table1_text).expect("table1 is valid JSON");
    let all: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(dir.join("all.json")).expect("all.json"))
            .expect("all.json is valid JSON");
    assert!(
        all.get("table1").is_some(),
        "partial all.json keeps the successes"
    );
    assert!(
        all.get("selftest").is_none(),
        "failed experiment absent from all.json"
    );

    let manifest = load_manifest(&dir);
    let table1 = manifest.record("table1").expect("table1 recorded");
    assert_eq!(table1.status, RunStatus::Ok);
    assert!(!table1.outputs.is_empty());
    let selftest = manifest.record("selftest").expect("selftest recorded");
    assert_eq!(selftest.status, RunStatus::Failed);
    assert_eq!(selftest.attempts, 1);
    assert!(
        selftest
            .error
            .as_deref()
            .unwrap_or("")
            .contains("injected panic"),
        "manifest records the panic message: {:?}",
        selftest.error
    );
    assert!(
        manifest.telemetry.is_some(),
        "archive audit lands in the manifest"
    );

    // Pass 2: --resume with a retry budget. table1 must be skipped
    // (outputs verify), selftest re-run and succeed on its retry.
    let out = run_all(&dir, &["--resume", "--retries", "1"]);
    assert_eq!(out.status.code(), Some(0), "resume completes the run");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("table1: resumed"),
        "table1 skipped: {stderr}"
    );
    assert!(
        stderr.contains("selftest: retry 1/1"),
        "selftest retried: {stderr}"
    );

    let manifest = load_manifest(&dir);
    assert_eq!(
        manifest.record("table1").expect("table1").status,
        RunStatus::Resumed
    );
    let selftest = manifest.record("selftest").expect("selftest");
    assert_eq!(selftest.status, RunStatus::Ok);
    assert_eq!(
        selftest.attempts, 2,
        "panicked once, succeeded on the retry"
    );
    let all: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(dir.join("all.json")).expect("all.json"))
            .expect("valid");
    assert!(
        all.get("table1").is_some(),
        "resumed results rebuilt into all.json"
    );
    assert!(all.get("selftest").is_some());

    // Telemetry satellite files: metrics.prom must be valid Prometheus
    // text, telemetry.json must parse back into a Snapshot, and a clean
    // synthetic run must report zero quarantined lines / store drops.
    let prom_text = std::fs::read_to_string(dir.join("metrics.prom")).expect("metrics.prom");
    let exposition = unclean_telemetry::prom::parse(&prom_text).expect("metrics.prom parses");
    assert_eq!(
        exposition.counter_u64("unclean_store_flows_dropped"),
        Some(0),
        "clean run drops nothing"
    );
    assert_eq!(
        exposition.counter_u64("unclean_ingest_quarantined_lines"),
        Some(0),
        "clean run quarantines nothing"
    );
    let tel_text = std::fs::read_to_string(dir.join("telemetry.json")).expect("telemetry.json");
    let run_snap: unclean_telemetry::Snapshot =
        serde_json::from_str(&tel_text).expect("telemetry.json is a Snapshot");
    assert!(
        run_snap.counters.get("detect.flows_ingested").copied() > Some(0),
        "run-level snapshot carries the pipeline ingest counter"
    );

    // Every successful manifest record carries a telemetry object with at
    // least the supervised "run" stage duration and the shared pipeline
    // ingest counters.
    let selftest_tel = selftest
        .telemetry
        .as_ref()
        .expect("successful record carries telemetry");
    assert!(
        selftest_tel.spans.contains_key("run"),
        "record telemetry has the run-stage span"
    );
    assert!(
        selftest_tel.counters.get("detect.flows_ingested").copied() > Some(0),
        "record telemetry includes the shared pipeline context"
    );

    // Pass 3: corrupt table1.json on disk; --resume must re-run ONLY
    // table1 (hash mismatch) and skip selftest (now verified Ok).
    std::fs::write(dir.join("table1.json"), "{ torn").expect("corrupt");
    let out = run_all(&dir, &["--resume", "--retries", "1"]);
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("===== table1"),
        "corrupt result re-runs: {stderr}"
    );
    assert!(
        stderr.contains("selftest: resumed"),
        "intact result skips: {stderr}"
    );
    let repaired = std::fs::read_to_string(dir.join("table1.json")).expect("rewritten");
    serde_json::from_str::<serde_json::Value>(&repaired).expect("repaired JSON parses");
    assert_no_tmp_leftovers(&dir);
}

#[test]
fn usage_errors_exit_2() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_run_all"))
        .args(["--scale", "not-a-float"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--scale"));

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_run_all"))
        .args(["--frobnicate"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_run_all"))
        .args(["--only", "no-such-experiment", "--no-out"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2));
}
