//! The resilient experiment supervisor.
//!
//! `run_all` used to be a straight-line loop: one panicking experiment (or
//! a `kill -9` mid-write) lost the whole evening's results and left
//! truncated JSON behind. This module makes the harness crash-safe:
//!
//! * every experiment runs on its own thread behind `catch_unwind`, with a
//!   configurable deadline and retry budget — a panic or hang is recorded
//!   and the remaining experiments still run;
//! * every result file is written atomically (`NAME.json.tmp` → fsync →
//!   rename), so a crash at any instant leaves either the old file or the
//!   new one, never a torn one;
//! * a `results/manifest.json` records per-experiment status, attempts,
//!   duration, error text and the content hash of every output file;
//! * `--resume` fingerprints the run (scale, seed, trials, crate version)
//!   against the manifest and re-runs only experiments whose recorded
//!   outputs are missing, corrupt, or from a failed attempt;
//! * experiments are scheduled over a (currently edge-free) dependency
//!   DAG and run concurrently on `--threads` workers, each in its own
//!   [`ExperimentSlot`] so one experiment's retries and telemetry never
//!   bleed into another's. Scheduling never affects results: every
//!   experiment derives its randomness from its own seed, and outputs,
//!   `all.json` and the manifest are emitted in registry order whatever
//!   order the workers finished in.
//!
//! Retries perturb only the *experiment-local* seed (via
//! [`ExperimentSlot::experiment_seed`]); the scenario seed — and hence
//! the generated world every experiment shares — is never changed.

use crate::{BenchOpts, ExperimentContext, ExperimentSlot};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::sync::{mpsc, Condvar, Mutex};
use std::time::{Duration, Instant};
use unclean_flowgen::ArchiveTelemetry;
use unclean_netmodel::Scenario;
use unclean_telemetry::{prom, Registry, Snapshot};

/// Everything that can go wrong in the harness outside an experiment's own
/// assertions: bad usage, result I/O, serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// Bad command-line usage (exit code 2).
    Usage(String),
    /// Filesystem failure while persisting or reading results.
    Io {
        /// The path involved.
        path: String,
        /// The underlying error, rendered.
        message: String,
    },
    /// A result value failed to serialize.
    Serialize(String),
    /// The experiment panicked (payload rendered).
    Panicked(String),
    /// The experiment exceeded its deadline.
    DeadlineExceeded {
        /// The configured deadline, in seconds.
        secs: u64,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Usage(msg) => write!(f, "usage error: {msg}"),
            RunError::Io { path, message } => write!(f, "I/O error on {path}: {message}"),
            RunError::Serialize(msg) => write!(f, "serialization error: {msg}"),
            RunError::Panicked(msg) => write!(f, "panicked: {msg}"),
            RunError::DeadlineExceeded { secs } => write!(f, "deadline of {secs}s exceeded"),
        }
    }
}

impl std::error::Error for RunError {}

impl RunError {
    /// Wrap an `io::Error` with the path it struck.
    pub fn io(path: &Path, e: std::io::Error) -> RunError {
        RunError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        }
    }
}

/// Exit code when every experiment succeeded.
pub const EXIT_OK: u8 = 0;
/// Exit code for command-line usage errors.
pub const EXIT_USAGE: u8 = 2;
/// Exit code when the run completed but some experiments failed.
pub const EXIT_PARTIAL: u8 = 3;

// ---------------------------------------------------------------------------
// Atomic persistence
// ---------------------------------------------------------------------------

/// FNV-1a over a byte stream; the manifest stores it as 16 hex digits.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hash a file's contents the way the manifest records them.
pub fn hash_file(path: &Path) -> Result<String, RunError> {
    let bytes = std::fs::read(path).map_err(|e| RunError::io(path, e))?;
    Ok(format!("{:016x}", fnv1a(&bytes)))
}

/// Write `bytes` to `path` atomically: spill to `path + ".tmp"`, fsync,
/// rename over the destination. A crash at any point leaves either the old
/// file or the new one — never a truncated hybrid. Returns the content
/// hash in manifest form.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<String, RunError> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| RunError::io(dir, e))?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut file = std::fs::File::create(&tmp).map_err(|e| RunError::io(&tmp, e))?;
        std::io::Write::write_all(&mut file, bytes).map_err(|e| RunError::io(&tmp, e))?;
        file.sync_all().map_err(|e| RunError::io(&tmp, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| RunError::io(path, e))?;
    // Best-effort directory fsync so the rename itself survives power loss.
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(format!("{:016x}", fnv1a(bytes)))
}

/// Serialize `value` pretty-printed and write it atomically.
pub fn atomic_write_json<T: Serialize + ?Sized>(
    path: &Path,
    value: &T,
) -> Result<String, RunError> {
    let text =
        serde_json::to_string_pretty(value).map_err(|e| RunError::Serialize(e.to_string()))?;
    let mut bytes = text.into_bytes();
    bytes.push(b'\n');
    atomic_write(path, &bytes)
}

// ---------------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------------

/// One output file an experiment produced, with its content hash.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutputFile {
    /// File name inside the results directory.
    pub file: String,
    /// FNV-1a content hash (16 hex digits).
    pub hash: String,
}

/// How an experiment's supervised run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunStatus {
    /// Completed and all outputs persisted.
    Ok,
    /// Every attempt failed; `error` holds the last failure.
    Failed,
    /// Skipped under `--resume`: prior outputs verified intact on disk.
    Resumed,
}

/// Per-experiment record in the manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Experiment id (registry key and `results/<id>.json` stem).
    pub id: String,
    /// Final status.
    pub status: RunStatus,
    /// Attempts consumed (0 when resumed).
    pub attempts: u64,
    /// Wall-clock seconds across all attempts.
    pub duration_secs: f64,
    /// Last error, rendered, when `status` is `Failed`.
    pub error: Option<String>,
    /// Output files with content hashes (resume verifies these).
    pub outputs: Vec<OutputFile>,
    /// Telemetry for the successful attempt: the shared
    /// generation/pipeline context merged with this experiment's own
    /// spans and counters. `None` when telemetry is off or the
    /// experiment failed.
    pub telemetry: Option<Snapshot>,
    /// Process peak RSS (`VmHWM`, kB) sampled when this experiment
    /// finished. The high-water mark is process-wide and monotonic, so
    /// this is "peak so far", not the experiment's own footprint; the
    /// maximum across records is the run's true peak. `None` off Linux
    /// or in manifests written before this field existed.
    pub peak_rss_kb: Option<u64>,
}

/// The run fingerprint: results are only comparable/resumable when every
/// field matches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fingerprint {
    /// Harness crate version.
    pub crate_version: String,
    /// Scenario scale.
    pub scale: f64,
    /// Master scenario seed.
    pub seed: u64,
    /// Control-ensemble trials.
    pub trials: u64,
}

impl Fingerprint {
    /// The fingerprint of the current process's options.
    pub fn of(opts: &BenchOpts) -> Fingerprint {
        Fingerprint {
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            scale: opts.scale,
            seed: opts.seed,
            trials: opts.trials as u64,
        }
    }
}

/// `results/manifest.json`: the supervisor's full account of a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Fingerprint of the run that produced these results.
    pub fingerprint: Fingerprint,
    /// Per-experiment records, in registry order.
    pub runs: Vec<RunRecord>,
    /// Flow-archive audit for this run (loss must be visible, not silent).
    pub telemetry: Option<ArchiveTelemetry>,
}

impl Manifest {
    /// Load a manifest, or `None` when absent/corrupt (a corrupt manifest
    /// just means nothing can be resumed — never an abort).
    pub fn load(dir: &Path) -> Option<Manifest> {
        let text = std::fs::read_to_string(dir.join("manifest.json")).ok()?;
        serde_json::from_str(&text).ok()
    }

    /// Persist atomically as `manifest.json` in `dir`.
    pub fn store(&self, dir: &Path) -> Result<(), RunError> {
        atomic_write_json(&dir.join("manifest.json"), self)?;
        Ok(())
    }

    /// The record for `id`, if present.
    pub fn record(&self, id: &str) -> Option<&RunRecord> {
        self.runs.iter().find(|r| r.id == id)
    }
}

/// Can `id` be skipped under `--resume`? Yes only when the previous run
/// succeeded and every recorded output still exists with a matching
/// content hash — a truncated or hand-edited file forces a re-run.
pub fn can_skip(manifest: &Manifest, fingerprint: &Fingerprint, id: &str, dir: &Path) -> bool {
    if manifest.fingerprint != *fingerprint {
        return false;
    }
    let Some(record) = manifest.record(id) else {
        return false;
    };
    if record.status == RunStatus::Failed || record.outputs.is_empty() {
        return false;
    }
    record.outputs.iter().all(|out| {
        hash_file(&dir.join(&out.file))
            .map(|h| h == out.hash)
            .unwrap_or(false)
    })
}

// ---------------------------------------------------------------------------
// Supervision
// ---------------------------------------------------------------------------

/// Knobs for the supervisor, parsed from `run_all`'s extra flags.
#[derive(Debug, Clone, Default)]
pub struct RunnerConfig {
    /// Skip experiments whose on-disk results verify against the manifest.
    pub resume: bool,
    /// Extra attempts after the first failure (each perturbs the
    /// experiment-local seed).
    pub retries: u64,
    /// Per-experiment wall-clock deadline.
    pub deadline: Option<Duration>,
    /// Restrict to these experiment ids (registry order preserved).
    pub only: Option<Vec<String>>,
    /// Append a deliberately panicking experiment (integration-test hook:
    /// it panics on attempt 0 and succeeds on any retry).
    pub self_test_panic: bool,
}

impl RunnerConfig {
    /// Parse the supervisor flags out of `extra` (the args `BenchOpts`
    /// didn't recognize): `--resume`, `--retries N`, `--deadline SECS`,
    /// `--only id1,id2`, `--self-test-panic`.
    pub fn parse(extra: &[String]) -> Result<RunnerConfig, RunError> {
        let mut cfg = RunnerConfig::default();
        let mut i = 0;
        while i < extra.len() {
            let value = |i: usize| -> Result<&String, RunError> {
                extra
                    .get(i + 1)
                    .ok_or_else(|| RunError::Usage(format!("missing value for {}", extra[i])))
            };
            match extra[i].as_str() {
                "--resume" => {
                    cfg.resume = true;
                    i += 1;
                }
                "--retries" => {
                    cfg.retries = value(i)?
                        .parse()
                        .map_err(|_| RunError::Usage("--retries takes an integer".into()))?;
                    i += 2;
                }
                "--deadline" => {
                    let secs: u64 = value(i)?
                        .parse()
                        .map_err(|_| RunError::Usage("--deadline takes whole seconds".into()))?;
                    cfg.deadline = Some(Duration::from_secs(secs));
                    i += 2;
                }
                "--only" => {
                    cfg.only = Some(value(i)?.split(',').map(|s| s.trim().to_string()).collect());
                    i += 2;
                }
                "--self-test-panic" => {
                    cfg.self_test_panic = true;
                    i += 1;
                }
                other => {
                    return Err(RunError::Usage(format!(
                        "unknown argument {other}; try --help"
                    )))
                }
            }
        }
        Ok(cfg)
    }
}

/// The integration-test experiment `--self-test-panic` appends: panics on
/// attempt 0, succeeds on any retry — exercising fault isolation, retry
/// seed perturbation, and resume in one knob.
pub fn self_test_experiment(ctx: &ExperimentSlot) -> Result<Value, RunError> {
    if ctx.attempt.load(Ordering::SeqCst) == 0 {
        panic!("injected panic (--self-test-panic, attempt 0)");
    }
    let result = serde_json::json!({
        "experiment": "selftest",
        "attempt": ctx.attempt.load(Ordering::SeqCst),
        "experiment_seed": ctx.experiment_seed(),
    });
    ctx.write_result("selftest", &result)?;
    Ok(result)
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one attempt on its own thread; a panic is caught, a deadline
/// overrun abandons the worker (it is detached, never joined).
fn supervise_attempt(
    slot: &Arc<ExperimentSlot>,
    id: &str,
    runner: crate::experiments::Runner,
    deadline: Option<Duration>,
) -> Result<Value, RunError> {
    let (tx, rx) = mpsc::channel();
    let worker_slot = Arc::clone(slot);
    let spawned = std::thread::Builder::new()
        .name(format!("exp-{id}"))
        .spawn(move || {
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| runner(&worker_slot)));
            let _ = tx.send(outcome);
        });
    let handle = match spawned {
        Ok(h) => h,
        Err(e) => return Err(RunError::Panicked(format!("spawn failed: {e}"))),
    };
    let received = match deadline {
        Some(limit) => rx.recv_timeout(limit),
        None => rx.recv().map_err(|_| mpsc::RecvTimeoutError::Disconnected),
    };
    match received {
        Ok(outcome) => {
            let _ = handle.join();
            match outcome {
                Ok(result) => result,
                Err(payload) => Err(RunError::Panicked(panic_message(payload))),
            }
        }
        Err(mpsc::RecvTimeoutError::Timeout) => Err(RunError::DeadlineExceeded {
            secs: deadline.map(|d| d.as_secs()).unwrap_or(0),
        }),
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            Err(RunError::Panicked("worker thread vanished".into()))
        }
    }
}

/// Supervise one experiment through its retry budget. Returns the record,
/// the result value when it succeeded, and the experiment-local telemetry
/// snapshot (unmerged — `run_all` prefixes and rolls it into the
/// run-level export without double-counting the shared context).
pub fn run_one(
    slot: &Arc<ExperimentSlot>,
    id: &str,
    runner: crate::experiments::Runner,
    cfg: &RunnerConfig,
) -> (RunRecord, Option<Value>, Option<Snapshot>) {
    let t0 = Instant::now();
    let mut last_error = String::new();
    for attempt in 0..=cfg.retries {
        slot.begin_attempt(attempt);
        if attempt > 0 {
            eprintln!(
                "[bench] {id}: retry {attempt}/{} (experiment seed {:#x})",
                cfg.retries,
                slot.experiment_seed()
            );
        }
        let outcome = {
            // The "run" span brackets the whole supervised attempt, so
            // every manifest record carries at least one stage duration.
            let _run_span = slot.attempt_registry().span("run");
            supervise_attempt(slot, id, runner, cfg.deadline)
        };
        match outcome {
            Ok(value) => {
                let mut outputs = slot.take_written();
                // Experiments that only wrote satellite files (or none)
                // still get a canonical `results/<id>.json` so resume has
                // something to verify and `all.json` can be rebuilt.
                if !outputs.iter().any(|o| o.file == format!("{id}.json")) {
                    match slot.write_result(id, &value) {
                        Ok(()) => outputs.extend(slot.take_written()),
                        Err(e) => {
                            last_error = e.to_string();
                            continue;
                        }
                    }
                }
                let local = if slot.registry.enabled() {
                    Some(slot.take_attempt_snapshot())
                } else {
                    None
                };
                let telemetry = local.as_ref().map(|local| {
                    let mut merged = slot.shared_context.clone();
                    merged.merge(local);
                    merged
                });
                return (
                    RunRecord {
                        id: id.to_string(),
                        status: RunStatus::Ok,
                        attempts: attempt + 1,
                        duration_secs: t0.elapsed().as_secs_f64(),
                        error: None,
                        outputs,
                        telemetry,
                        peak_rss_kb: crate::peak_rss_kb(),
                    },
                    Some(value),
                    local,
                );
            }
            Err(e) => {
                last_error = e.to_string();
                let _ = slot.take_written();
                eprintln!("[bench] {id}: attempt {} failed: {last_error}", attempt + 1);
            }
        }
    }
    (
        RunRecord {
            id: id.to_string(),
            status: RunStatus::Failed,
            attempts: cfg.retries + 1,
            duration_secs: t0.elapsed().as_secs_f64(),
            error: Some(last_error),
            outputs: Vec::new(),
            telemetry: None,
            peak_rss_kb: crate::peak_rss_kb(),
        },
        None,
        None,
    )
}

/// The flow-layer audit: archive loss accounting plus collector store
/// accounting, both recorded onto the registry the run's `metrics.prom`
/// is rendered from — one source of truth for manifest and metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowAudit {
    /// Archive datagram/flow loss accounting (read-back side).
    pub archive: ArchiveTelemetry,
    /// Flows the collector store retained.
    pub stored: u64,
    /// Flows the collector store dropped.
    pub dropped: u64,
}

/// Spool one synthetic day of border flows through the archive layer and
/// a collector [`unclean_flowgen::FlowStore`], and report what came back —
/// surfacing `lost_flows`, sequence gaps, and store drops in the manifest
/// instead of leaving flow-layer degradation silent. All counts are also
/// recorded onto `registry`.
///
/// The spool uses the v2 indexed segment format and replays it through the
/// indexed zero-copy path (CRC-verified per segment). A one-day audit is a
/// single segment, and the v2 cursor books the same gap/loss accounting as
/// the v1 reader, so the manifest telemetry values are unchanged from the
/// v1-based audit.
pub fn flow_audit(scenario: &Scenario, registry: &Registry) -> Result<FlowAudit, RunError> {
    use crossbeam::executor::Executor;
    use unclean_flowgen::{
        FlowGenerator, FlowStore, GeneratorConfig, IndexedArchive, IndexedArchiveWriter,
    };
    let spool_err = |e: &dyn std::fmt::Display| RunError::Io {
        path: "<archive spool>".into(),
        message: e.to_string(),
    };
    let model = scenario.activity();
    let generator = FlowGenerator::new(
        &scenario.observed,
        GeneratorConfig::default(),
        scenario.seeds.child("archive-audit"),
    );
    let boot = unclean_flowgen::record::EPOCH_UNIX_SECS;
    let mut span = registry.span("audit");
    let mut writer = IndexedArchiveWriter::new(Vec::new(), boot);
    let mut store = FlowStore::new(None, usize::MAX);
    store.attach_telemetry(registry);
    let day = scenario.dates.unclean_window.start;
    let mut write_error = None;
    generator.flows_on(&model, day, true, |flow| {
        store.observe(&flow);
        if write_error.is_none() {
            if let Err(e) = writer.push(&flow) {
                write_error = Some(e);
            }
        }
    });
    if let Some(e) = write_error {
        return Err(spool_err(&e));
    }
    let (bytes, _) = writer.finish().map_err(|e| spool_err(&e))?;
    let archive = IndexedArchive::open(&bytes)
        .map_err(|e| spool_err(&e))?
        .ok_or_else(|| spool_err(&"fresh spool missing v2 index"))?;
    let replay = archive
        .replay_with(&Executor::new(1), None, false, |_, cursor| {
            cursor.for_each_flow(|_| {})?;
            Ok(())
        })
        .map_err(|e| spool_err(&e))?;
    replay.telemetry.record(registry);
    let audit = FlowAudit {
        archive: replay.telemetry,
        stored: store.flows().len() as u64,
        dropped: store.dropped(),
    };
    span.field("flows", audit.archive.flows);
    Ok(audit)
}

/// [`flow_audit`] against a context's scenario and run registry,
/// returning only the archive side (the manifest's audit field).
pub fn archive_audit(ctx: &ExperimentContext) -> Result<ArchiveTelemetry, RunError> {
    flow_audit(&ctx.scenario, &ctx.registry).map(|a| a.archive)
}

/// The registry `run_all` supervises: the full experiment registry plus
/// the `--self-test-panic` injection when enabled.
fn supervised_registry(cfg: &RunnerConfig) -> Vec<crate::experiments::Experiment> {
    let mut registry = crate::experiments::all();
    if cfg.self_test_panic {
        registry.push((
            "selftest",
            "injected panic (self test)",
            self_test_experiment,
        ));
    }
    registry
}

/// Validate the supervisor config against the registry — called *before*
/// the expensive scenario generation so `--only typo` fails in
/// milliseconds, not minutes.
pub fn validate_config(cfg: &RunnerConfig) -> Result<(), RunError> {
    if let Some(only) = &cfg.only {
        let registry = supervised_registry(cfg);
        for id in only {
            if !registry.iter().any(|(rid, _, _)| rid == id) {
                return Err(RunError::Usage(format!(
                    "--only names unknown experiment {id:?}"
                )));
            }
        }
    }
    Ok(())
}

/// Dependency edges between experiments: `id` may only start once every
/// experiment named here has finished. Every current experiment is
/// independent — each consumes only the shared pre-generated
/// [`ExperimentContext`] — so the table is empty. The scheduler in
/// [`run_all`] honours it regardless, so a future derived experiment
/// (say, a summary that reads other experiments' result values) can
/// declare prerequisites without the scheduling code changing.
pub fn experiment_dependencies(_id: &str) -> &'static [&'static str] {
    &[]
}

/// One finished experiment, parked until the ordered emission pass.
type Outcome = (RunRecord, Option<Value>, Option<Snapshot>);

/// Scheduler bookkeeping shared by the worker threads.
struct SchedState {
    /// Registry indices whose dependencies have all finished, kept sorted
    /// so workers always claim the lowest index first — with one worker
    /// this reproduces the old serial registry order exactly.
    ready: Vec<usize>,
    /// Per registry index: unfinished dependencies (usize::MAX = done or
    /// not scheduled).
    waiting_on: Vec<usize>,
    /// Scheduled experiments not yet finished.
    outstanding: usize,
}

/// Run the non-resumed experiments concurrently over the dependency DAG,
/// filling `outcomes` (one slot per registry entry). Failures never stop
/// the schedule: a failed experiment counts as "finished" for its
/// dependents, which then run against whatever the shared context holds —
/// exactly the fault-isolation contract the serial loop had.
fn run_scheduled(
    ctx: &Arc<ExperimentContext>,
    registry: &[crate::experiments::Experiment],
    pending: &[usize],
    cfg: &RunnerConfig,
    outcomes: &[Mutex<Option<Outcome>>],
) {
    if pending.is_empty() {
        return;
    }
    let index_of = |id: &str| registry.iter().position(|(rid, _, _)| *rid == id);
    let mut waiting_on = vec![usize::MAX; registry.len()];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); registry.len()];
    let mut ready = Vec::new();
    for &i in pending {
        // Dependencies that were resumed (or filtered out by --only) are
        // already satisfied; only edges into still-pending work count.
        let deps: Vec<usize> = experiment_dependencies(registry[i].0)
            .iter()
            .filter_map(|d| index_of(d))
            .filter(|d| pending.contains(d))
            .collect();
        waiting_on[i] = deps.len();
        for d in deps {
            dependents[d].push(i);
        }
        if waiting_on[i] == 0 {
            ready.push(i);
        }
    }
    ready.sort_unstable();
    let state = Mutex::new(SchedState {
        ready,
        waiting_on,
        outstanding: pending.len(),
    });
    let wake = Condvar::new();
    let workers = ctx.threads.min(pending.len()).max(1);
    crossbeam::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| loop {
                let claimed = {
                    let mut st = state.lock().expect("scheduler lock");
                    loop {
                        if !st.ready.is_empty() {
                            break Some(st.ready.remove(0));
                        }
                        if st.outstanding == 0 {
                            break None;
                        }
                        st = wake.wait(st).expect("scheduler lock");
                    }
                };
                let Some(i) = claimed else { return };
                let (id, description, runner) = registry[i];
                eprintln!("\n[bench] ===== {id}: {description} =====");
                let t0 = Instant::now();
                let slot = Arc::new(ExperimentSlot::new(Arc::clone(ctx)));
                let outcome = run_one(&slot, id, runner, cfg);
                eprintln!("[bench] {id} finished in {:.1?}", t0.elapsed());
                *outcomes[i].lock().expect("outcome slot") = Some(outcome);
                let mut st = state.lock().expect("scheduler lock");
                st.outstanding -= 1;
                for &d in &dependents[i] {
                    st.waiting_on[d] -= 1;
                    if st.waiting_on[d] == 0 {
                        let at = st.ready.partition_point(|&r| r < d);
                        st.ready.insert(at, d);
                    }
                }
                wake.notify_all();
            });
        }
    })
    .expect("scheduler workers never panic outside supervised experiments");
}

/// The full supervised run: every registry experiment (filtered by
/// `--only`), resume-aware, failure-isolated, scheduled over
/// `--threads` workers. Writes per-experiment results, the combined
/// `all.json` (partial on failures) and `manifest.json`; prints a failure
/// summary; returns the process exit code (0 all ok, 3 partial).
pub fn run_all(ctx: Arc<ExperimentContext>, cfg: &RunnerConfig) -> ExitCode {
    if let Err(e) = validate_config(cfg) {
        eprintln!("{e}");
        return ExitCode::from(EXIT_USAGE);
    }
    let mut registry = supervised_registry(cfg);
    if let Some(only) = &cfg.only {
        registry.retain(|(id, _, _)| only.iter().any(|o| o == id));
    }

    let fingerprint = Fingerprint::of(&ctx.opts);
    let out_dir = ctx.opts.out_dir.clone();
    let previous = match (&out_dir, cfg.resume) {
        (Some(dir), true) => Manifest::load(dir),
        _ => None,
    };
    if cfg.resume && previous.is_none() {
        eprintln!("[bench] --resume: no usable manifest; running everything");
    }

    // Resume pre-pass (serial): park verified prior results in their
    // outcome slots, collect everything else for the scheduler.
    let outcomes: Vec<Mutex<Option<Outcome>>> = registry.iter().map(|_| Mutex::new(None)).collect();
    let mut pending = Vec::new();
    for (i, (id, _, _)) in registry.iter().enumerate() {
        let resumed = match (&out_dir, &previous) {
            (Some(dir), Some(manifest)) if can_skip(manifest, &fingerprint, id, dir) => {
                let prior = manifest.record(id).expect("can_skip checked presence");
                eprintln!("[bench] {id}: resumed (outputs verified, skipping)");
                let value = std::fs::read_to_string(dir.join(format!("{id}.json")))
                    .ok()
                    .and_then(|text| serde_json::from_str::<Value>(&text).ok());
                let record = RunRecord {
                    status: RunStatus::Resumed,
                    attempts: 0,
                    duration_secs: 0.0,
                    ..prior.clone()
                };
                Some((record, value, None))
            }
            _ => None,
        };
        match resumed {
            Some(outcome) => *outcomes[i].lock().expect("outcome slot") = Some(outcome),
            None => pending.push(i),
        }
    }

    run_scheduled(&ctx, &registry, &pending, cfg, &outcomes);

    // Ordered emission: drain the outcome slots in registry order so
    // records, all.json and telemetry are identical at any thread count.
    let mut records = Vec::new();
    let mut combined = serde_json::Map::new();
    let mut locals: Vec<(String, Snapshot)> = Vec::new();
    for ((id, _, _), slot) in registry.iter().zip(&outcomes) {
        let (record, value, local) = slot
            .lock()
            .expect("outcome slot")
            .take()
            .expect("every scheduled experiment leaves an outcome");
        if let Some(value) = value {
            combined.insert(id.to_string(), value);
        }
        if let Some(local) = local {
            locals.push((id.to_string(), local));
        }
        records.push(record);
    }

    let failed: Vec<RunRecord> = records
        .iter()
        .filter(|r| r.status == RunStatus::Failed)
        .cloned()
        .collect();

    // The combined file is written even when partial: the successes are
    // the evening's salvage, not collateral damage.
    if let Some(dir) = &out_dir {
        let path = dir.join("all.json");
        match atomic_write_json(&path, &Value::Object(combined)) {
            Ok(_) => eprintln!("[bench] wrote {}", path.display()),
            Err(e) => eprintln!("[bench] failed to write all.json: {e}"),
        }
    }
    let telemetry = match flow_audit(&ctx.scenario, &ctx.registry) {
        Ok(audit) => {
            eprintln!(
                "[bench] flow audit: {} archived ({} lost), {} stored, {} dropped",
                audit.archive.flows, audit.archive.lost_flows, audit.stored, audit.dropped
            );
            Some(audit.archive)
        }
        Err(e) => {
            eprintln!("[bench] archive audit failed: {e}");
            None
        }
    };
    let manifest = Manifest {
        fingerprint,
        runs: records,
        telemetry,
    };
    if let Some(dir) = &out_dir {
        match manifest.store(dir) {
            Ok(()) => eprintln!("[bench] wrote {}", dir.join("manifest.json").display()),
            Err(e) => eprintln!("[bench] failed to write manifest: {e}"),
        }
    }

    // Run-level telemetry exports: the run registry (generation, pipeline,
    // declared counters, flow audit) plus every experiment's local
    // snapshot prefixed by its id — one merged Snapshot as JSON and the
    // same data rendered as Prometheus text.
    if ctx.registry.enabled() {
        let mut run_snap = ctx.registry.snapshot();
        for (id, local) in &locals {
            run_snap.merge(&local.prefixed(id));
        }
        if let Some(dir) = &out_dir {
            match atomic_write_json(&dir.join("telemetry.json"), &run_snap) {
                Ok(_) => eprintln!("[bench] wrote {}", dir.join("telemetry.json").display()),
                Err(e) => eprintln!("[bench] failed to write telemetry.json: {e}"),
            }
            let text = prom::render(&run_snap, "unclean");
            match atomic_write(&dir.join("metrics.prom"), text.as_bytes()) {
                Ok(_) => eprintln!("[bench] wrote {}", dir.join("metrics.prom").display()),
                Err(e) => eprintln!("[bench] failed to write metrics.prom: {e}"),
            }
        }
    }

    if failed.is_empty() {
        eprintln!("\n[bench] all experiments complete");
        ExitCode::from(EXIT_OK)
    } else {
        eprintln!("\n[bench] {} experiment(s) FAILED:", failed.len());
        for r in &failed {
            eprintln!(
                "[bench]   {}: {} (after {} attempt(s))",
                r.id,
                r.error.as_deref().unwrap_or("unknown error"),
                r.attempts
            );
        }
        eprintln!("[bench] completed experiments were persisted; rerun with --resume to retry only the failures");
        ExitCode::from(EXIT_PARTIAL)
    }
}

/// Shared `main` for the single-experiment binaries: parse options (usage
/// errors exit 2), generate the context, run the one experiment (failures
/// exit 1).
pub fn single_main(id: &str) -> ExitCode {
    let opts = match BenchOpts::from_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let ctx = Arc::new(ExperimentContext::generate(opts));
    let slot = ExperimentSlot::new(ctx);
    let runner = crate::experiments::all()
        .into_iter()
        .find(|(rid, _, _)| *rid == id)
        .map(|(_, _, runner)| runner)
        .unwrap_or_else(|| panic!("unknown experiment id {id}"));
    match runner(&slot) {
        Ok(_) => ExitCode::from(EXIT_OK),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("unclean-runner-unit").join(name);
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir
    }

    #[test]
    fn fnv1a_known_vector() {
        // FNV-1a 64-bit test vector: empty input is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }

    #[test]
    fn atomic_write_leaves_no_tmp_and_replaces_content() {
        let dir = tmp_dir("atomic");
        let path = dir.join("x.json");
        std::fs::write(&path, "old").expect("seed old content");
        let hash = atomic_write(&path, b"{\"new\":1}").expect("atomic write");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "{\"new\":1}");
        assert_eq!(hash, hash_file(&path).expect("hash"));
        assert!(!dir.join("x.json.tmp").exists(), "tmp must be renamed away");
    }

    #[test]
    fn atomic_write_overwrites_stale_tmp() {
        // A crash between spill and rename leaves a stale .tmp behind; the
        // next write must clobber it and still land atomically.
        let dir = tmp_dir("stale-tmp");
        let path = dir.join("y.json");
        std::fs::write(dir.join("y.json.tmp"), "torn garba").expect("stale tmp");
        atomic_write(&path, b"fresh").expect("atomic write");
        assert_eq!(std::fs::read_to_string(&path).expect("read"), "fresh");
        assert!(!dir.join("y.json.tmp").exists());
    }

    #[test]
    fn runner_config_parses_all_flags() {
        let args: Vec<String> = [
            "--resume",
            "--retries",
            "2",
            "--deadline",
            "30",
            "--only",
            "table1,fig2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cfg = RunnerConfig::parse(&args).expect("parses");
        assert!(cfg.resume);
        assert_eq!(cfg.retries, 2);
        assert_eq!(cfg.deadline, Some(Duration::from_secs(30)));
        assert_eq!(
            cfg.only.as_deref(),
            Some(&["table1".to_string(), "fig2".into()][..])
        );
    }

    #[test]
    fn runner_config_rejects_unknown_and_missing() {
        assert!(matches!(
            RunnerConfig::parse(&["--frobnicate".to_string()]),
            Err(RunError::Usage(_))
        ));
        assert!(matches!(
            RunnerConfig::parse(&["--retries".to_string()]),
            Err(RunError::Usage(_))
        ));
        assert!(matches!(
            RunnerConfig::parse(&["--retries".to_string(), "many".to_string()]),
            Err(RunError::Usage(_))
        ));
    }

    #[test]
    fn manifest_round_trips_and_resume_verifies_hashes() {
        let dir = tmp_dir("manifest");
        let path = dir.join("table1.json");
        let hash = atomic_write(&path, b"{\"rows\": []}").expect("write");
        let fp = Fingerprint {
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            scale: 0.02,
            seed: 7,
            trials: 10,
        };
        let manifest = Manifest {
            fingerprint: fp.clone(),
            runs: vec![RunRecord {
                id: "table1".into(),
                status: RunStatus::Ok,
                attempts: 1,
                duration_secs: 0.5,
                error: None,
                outputs: vec![OutputFile {
                    file: "table1.json".into(),
                    hash,
                }],
                telemetry: None,
                peak_rss_kb: None,
            }],
            telemetry: None,
        };
        manifest.store(&dir).expect("store");
        let back = Manifest::load(&dir).expect("load");
        assert_eq!(back, manifest);
        assert!(can_skip(&back, &fp, "table1", &dir));
        // Unknown id, mismatched fingerprint, corrupt file: all force re-run.
        assert!(!can_skip(&back, &fp, "fig1", &dir));
        let other = Fingerprint {
            seed: 8,
            ..fp.clone()
        };
        assert!(!can_skip(&back, &other, "table1", &dir));
        std::fs::write(&path, "{\"rows\": [1]}").expect("corrupt");
        assert!(!can_skip(&back, &fp, "table1", &dir));
    }

    #[test]
    fn corrupt_manifest_is_ignored_not_fatal() {
        let dir = tmp_dir("corrupt-manifest");
        std::fs::write(dir.join("manifest.json"), "{ torn").expect("write");
        assert!(Manifest::load(&dir).is_none());
    }
}
