//! Regenerates the paper's Figure 5 (phishing self-prediction).

use std::process::ExitCode;

fn main() -> ExitCode {
    unclean_bench::runner::single_main("fig5")
}
