//! Regenerates the paper's Figure 5 (phishing self-prediction).

use unclean_bench::{experiments, BenchOpts, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::generate(BenchOpts::from_args());
    let _ = experiments::fig5::run(&ctx);
}
