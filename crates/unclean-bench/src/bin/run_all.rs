//! Regenerates every table and figure in the paper's evaluation under the
//! crash-safe supervisor: each experiment runs fault-isolated (panics and
//! deadline overruns are recorded, not fatal), results are written
//! atomically, and `results/manifest.json` records per-experiment status
//! so `--resume` re-runs only what failed.
//!
//! Exit codes: 0 = every experiment succeeded, 3 = partial (see the
//! failure summary and manifest), 2 = usage error.

use std::process::ExitCode;
use std::sync::Arc;
use unclean_bench::runner::{RunnerConfig, EXIT_USAGE};
use unclean_bench::{BenchOpts, ExperimentContext};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, cfg) = match BenchOpts::parse_known(&args)
        .and_then(|(opts, extra)| RunnerConfig::parse(&extra).map(|cfg| (opts, cfg)))
    {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    // Fail on `--only` typos before spending minutes generating a world.
    if let Err(e) = unclean_bench::runner::validate_config(&cfg) {
        eprintln!("{e}");
        return ExitCode::from(EXIT_USAGE);
    }
    let ctx = Arc::new(ExperimentContext::generate(opts));
    unclean_bench::runner::run_all(ctx, &cfg)
}
