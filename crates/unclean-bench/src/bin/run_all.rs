//! Regenerates every table and figure in the paper's evaluation in order,
//! writing one JSON result per experiment plus a combined `all.json`.

use unclean_bench::{experiments, BenchOpts, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::generate(BenchOpts::from_args());
    let mut combined = serde_json::Map::new();
    for (id, description, runner) in experiments::all() {
        eprintln!("\n[bench] ===== {id}: {description} =====");
        let t0 = std::time::Instant::now();
        let value = runner(&ctx);
        eprintln!("[bench] {id} finished in {:.1?}", t0.elapsed());
        combined.insert(id.to_string(), value);
    }
    ctx.write_result("all", &serde_json::Value::Object(combined));
    eprintln!("\n[bench] all experiments complete");
}
