//! Regenerates the paper's Table 1 (report inventory).

use std::process::ExitCode;

fn main() -> ExitCode {
    unclean_bench::runner::single_main("table1")
}
