//! Regenerates the paper's Table 1 (report inventory).

use unclean_bench::{experiments, BenchOpts, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::generate(BenchOpts::from_args());
    let _ = experiments::table1::run(&ctx);
}
