//! Regenerates the paper's Figure 1 (scanning vs botnet report timeline).

use std::process::ExitCode;

fn main() -> ExitCode {
    unclean_bench::runner::single_main("fig1")
}
