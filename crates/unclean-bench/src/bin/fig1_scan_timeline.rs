//! Regenerates the paper's Figure 1 (scanning vs botnet report timeline).

use unclean_bench::{experiments, BenchOpts, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::generate(BenchOpts::from_args());
    let _ = experiments::fig1::run(&ctx);
}
