//! Regenerates the paper's Figure 3 (comparative density of the unclean classes).

use unclean_bench::{experiments, BenchOpts, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::generate(BenchOpts::from_args());
    let _ = experiments::fig3::run(&ctx);
}
