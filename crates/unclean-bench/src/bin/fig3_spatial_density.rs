//! Regenerates the paper's Figure 3 (comparative density of the unclean classes).

use std::process::ExitCode;

fn main() -> ExitCode {
    unclean_bench::runner::single_main("fig3")
}
