//! Runs the ablation studies (report aging, detector comparison,
//! aggregation-level sweep) beyond the paper's own evaluation.

use unclean_bench::{experiments, BenchOpts, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::generate(BenchOpts::from_args());
    let _ = experiments::ablations::run(&ctx);
}
