//! Runs the ablation studies (report aging, detector comparison,

use std::process::ExitCode;

fn main() -> ExitCode {
    unclean_bench::runner::single_main("ablations")
}
