//! Regenerates the cross-relationship overlap matrix (the paper's

use std::process::ExitCode;

fn main() -> ExitCode {
    unclean_bench::runner::single_main("crossrel")
}
