//! Regenerates the cross-relationship overlap matrix (the paper's
//! abstract-level claim that bots/spam/scan interrelate and phishing does
//! not).

use unclean_bench::{experiments, BenchOpts, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::generate(BenchOpts::from_args());
    let _ = experiments::crossrel::run(&ctx);
}
