//! `scale_bench` — wall-clock and peak-RSS per scale step of the paper
//! pipeline (scenario generation + detector sweeps).
//!
//! ```text
//! scale_bench [--scales 0.02,0.1,0.25,0.5] [--json BENCH_scale.json] \
//!             [--max-rss-ratio X] [--threads 0] [--seed N]
//! scale_bench --scale 0.1 ...          # single step, same machinery
//! ```
//!
//! Peak RSS is `VmHWM` from `/proc/self/status`, which is process-wide
//! and monotonic — a second scale measured in the same process would
//! inherit the first one's high-water mark. So the parent re-executes
//! itself (`--one-scale`) once per step and each child reports its own
//! honest `{wall_secs, peak_rss_kb}` row on stdout; the parent collects
//! the rows into a `BENCH_pipeline.json`-style report.
//!
//! `--max-rss-ratio X` is the out-of-core acceptance gate: with at least
//! two steps, the run fails when
//! `peak_rss(last) / peak_rss(first) > X`. Memory should grow at most
//! linearly with scale (constant overhead makes the observed ratio
//! sublinear), so a ratio past the scale ratio means some stage is
//! re-materializing the whole window and the out-of-core sweep regressed.

use std::process::{Command, ExitCode};
use std::time::Instant;
use unclean_bench::runner::{atomic_write_json, EXIT_USAGE};
use unclean_bench::{peak_rss_kb, BenchOpts, ExperimentContext};

/// Gregorian date (UTC) from a unix timestamp — civil-from-days, so the
/// binary needs no calendar dependency.
fn utc_date(unix_secs: u64) -> String {
    let days = (unix_secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// Child mode: run one scale in this process and print its row as one
/// JSON line on stdout (stderr keeps the human progress log).
fn run_one_scale(opts: BenchOpts) -> ExitCode {
    let t0 = Instant::now();
    let ctx = ExperimentContext::generate(opts);
    let wall_secs = t0.elapsed().as_secs_f64();
    let row = serde_json::json!({
        "scale": ctx.opts.scale,
        "seed": ctx.opts.seed,
        "threads": ctx.threads,
        "wall_secs": (wall_secs * 100.0).round() / 100.0,
        "peak_rss_kb": peak_rss_kb(),
        "hosts": ctx.scenario.world.population.total_hosts(),
        "blocks": ctx.scenario.world.population.block_count(),
        "scan_report": ctx.reports.scan.len(),
        "spam_report": ctx.reports.spam.len(),
        "unclean_report": ctx.reports.unclean.len(),
    });
    println!("{}", serde_json::to_string(&row).expect("row serializes"));
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, extra) = match BenchOpts::parse_known(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let mut scales: Vec<f64> = vec![opts.scale];
    let mut explicit_scales = false;
    let mut json_out: Option<String> = None;
    let mut max_rss_ratio: Option<f64> = None;
    let mut commit = String::from("dev");
    let mut note = String::new();
    let mut one_scale = false;
    let mut i = 0;
    while i < extra.len() {
        let value = |i: usize| -> Option<&String> { extra.get(i + 1) };
        match extra[i].as_str() {
            "--one-scale" => {
                one_scale = true;
                i += 1;
            }
            "--scales" => match value(i) {
                Some(v) => {
                    let parsed: Result<Vec<f64>, _> =
                        v.split(',').map(|s| s.trim().parse::<f64>()).collect();
                    match parsed {
                        Ok(list) if !list.is_empty() => {
                            scales = list;
                            explicit_scales = true;
                        }
                        _ => {
                            eprintln!("error: --scales takes a comma-separated float list");
                            return ExitCode::from(EXIT_USAGE);
                        }
                    }
                    i += 2;
                }
                None => {
                    eprintln!("error: missing value for --scales");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--json" => match value(i) {
                Some(v) => {
                    json_out = Some(v.clone());
                    i += 2;
                }
                None => {
                    eprintln!("error: missing value for --json");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--max-rss-ratio" => match value(i).and_then(|v| v.parse().ok()) {
                Some(v) => {
                    max_rss_ratio = Some(v);
                    i += 2;
                }
                None => {
                    eprintln!("error: --max-rss-ratio takes a float");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--commit" => match value(i) {
                Some(v) => {
                    commit = v.clone();
                    i += 2;
                }
                None => {
                    eprintln!("error: missing value for --commit");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--note" => match value(i) {
                Some(v) => {
                    note = v.clone();
                    i += 2;
                }
                None => {
                    eprintln!("error: missing value for --note");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            other => {
                eprintln!("error: unknown argument {other}; try --help");
                return ExitCode::from(EXIT_USAGE);
            }
        }
    }

    if one_scale {
        return run_one_scale(opts);
    }

    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: cannot re-exec for per-scale RSS isolation: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rows: Vec<serde_json::Value> = Vec::new();
    for &scale in &scales {
        eprintln!("[scale_bench] scale {scale}: spawning isolated child …");
        let out = Command::new(&exe)
            .arg("--one-scale")
            .arg("--scale")
            .arg(scale.to_string())
            .arg("--seed")
            .arg(opts.seed.to_string())
            .arg("--threads")
            .arg(opts.threads.to_string())
            .output();
        let out = match out {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: scale {scale}: failed to spawn child: {e}");
                return ExitCode::FAILURE;
            }
        };
        eprint!("{}", String::from_utf8_lossy(&out.stderr));
        if !out.status.success() {
            eprintln!("error: scale {scale}: child exited with {}", out.status);
            return ExitCode::FAILURE;
        }
        let stdout = String::from_utf8_lossy(&out.stdout);
        let line = stdout.lines().last().unwrap_or_default();
        match serde_json::from_str::<serde_json::Value>(line) {
            Ok(row) => {
                eprintln!(
                    "[scale_bench] scale {scale}: wall {}s, peak RSS {} kB",
                    row.get("wall_secs").and_then(|v| v.as_f64()).unwrap_or(0.0),
                    row.get("peak_rss_kb")
                        .and_then(|v| v.as_f64())
                        .unwrap_or(0.0)
                );
                rows.push(row);
            }
            Err(e) => {
                eprintln!("error: scale {scale}: unparsable child row {line:?}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let rss_of = |row: &serde_json::Value| -> Option<f64> {
        row.get("peak_rss_kb").and_then(|v| v.as_f64())
    };
    println!(
        "pipeline scale trajectory — seed {}, {cores} core(s)",
        opts.seed
    );
    println!(
        "  {:>8} {:>12} {:>14}",
        "scale", "wall (s)", "peak RSS (kB)"
    );
    let cell = |row: &serde_json::Value, key: &str| -> String {
        row.get(key)
            .and_then(|v| v.as_f64())
            .map(|v| v.to_string())
            .unwrap_or_else(|| "-".into())
    };
    for row in &rows {
        println!(
            "  {:>8} {:>12} {:>14}",
            cell(row, "scale"),
            cell(row, "wall_secs"),
            cell(row, "peak_rss_kb"),
        );
    }

    if let Some(path) = &json_out {
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let report = serde_json::json!({
            "benchmark": format!(
                "scale_bench --scales {} (paper pipeline: scenario generation + detector sweeps per scale step)",
                scales.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(",")
            ),
            "methodology": "Each scale step runs in a freshly exec'd child process so its peak_rss_kb (VmHWM from /proc/self/status, process-wide and monotonic) is that step's own high-water mark rather than an inherited one. wall_secs covers ExperimentContext::generate — world generation, the flow spool, and both detector sweeps — i.e. the shared pipeline every experiment binary pays before its own analysis. The out-of-core acceptance gate is peak_rss(last)/peak_rss(first) <= max-rss-ratio: memory must grow at most linearly with scale (sublinearly in practice, thanks to constant overhead), so a superlinear ratio means a stage is re-materializing the whole unclean window in memory.",
            "entries": [{
                "date": utc_date(now),
                "commit": commit,
                "cores": cores,
                "threads": opts.threads,
                "seed": opts.seed,
                "rows": rows,
                "note": note,
            }],
        });
        match atomic_write_json(std::path::Path::new(path), &report) {
            Ok(_) => eprintln!("[scale_bench] wrote {path}"),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(ratio_cap) = max_rss_ratio {
        if !explicit_scales && scales.len() < 2 {
            eprintln!("error: --max-rss-ratio needs at least two --scales steps");
            return ExitCode::from(EXIT_USAGE);
        }
        match (
            rows.first().and_then(&rss_of),
            rows.last().and_then(&rss_of),
        ) {
            (Some(base), Some(last)) if base > 0.0 => {
                let ratio = last / base;
                let scale_ratio = scales.last().unwrap_or(&1.0) / scales.first().unwrap_or(&1.0);
                if ratio > ratio_cap {
                    eprintln!(
                        "error: peak-RSS ratio {ratio:.2}x over a {scale_ratio:.1}x scale step exceeds the {ratio_cap:.2}x gate"
                    );
                    return ExitCode::FAILURE;
                }
                println!(
                    "  gate:     RSS ratio {ratio:.2}x over {scale_ratio:.1}x scale <= {ratio_cap:.2}x OK"
                );
            }
            _ => {
                eprintln!("error: --max-rss-ratio: peak_rss_kb unavailable (non-Linux?)");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
