//! Regenerates the paper's Table 2 (candidate partition).

use std::process::ExitCode;

fn main() -> ExitCode {
    unclean_bench::runner::single_main("table2")
}
