//! Regenerates the paper's Table 2 (candidate partition).

use unclean_bench::{experiments, BenchOpts, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::generate(BenchOpts::from_args());
    let _ = experiments::table2::run(&ctx);
}
