//! Regenerates the paper's Figure 2 (naive vs empirical density estimates).

use unclean_bench::{experiments, BenchOpts, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::generate(BenchOpts::from_args());
    let _ = experiments::fig2::run(&ctx);
}
