//! Regenerates the paper's Figure 2 (naive vs empirical density estimates).

use std::process::ExitCode;

fn main() -> ExitCode {
    unclean_bench::runner::single_main("fig2")
}
