//! `archive_bench` — time archive replay: v1 serial vs v2 serial vs v2
//! parallel, over one spool of the scenario's full unclean-window border
//! traffic.
//!
//! ```text
//! archive_bench --scale 0.02 [--threads 0] [--repeat 3] \
//!               [--json BENCH_archive.json] [--min-speedup 1.5]
//! ```
//!
//! The same flow stream is spooled twice — once through the v1 framed
//! writer and once through the v2 indexed segment writer — then each
//! replay path is timed `--repeat` times (best-of wall clock, flows
//! counted through the zero-copy cursor so the measurement is the decode
//! path, not collection). Before timing, all three paths are checked to
//! deliver the identical `Vec<Flow>`; the emitted entry records that
//! check as `deterministic`.
//!
//! `--json PATH` writes a report whose schema mirrors
//! `BENCH_pipeline.json`; the CI `archive` job uploads one as a build
//! artifact. `--min-speedup X` exits nonzero when v2-parallel fails to
//! beat v1-serial by that factor — the multi-core acceptance gate
//! (meaningless on one core, where parallel replay measures executor
//! overhead).

use crossbeam::executor::{resolve_threads, Executor};
use std::process::ExitCode;
use std::time::Instant;
use unclean_bench::runner::{atomic_write_json, EXIT_USAGE};
use unclean_bench::BenchOpts;
use unclean_flowgen::record::EPOCH_UNIX_SECS;
use unclean_flowgen::{
    ArchiveReader, ArchiveWriter, FlowGenerator, GeneratorConfig, IndexedArchive,
    IndexedArchiveWriter,
};
use unclean_netmodel::{Scenario, ScenarioConfig};

/// Gregorian date (UTC) from a unix timestamp, for the report entry —
/// civil-from-days, so the binary needs no clock/calendar dependency.
fn utc_date(unix_secs: u64) -> String {
    let days = (unix_secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, extra) = match BenchOpts::parse_known(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let mut json_out: Option<String> = None;
    let mut min_speedup: Option<f64> = None;
    let mut repeat: usize = 3;
    let mut commit = String::from("dev");
    let mut note = String::new();
    let mut i = 0;
    while i < extra.len() {
        let value = |i: usize| -> Option<&String> { extra.get(i + 1) };
        match extra[i].as_str() {
            "--json" => match value(i) {
                Some(v) => {
                    json_out = Some(v.clone());
                    i += 2;
                }
                None => {
                    eprintln!("error: missing value for --json");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--min-speedup" => match value(i).and_then(|v| v.parse().ok()) {
                Some(v) => {
                    min_speedup = Some(v);
                    i += 2;
                }
                None => {
                    eprintln!("error: --min-speedup takes a float");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--repeat" => match value(i).and_then(|v| v.parse().ok()) {
                Some(v) => {
                    repeat = std::cmp::max(1usize, v);
                    i += 2;
                }
                None => {
                    eprintln!("error: --repeat takes an integer");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--commit" => match value(i) {
                Some(v) => {
                    commit = v.clone();
                    i += 2;
                }
                None => {
                    eprintln!("error: missing value for --commit");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            "--note" => match value(i) {
                Some(v) => {
                    note = v.clone();
                    i += 2;
                }
                None => {
                    eprintln!("error: missing value for --note");
                    return ExitCode::from(EXIT_USAGE);
                }
            },
            other => {
                eprintln!("error: unknown argument {other}; try --help");
                return ExitCode::from(EXIT_USAGE);
            }
        }
    }

    let threads = resolve_threads(opts.threads);
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!(
        "[archive_bench] scale {} seed {} threads {} repeat {}",
        opts.scale, opts.seed, threads, repeat
    );

    // Spool the full unclean window of border traffic (hostile + benign)
    // through both writers — the same byte-for-byte flow stream.
    let scenario = Scenario::generate(ScenarioConfig::at_scale(opts.scale, opts.seed));
    let model = scenario.activity();
    let generator = FlowGenerator::new(
        &scenario.observed,
        GeneratorConfig::default(),
        scenario.seeds.child("archive-bench"),
    );
    let window = scenario.dates.unclean_window;
    let boot = (i64::from(EPOCH_UNIX_SECS) + i64::from(window.start.0) * 86_400).max(0) as u32;
    let mut v1 = ArchiveWriter::new(Vec::new(), boot);
    let mut v2 = IndexedArchiveWriter::new(Vec::new(), boot);
    let mut spooled: u64 = 0;
    for day in window.days() {
        generator.flows_on(&model, day, true, |flow| {
            spooled += 1;
            v1.push(&flow).expect("in-memory v1 spool");
            v2.push(&flow).expect("in-memory v2 spool");
        });
    }
    let (v1_bytes, _) = v1.finish().expect("in-memory v1 spool");
    let (v2_bytes, index) = v2.finish().expect("in-memory v2 spool");
    let archive = IndexedArchive::open(&v2_bytes)
        .expect("fresh spool indexes")
        .expect("fresh spool is v2");
    eprintln!(
        "[archive_bench] spooled {spooled} flows over {} day(s): v1 {} bytes, v2 {} bytes ({} segments)",
        window.len_days(),
        v1_bytes.len(),
        v2_bytes.len(),
        index.segments.len()
    );

    // Correctness before speed: all three replay paths must deliver the
    // identical flow stream.
    let v1_flows = ArchiveReader::new(v1_bytes.as_slice(), boot)
        .read_all()
        .expect("v1 replay");
    let (v2_flows, v2_telemetry) = archive.read_day_range(None).expect("v2 sequential replay");
    let parallel_flows: Vec<_> = archive
        .replay_with(&Executor::new(threads), None, false, |_, cursor| {
            let mut flows = Vec::new();
            cursor.for_each_flow(|f| flows.push(*f))?;
            Ok(flows)
        })
        .expect("v2 parallel replay")
        .outputs
        .into_iter()
        .flat_map(|o| o.output.expect("strict replay delivers"))
        .collect();
    let deterministic = v1_flows == v2_flows && v2_flows == parallel_flows;
    if !deterministic {
        eprintln!(
            "error: replay paths disagree (v1 {} / v2 serial {} / v2 parallel {} flows)",
            v1_flows.len(),
            v2_flows.len(),
            parallel_flows.len()
        );
        return ExitCode::FAILURE;
    }
    drop((v1_flows, v2_flows, parallel_flows));

    // Timed region counts flows through the zero-copy cursor — decode
    // cost, not collection cost. Best-of-`repeat` wall clock.
    let time_best = |f: &dyn Fn() -> u64| -> (f64, u64) {
        let mut best = f64::INFINITY;
        let mut flows = 0;
        for _ in 0..repeat {
            let t0 = Instant::now();
            flows = f();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        (best, flows)
    };
    let (v1_secs, v1_count) = time_best(&|| {
        let mut reader = ArchiveReader::new(v1_bytes.as_slice(), boot);
        let mut n = 0u64;
        while let Some(batch) = reader.next_datagram().expect("v1 replay") {
            n += batch.len() as u64;
        }
        n
    });
    let serial_pool = Executor::new(1);
    let (v2_serial_secs, v2_serial_count) = time_best(&|| {
        archive
            .replay_with(&serial_pool, None, false, |_, cursor| {
                let mut n = 0u64;
                cursor.for_each_flow(|_| n += 1)?;
                Ok(n)
            })
            .expect("v2 serial replay")
            .outputs
            .iter()
            .map(|o| o.output.expect("strict replay delivers"))
            .sum()
    });
    let parallel_pool = Executor::new(threads);
    let (v2_parallel_secs, v2_parallel_count) = time_best(&|| {
        archive
            .replay_with(&parallel_pool, None, false, |_, cursor| {
                let mut n = 0u64;
                cursor.for_each_flow(|_| n += 1)?;
                Ok(n)
            })
            .expect("v2 parallel replay")
            .outputs
            .iter()
            .map(|o| o.output.expect("strict replay delivers"))
            .sum()
    });
    assert_eq!(v1_count, spooled);
    assert_eq!(v2_serial_count, spooled);
    assert_eq!(v2_parallel_count, spooled);

    let speedup = v1_secs / v2_parallel_secs;
    let compression = v2_bytes.len() as f64 / v1_bytes.len() as f64;
    println!(
        "archive replay — {spooled} flows, {} segments",
        index.segments.len()
    );
    println!(
        "  spool size:   v1 {} bytes, v2 {} bytes ({:.1}% of v1)",
        v1_bytes.len(),
        v2_bytes.len(),
        compression * 100.0
    );
    println!("  v1 serial:    {v1_secs:.4}s");
    println!(
        "  v2 serial:    {v2_serial_secs:.4}s ({:.2}x vs v1)",
        v1_secs / v2_serial_secs
    );
    println!("  v2 parallel:  {v2_parallel_secs:.4}s at {threads} thread(s) ({speedup:.2}x vs v1 serial)");
    println!("  deterministic: {deterministic} (all three paths byte-identical)");

    if let Some(path) = &json_out {
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let report = serde_json::json!({
            "benchmark": format!(
                "archive_bench --scale {} (one unclean-window border spool; v1 serial vs v2 serial vs v2 parallel replay)",
                opts.scale
            ),
            "methodology": "The identical flow stream is spooled through the v1 framed writer and the v2 indexed segment writer, then each replay path is timed best-of-repeat with flows counted through the zero-copy cursor. 'deterministic' records that all three paths delivered the identical Vec<Flow> before timing. The acceptance target for v2 parallel replay is speedup >= 1.5x over v1 serial on a machine with >= 2 cores; single-core entries record determinism and overhead instead, and the CI archive job uploads a fresh entry measured on the hosted runner.",
            "entries": [{
                "date": utc_date(now),
                "commit": commit,
                "cores": cores,
                "flows": spooled,
                "segments": index.segments.len(),
                "v1_bytes": v1_bytes.len(),
                "v2_bytes": v2_bytes.len(),
                "v2_compression_ratio": (compression * 1000.0).round() / 1000.0,
                "v1_serial_wall_secs": (v1_secs * 10_000.0).round() / 10_000.0,
                "v2_serial_wall_secs": (v2_serial_secs * 10_000.0).round() / 10_000.0,
                "parallel_threads": threads,
                "v2_parallel_wall_secs": (v2_parallel_secs * 10_000.0).round() / 10_000.0,
                "speedup": (speedup * 100.0).round() / 100.0,
                "lost_flows": v2_telemetry.lost_flows,
                "deterministic": deterministic,
                "note": note,
            }],
        });
        match atomic_write_json(std::path::Path::new(path), &report) {
            Ok(_) => eprintln!("[archive_bench] wrote {path}"),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(floor) = min_speedup {
        if speedup < floor {
            eprintln!("error: v2 parallel speedup {speedup:.2}x < required {floor:.2}x");
            return ExitCode::FAILURE;
        }
        println!("  gate:         >= {floor:.2}x OK");
    }
    ExitCode::SUCCESS
}
