//! Prints diagnostics of the generated world and epidemic: the
//! substitution-argument sanity report (DESIGN.md §2) for any scale/seed.

use unclean_bench::BenchOpts;
use unclean_netmodel::{EpidemicDiagnostics, Scenario, ScenarioConfig, WorldDiagnostics};

fn main() {
    let opts = BenchOpts::from_args();
    let scenario = Scenario::generate(ScenarioConfig::at_scale(opts.scale, opts.seed));
    println!("== world diagnostics (scale {}, seed {}) ==\n", opts.scale, opts.seed);
    println!("{}\n", WorldDiagnostics::of(&scenario.world).render());
    println!("== epidemic diagnostics ==\n");
    println!(
        "{}",
        EpidemicDiagnostics::of(&scenario.world, &scenario.infections).render()
    );
    println!(
        "expected control-week coverage: {:.1}%",
        scenario.expected_control_coverage() * 100.0
    );
}
