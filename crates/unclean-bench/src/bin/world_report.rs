//! Prints diagnostics of the generated world and epidemic: the
//! substitution-argument sanity report (DESIGN.md §2) for any scale/seed,
//! plus a flow-layer audit (archive loss, collector store drops) so
//! degradation is visible from the same command.

use std::process::ExitCode;
use unclean_bench::runner::{flow_audit, EXIT_USAGE};
use unclean_bench::BenchOpts;
use unclean_netmodel::{EpidemicDiagnostics, Scenario, ScenarioConfig, WorldDiagnostics};
use unclean_telemetry::Registry;

fn main() -> ExitCode {
    let opts = match BenchOpts::from_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let registry = Registry::new(opts.telemetry);
    let scenario =
        Scenario::generate_recorded(ScenarioConfig::at_scale(opts.scale, opts.seed), &registry);
    println!(
        "== world diagnostics (scale {}, seed {}) ==\n",
        opts.scale, opts.seed
    );
    println!("{}\n", WorldDiagnostics::of(&scenario.world).render());
    println!("== epidemic diagnostics ==\n");
    println!(
        "{}",
        EpidemicDiagnostics::of(&scenario.world, &scenario.infections).render()
    );
    println!(
        "expected control-week coverage: {:.1}%",
        scenario.expected_control_coverage() * 100.0
    );
    println!("\n== flow-layer audit (one unclean-window day) ==\n");
    match flow_audit(&scenario, &registry) {
        Ok(audit) => {
            println!(
                "archive : {} datagrams, {} flows, {} lost, {} sequence gaps, {} reordered",
                audit.archive.datagrams,
                audit.archive.flows,
                audit.archive.lost_flows,
                audit.archive.sequence_gaps,
                audit.archive.reordered
            );
            println!(
                "store   : {} flows stored, {} dropped",
                audit.stored, audit.dropped
            );
        }
        Err(e) => eprintln!("flow audit failed: {e}"),
    }
    if registry.enabled() {
        println!("\n== telemetry ==\n");
        print!("{}", registry.snapshot().render_tree());
    }
    ExitCode::SUCCESS
}
