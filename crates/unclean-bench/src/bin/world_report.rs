//! Prints diagnostics of the generated world and epidemic: the
//! substitution-argument sanity report (DESIGN.md §2) for any scale/seed.

use std::process::ExitCode;
use unclean_bench::runner::EXIT_USAGE;
use unclean_bench::BenchOpts;
use unclean_netmodel::{EpidemicDiagnostics, Scenario, ScenarioConfig, WorldDiagnostics};

fn main() -> ExitCode {
    let opts = match BenchOpts::from_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    let scenario = Scenario::generate(ScenarioConfig::at_scale(opts.scale, opts.seed));
    println!(
        "== world diagnostics (scale {}, seed {}) ==\n",
        opts.scale, opts.seed
    );
    println!("{}\n", WorldDiagnostics::of(&scenario.world).render());
    println!("== epidemic diagnostics ==\n");
    println!(
        "{}",
        EpidemicDiagnostics::of(&scenario.world, &scenario.infections).render()
    );
    println!(
        "expected control-week coverage: {:.1}%",
        scenario.expected_control_coverage() * 100.0
    );
    ExitCode::SUCCESS
}
