//! Regenerates the paper's Figure 4 (predictive capacity of the bot-test report).

use std::process::ExitCode;

fn main() -> ExitCode {
    unclean_bench::runner::single_main("fig4")
}
