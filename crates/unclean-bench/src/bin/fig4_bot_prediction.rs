//! Regenerates the paper's Figure 4 (predictive capacity of the bot-test report).

use unclean_bench::{experiments, BenchOpts, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::generate(BenchOpts::from_args());
    let _ = experiments::fig4::run(&ctx);
}
