//! Regenerates the paper's Table 3 (blocking sweep TP/FP/pop/unknown).

use unclean_bench::{experiments, BenchOpts, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::generate(BenchOpts::from_args());
    let _ = experiments::table3::run(&ctx);
}
