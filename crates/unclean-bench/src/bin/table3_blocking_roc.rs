//! Regenerates the paper's Table 3 (blocking sweep TP/FP/pop/unknown).

use std::process::ExitCode;

fn main() -> ExitCode {
    unclean_bench::runner::single_main("table3")
}
