//! `loadgen` — hammer an `unclean serve` daemon and report sustained
//! lookups/sec plus latency percentiles.
//!
//! Two modes:
//!
//! * `loadgen --addr 127.0.0.1:7053` targets an already-running daemon.
//! * `loadgen --blocklist list.txt` self-hosts a daemon in-process on an
//!   ephemeral port, drives it, and shuts it down — the one-command
//!   smoke benchmark CI runs.
//!
//! ```text
//! loadgen --blocklist list.txt --clients 4 --duration-secs 5 \
//!         --batch 100 --min-throughput 100000
//! ```
//!
//! Each client thread issues `POST /batch` requests of `--batch` IPs
//! (`--batch 1` switches to `GET /lookup` point queries). Throughput is
//! counted in *lookups* (IPs answered), latency per *request*. With
//! `--min-throughput N`, exits nonzero when the sustained rate falls
//! short — the CI acceptance gate.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use unclean_stats::quantile::quantile_sorted;

struct Args {
    addr: Option<String>,
    blocklist: Option<String>,
    clients: usize,
    duration: Duration,
    batch: usize,
    min_throughput: Option<f64>,
}

const USAGE: &str = "\
loadgen — load-generate against an unclean-serve daemon

USAGE:
  loadgen (--addr HOST:PORT | --blocklist FILE) [--clients 4]
          [--duration-secs 5] [--batch 100] [--min-throughput N]

--batch 1 uses GET /lookup point queries; larger batches use POST /batch.
--min-throughput N exits nonzero below N lookups/sec (the CI gate).";

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let value = |flag: &str| -> Option<&str> {
        argv.iter()
            .position(|a| a == flag)
            .and_then(|i| argv.get(i + 1))
            .map(|s| s.as_str())
    };
    let num = |flag: &str, default: f64| -> Result<f64, String> {
        match value(flag) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("{flag} got unparseable value {v:?}")),
        }
    };
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        return Err(String::new());
    }
    let args = Args {
        addr: value("--addr").map(String::from),
        blocklist: value("--blocklist").map(String::from),
        clients: num("--clients", 4.0)?.max(1.0) as usize,
        duration: Duration::from_secs_f64(num("--duration-secs", 5.0)?.max(0.1)),
        batch: num("--batch", 100.0)?.max(1.0) as usize,
        min_throughput: value("--min-throughput")
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("--min-throughput got unparseable value {v:?}"))
            })
            .transpose()?,
    };
    if args.addr.is_none() && args.blocklist.is_none() {
        return Err("need --addr HOST:PORT or --blocklist FILE".into());
    }
    Ok(args)
}

/// One raw HTTP/1.0 round trip; returns the response body.
fn roundtrip(addr: &str, request: &[u8]) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    stream.write_all(request).map_err(|e| e.to_string())?;
    let mut text = String::new();
    stream
        .read_to_string(&mut text)
        .map_err(|e| e.to_string())?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| format!("torn response: {text:?}"))?;
    if head.split_whitespace().nth(1) != Some("200") {
        return Err(format!("non-200 response: {head}"));
    }
    Ok(body.to_string())
}

/// Deterministic per-thread IP stream (xorshift); spans the whole v4
/// space so batches mix hits and misses.
struct IpStream(u32);

impl IpStream {
    fn next_ip(&mut self) -> u32 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.0 = x;
        x
    }
}

struct ClientTally {
    lookups: u64,
    requests: u64,
    latencies_micros: Vec<f64>,
    error: Option<String>,
}

fn client_loop(addr: &str, batch: usize, seed: u32, stop: &AtomicBool) -> ClientTally {
    let mut ips = IpStream(seed | 1);
    let mut tally = ClientTally {
        lookups: 0,
        requests: 0,
        latencies_micros: Vec::new(),
        error: None,
    };
    while !stop.load(Ordering::Relaxed) {
        let request = if batch <= 1 {
            let ip = ips.next_ip();
            format!(
                "GET /lookup?ip={}.{}.{}.{} HTTP/1.0\r\n\r\n",
                ip >> 24,
                (ip >> 16) & 255,
                (ip >> 8) & 255,
                ip & 255
            )
        } else {
            let mut body = String::with_capacity(batch * 16);
            for _ in 0..batch {
                let ip = ips.next_ip();
                body.push_str(&format!(
                    "{}.{}.{}.{}\n",
                    ip >> 24,
                    (ip >> 16) & 255,
                    (ip >> 8) & 255,
                    ip & 255
                ));
            }
            format!(
                "POST /batch HTTP/1.0\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
        };
        let t0 = Instant::now();
        match roundtrip(addr, request.as_bytes()) {
            Ok(_) => {
                tally.latencies_micros.push(t0.elapsed().as_micros() as f64);
                tally.requests += 1;
                tally.lookups += batch as u64;
            }
            Err(e) => {
                tally.error = Some(e);
                break;
            }
        }
    }
    tally
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) if msg.is_empty() => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    // Self-host when asked: an in-process daemon on an ephemeral port.
    let hosted = match &args.blocklist {
        Some(list) => {
            let mut config = unclean_serve::ServeConfig::new(list);
            config.threads = args.clients.max(4);
            match unclean_serve::Server::start(config, unclean_telemetry::Registry::full()) {
                Ok(server) => Some(server),
                Err(e) => {
                    eprintln!("error: cannot self-host from {list}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };
    let addr = match (&hosted, &args.addr) {
        (Some(server), _) => server.local_addr().to_string(),
        (None, Some(addr)) => addr.clone(),
        (None, None) => unreachable!("parse_args enforces one of the two"),
    };

    println!(
        "loadgen: {} client(s) x {}s against http://{addr} ({} ips/request)",
        args.clients,
        args.duration.as_secs_f64(),
        args.batch
    );

    let stop = Arc::new(AtomicBool::new(false));
    let t0 = Instant::now();
    let clients: Vec<_> = (0..args.clients)
        .map(|i| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            let batch = args.batch;
            std::thread::spawn(move || client_loop(&addr, batch, 0x9e37 + i as u32, &stop))
        })
        .collect();
    std::thread::sleep(args.duration);
    stop.store(true, Ordering::Relaxed);
    let tallies: Vec<ClientTally> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();
    let elapsed = t0.elapsed().as_secs_f64();

    if let Some(server) = hosted {
        let registry = server.registry().clone();
        // Graceful stop of the self-hosted daemon.
        let _ = roundtrip(&addr, b"POST /quit HTTP/1.0\r\nContent-Length: 0\r\n\r\n");
        server.wait();
        let dropped = registry.counter_value("conns.dropped");
        if dropped > 0 {
            eprintln!("warning: daemon dropped {dropped} connection(s) under load");
        }
    }

    for tally in &tallies {
        if let Some(e) = &tally.error {
            eprintln!("error: client failed mid-run: {e}");
            return ExitCode::FAILURE;
        }
    }

    let lookups: u64 = tallies.iter().map(|t| t.lookups).sum();
    let requests: u64 = tallies.iter().map(|t| t.requests).sum();
    let mut latencies: Vec<f64> = tallies
        .iter()
        .flat_map(|t| t.latencies_micros.iter().copied())
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let throughput = lookups as f64 / elapsed;

    println!("  lookups:    {lookups} ({requests} requests) in {elapsed:.2}s");
    println!("  throughput: {throughput:.0} lookups/sec");
    if latencies.is_empty() {
        println!("  latency:    no completed requests");
    } else {
        println!(
            "  latency:    p50 {:.0}us  p90 {:.0}us  p99 {:.0}us  max {:.0}us (per request)",
            quantile_sorted(&latencies, 0.50),
            quantile_sorted(&latencies, 0.90),
            quantile_sorted(&latencies, 0.99),
            latencies.last().copied().unwrap_or(0.0),
        );
    }

    if let Some(floor) = args.min_throughput {
        if throughput < floor {
            eprintln!("error: throughput {throughput:.0} < required {floor:.0} lookups/sec");
            return ExitCode::FAILURE;
        }
        println!("  gate:       >= {floor:.0} lookups/sec OK");
    }
    ExitCode::SUCCESS
}
